#!/usr/bin/env python3
"""Collectives at scale: overlap effects beyond two nodes.

The paper's §7 plans to take COMB to the DOE ASCI machines; this example
takes the simulator there first.  It times broadcast, allreduce and
all-to-all on 2–8 node GM and Portals clusters and shows how the per-node
CPU cost of the kernel stack compounds with fan-in.

Usage::

    python examples/multinode_collectives.py [--size 100]
"""

import argparse

from repro.config import gm_system, portals_system
from repro.mpi import allreduce, alltoall, bcast, build_world

KB = 1024


def time_collective(system, n_nodes, coll, nbytes):
    """Wall time until every rank finishes the collective."""
    world = build_world(system, n_nodes=n_nodes)
    engine = world.engine

    def rank_proc(rank):
        ctx = world.cluster[rank].new_context(f"coll.{rank}")
        h = world.endpoint(rank).bind(ctx)
        yield from coll(h, nbytes)

    procs = [engine.spawn(rank_proc(r)) for r in range(n_nodes)]
    engine.run(engine.all_of(procs))
    return engine.now


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=float, default=100,
                        help="payload per rank (KB)")
    args = parser.parse_args()
    nbytes = int(args.size * KB)

    collectives = [("bcast", bcast), ("allreduce", allreduce),
                   ("alltoall", alltoall)]
    print(f"payload {args.size:g} KB per rank\n")
    for name, coll in collectives:
        print(f"{name}:")
        print(f"  {'nodes':>5s} {'GM':>12s} {'Portals':>12s} {'ratio':>7s}")
        for n in (2, 4, 8):
            t_gm = time_collective(gm_system(), n, coll, nbytes)
            t_po = time_collective(portals_system(), n, coll, nbytes)
            print(f"  {n:5d} {t_gm * 1e3:9.2f} ms {t_po * 1e3:9.2f} ms "
                  f"{t_po / t_gm:6.2f}x")
        print()
    print("bcast scales with tree depth (1/2/3 rounds for 2/4/8 nodes) on")
    print("both stacks; the constant ~2x Portals penalty is the per-byte")
    print("interrupt+copy cost every hop pays, which GM's NIC-driven DMA")
    print("avoids entirely.")


if __name__ == "__main__":
    main()
