#!/usr/bin/env python3
"""Why netperf's availability number misleads for MPI (paper §5).

netperf measures a delay loop beside a separate communication process and
assumes the latter blocks (select) while waiting.  OS-bypass MPI busy-waits
instead.  This example runs both waiting styles on three stacks and puts
COMB's own polling-method availability next to them.

Usage::

    python examples/netperf_pitfall.py
"""

from repro import PollingConfig, gm_system, portals_system, run_polling, tcp_system
from repro.baselines import run_netperf

KB = 1024


def main() -> None:
    print(f"{'system':10s} {'netperf/block':>14s} {'netperf/spin':>14s} "
          f"{'COMB polling':>14s}")
    for factory in (gm_system, tcp_system, portals_system):
        system = factory()
        block = run_netperf(system, msg_bytes=100 * KB, wait_mode="blocking")
        spin = run_netperf(system, msg_bytes=100 * KB, wait_mode="busywait")
        comb = run_polling(system, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000,
        ))
        print(f"{system.name:10s} "
              f"{block.availability:7.3f} ({block.bandwidth_MBps:4.0f}MB/s) "
              f"{spin.availability:7.3f} ({spin.bandwidth_MBps:4.0f}MB/s) "
              f"{comb.availability:7.3f} ({comb.bandwidth_MBps:4.0f}MB/s)")

    print()
    print("What went wrong, per the paper:")
    print("  * GM + blocking: the communication process waits in a select-")
    print("    style call, but GM only progresses inside library calls —")
    print("    traffic stops entirely (bandwidth 0) and netperf reports a")
    print("    meaningless 100% availability.")
    print("  * GM + busy-wait: the spinning process soaks its timeslices, so")
    print("    netperf reads ~50% even though GM's true overhead is ~zero")
    print("    (COMB: ~0.9 availability at full bandwidth).")
    print("  * COMB measures inside the MPI task itself, with the busy-wait")
    print("    semantics MPI actually uses.")


if __name__ == "__main__":
    main()
