#!/usr/bin/env python3
"""Timelines: watch CPU and traffic evolve during a COMB polling run.

Samples the worker node's CPU split and the device byte counters every
200 µs while the polling method runs on GM and on Portals, and renders
the series as terminal sparklines.  The Portals picture — a kernel band
eating a constant slice of every millisecond — *is* Figure 4's low
availability plateau, seen in the time domain.

Usage::

    python examples/timeline_trace.py
"""

import repro.core.polling as polling
from repro.config import gm_system, portals_system
from repro.core.polling import PollingConfig
from repro.mpi import build_world
from repro.sim import Monitor, sparkline

KB = 1024


def run_with_monitor(system):
    cfg = PollingConfig(msg_bytes=100 * KB, poll_interval_iters=1_000,
                        measure_s=0.02, warmup_s=0.004)
    world = build_world(system)
    engine = world.engine
    node = world.cluster[0]
    dev = world.endpoint(0).device

    monitor = Monitor(engine, period_s=200e-6)
    monitor.probe("user CPU (s, cumulative)",
                  lambda: node.cpu.snapshot()["user_s"])
    monitor.probe("kernel CPU (s, cumulative)",
                  lambda: node.cpu.snapshot()["kernel_s"])
    monitor.probe("payload bytes done",
                  lambda: dev.stats.bytes_recv_done + dev.stats.bytes_send_done)
    monitor.probe("interrupts", lambda: float(node.irq.count))

    state = polling._WorkerState()
    worker = engine.spawn(polling._worker(world, cfg, state), name="worker")
    engine.spawn(polling._support(world, cfg), name="support")
    engine.run(worker)
    monitor.stop()
    return state.result, monitor


def main() -> None:
    for system in (gm_system(), portals_system()):
        result, monitor = run_with_monitor(system)
        print(f"=== {system.name}: bw={result.bandwidth_MBps:.1f} MB/s, "
              f"availability={result.availability:.3f} ===")
        for name in ("user CPU (s, cumulative)", "kernel CPU (s, cumulative)",
                     "payload bytes done", "interrupts"):
            rate = monitor.series[name].rate()
            print(" ", sparkline(rate))
        print()
    print("Rates per 200 µs sample.  GM: kernel flat at zero, user pegged")
    print("(the application keeps the CPU).  Portals: a steady kernel band")
    print("throttles the user rate — the availability plateau in the time")
    print("domain.")


if __name__ == "__main__":
    main()
