#!/usr/bin/env python3
"""Why does GM wait?  A critical-path attribution walkthrough.

The paper's §4 explains GM's large-message PWW wait time causally: the
rendezvous handshake only advances inside MPI calls (the Progress Rule),
so the data transfer that *should* have overlapped the work phase is
serialized into ``MPI_Waitall``.  This example measures that argument
instead of asserting it: it traces one GM and one Portals PWW point,
stitches the raw event stream into per-message causal spans
(``repro.obs.spans``), and decomposes every measured wait window into
named causes (``repro.obs.attribution``).

Usage::

    python examples/critical_path.py [--size-kb 100] [--interval 1000000]
"""

import argparse

from repro.config import get_system
from repro.core.pww import PwwConfig, run_pww
from repro.obs import (
    Observer,
    attribute_events,
    format_attribution,
    stitch,
    use_observer,
)


def trace_point(system_name: str, size_kb: float, interval: int):
    """Run one observed PWW point; return (point, events)."""
    obs = Observer()
    with use_observer(obs):
        point = run_pww(get_system(system_name), PwwConfig(
            msg_bytes=int(size_kb * 1024),
            work_interval_iters=interval,
        ))
    return point, obs.events()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size-kb", type=float, default=100,
                        help="message size (KB)")
    parser.add_argument("--interval", type=int, default=1_000_000,
                        help="work interval (loop iterations)")
    args = parser.parse_args()

    for name in ("GM", "Portals"):
        point, events = trace_point(name, args.size_kb, args.interval)
        forest = stitch(events)
        attributions = attribute_events(events)

        print(f"=== {name}: wait = {point.wait_s * 1e6:.1f} us/batch ===")
        # One message's span tree, to show the raw material.
        rndv = [m for m in forest if not m.eager]
        if rndv:
            msg = rndv[0]
            print(f"message {msg.msg_id} (rendezvous), span tree:")
            for span in msg.children:
                print(f"  {span.name:16s} {span.t0_s * 1e6:10.1f} -> "
                      f"{span.t1_s * 1e6:10.1f} us "
                      f"({span.duration_s * 1e6:8.1f} us)")
        print(format_attribution(attributions))
        for att in attributions:
            if att.dominant:
                print(f"dominant cause: {att.dominant}")
        print()

    print("The verdict, in the paper's words (§4.2): GM's handshake sits")
    print("unanswered for the whole work phase — the library only makes")
    print("progress inside MPI calls — so the wire transfer that Portals'")
    print("offloaded NIC finishes during the work phase lands in GM's wait")
    print("phase, attributed above as rendezvous_stall.")


if __name__ == "__main__":
    main()
