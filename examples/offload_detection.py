#!/usr/bin/env python3
"""Application-offload detection across four systems (paper §4.1).

Runs COMB's PWW-based offload test on the paper's two systems, the TCP
baseline stack, and the hypothetical no-interrupt offload NIC, then
contrasts the verdicts with the cruder White & Bova yes/no classification
(paper ref [11]).

Usage::

    python examples/offload_detection.py
"""

from repro import CombSuite, gm_system, portals_system, tcp_system
from repro.baselines import classify_overlap
from repro.ext import offload_nic_system

KB = 1024


def main() -> None:
    systems = [gm_system(), portals_system(), tcp_system(),
               offload_nic_system()]

    print("COMB PWW offload test (does communication progress without")
    print("library calls?):")
    for system in systems:
        verdict = CombSuite(system).offload_verdict(msg_bytes=100 * KB)
        print(f"  {verdict.summary()}")

    print()
    print("White & Bova style binary overlap check, for contrast:")
    for system in systems:
        for size in (10 * KB, 100 * KB):
            c = classify_overlap(system, size)
            word = "overlaps" if c.overlaps else "serializes"
            print(f"  {c.system:10s} {size // KB:4d} KB: {word} "
                  f"(overlap fraction {c.overlap_fraction:5.2f})")

    print()
    print("The binary check conflates 'cheap communication' with 'true")
    print("overlap'; COMB's phase timing separates *where* the host spends")
    print("its cycles and whether progress needed the library at all.")


if __name__ == "__main__":
    main()
