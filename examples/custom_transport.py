#!/usr/bin/env python3
"""Plugging a custom transport into COMB.

Defines a hypothetical "per-message interrupt" Portals variant — the NIC
coalesces a whole message and raises a single interrupt for it — and runs
the unmodified COMB polling method against stock Portals.  This is the
extension point the suite offers for evaluating new NIC/driver designs
before building them.

Usage::

    python examples/custom_transport.py
"""

import dataclasses

from repro import PollingConfig, portals_system
from repro.core.polling import run_polling
from repro.ext import build_custom_world
from repro.hardware.memory import copy_time
from repro.mpi.world import register_device
from repro.transport.packets import PacketKind
from repro.transport.portals import PortalsDevice

KB = 1024


class MessageInterruptDevice(PortalsDevice):
    """Portals mechanics, but one interrupt per *message*, not per packet.

    The NIC reassembles packets on board; the host handler then pays the
    per-message work plus one bulk copy.  This is the interrupt-mitigation
    strategy several 2001-era gigabit drivers adopted.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._env_cache = {}

    def nic_rx(self, pkt) -> None:
        p = self.params
        if pkt.kind is PacketKind.DATA:
            if pkt.is_first and pkt.envelope is not None:
                # NIC notes the envelope; no host involvement yet.
                self._env_cache[pkt.msg_id] = pkt.envelope
            # A coalescing NIC runs the reliability check itself (no host
            # CPU for in-order fragments) and acknowledges cumulatively.
            decision = self._gbn_accept(pkt)
            if decision.send_ack:
                self._send_gbn_ack(pkt.src, decision.cum)
            if not decision.deliver:
                return
            # Only the final fragment interrupts the host.
            if pkt.is_last:
                nbytes = (pkt.index * self.system.machine.nic.mtu_bytes
                          + pkt.payload_bytes)
                cost = (p.rx_handler_s + p.match_s
                        + copy_time(nbytes, p.rx_copy_bandwidth_Bps))
                self.node.irq.raise_irq(
                    cost, fn=lambda: self._commit_whole(pkt), label="msg_rx"
                )
            return
        super().nic_rx(pkt)

    def _commit_whole(self, pkt) -> None:
        # Recreate the per-packet delivery effects in one shot; acks were
        # already generated NIC-side as fragments arrived.
        env = self._env_cache.pop(pkt.msg_id, None)
        if env is not None and "long" not in pkt.meta:
            pkt.envelope = env
            pkt.is_first = True
        self._rx_deliver(pkt)


def main() -> None:
    base = portals_system()
    custom = dataclasses.replace(base, name="Portals/msg-irq")
    register_device(custom.name, MessageInterruptDevice)

    cfg = PollingConfig(msg_bytes=100 * KB, poll_interval_iters=1_000,
                        measure_s=0.05)
    print(f"{'system':16s} {'bandwidth':>12s} {'availability':>13s} "
          f"{'interrupts':>11s}")
    for system in (base, custom):
        pt = run_polling(system, cfg)
        print(f"{system.name:16s} {pt.bandwidth_MBps:9.2f} MB/s "
              f"{pt.availability:13.3f} {pt.interrupts:11d}")

    print()
    print("One interrupt per message instead of per 4 KB packet slashes the")
    print("worker-side interrupt count; COMB quantifies how much CPU that")
    print("returns to the application at the same poll interval.")


if __name__ == "__main__":
    main()
