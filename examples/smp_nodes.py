#!/usr/bin/env python3
"""SMP nodes: the paper's §7 future work, implemented.

The uniprocessor availability method reports one number per node; on an
SMP node that number only describes the processor the interrupts land on.
This example runs the polling method on 2- and 4-way Portals nodes and
measures each CPU independently.

Usage::

    python examples/smp_nodes.py
"""

from repro import PollingConfig, portals_system
from repro.ext import run_smp_polling, smp_system

KB = 1024


def main() -> None:
    cfg = PollingConfig(msg_bytes=100 * KB, poll_interval_iters=1_000,
                        measure_s=0.03, warmup_s=0.005)
    for n_cpus in (2, 4):
        system = smp_system(portals_system(), n_cpus)
        result = run_smp_polling(system, cfg)
        cpus = "  ".join(
            f"cpu{i}={a:.3f}" for i, a in enumerate(result.per_cpu_availability)
        )
        print(f"{n_cpus}-way node: bandwidth "
              f"{result.bandwidth_Bps / 1e6:6.2f} MB/s")
        print(f"  per-CPU availability: {cpus}")
        print(f"  naive single figure : {result.naive_availability:.3f} "
              f"(describes only the interrupt CPU)")
        print()

    print("Interrupts are routed to CPU 0 (as on 2002-era Linux): the other")
    print("processors keep ~100% availability, which the uniprocessor")
    print("method cannot express — hence the per-CPU extension.")


if __name__ == "__main__":
    main()
