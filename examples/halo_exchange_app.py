#!/usr/bin/env python3
"""What overlap is worth to an application: a halo-exchange loop.

The paper's introduction motivates COMB with exactly this question: given
that microbenchmarks report great latency/bandwidth, how much time does a
*real* compute/communicate loop actually save by overlapping?  This example
runs an iterative two-rank "stencil": each iteration computes for a fixed
work interval and exchanges a 100 KB halo with the neighbour, under three
programming styles:

* **blocking** — `sendrecv` after the compute (no overlap attempted);
* **nonblocking** — post `isend`/`irecv`, compute, `waitall` (the PWW
  pattern: overlap only if the system provides application offload);
* **nonblocking+test** — same, with one `MPI_Test` poked into the compute
  (the paper's §4.3 remedy for library-polled stacks).

Usage::

    python examples/halo_exchange_app.py [--iters 30] [--work 1000000]
"""

import argparse

from repro.config import gm_system, portals_system
from repro.ext import offload_nic_system
from repro.mpi import build_world

KB = 1024
HALO = 100 * KB


def run_app(system, style: str, iterations: int, work_iters: int) -> float:
    """Wall time per iteration of the halo-exchange loop."""
    world = build_world(system)
    engine = world.engine
    iter_s = system.machine.cpu.work_iter_s
    out = {}

    def rank(rank_id, record):
        node = world.cluster[rank_id]
        ctx = node.new_context(f"halo.rank{rank_id}")
        h = world.endpoint(rank_id).bind(ctx)
        peer = 1 - rank_id
        t0 = engine.now
        for _i in range(iterations):
            if style == "blocking":
                yield ctx.compute(work_iters * iter_s)
                yield from h.sendrecv(peer, HALO, peer, HALO,
                                      sendtag=1, recvtag=1)
            else:
                rreq = yield from h.irecv(peer, HALO, tag=1)
                sreq = yield from h.isend(peer, HALO, tag=1)
                if style == "nonblocking+test":
                    # Two tests, spread out: with symmetric workers the
                    # peer's clear-to-send lands after our first call, so a
                    # single test (enough in COMB's asymmetric PWW) is not.
                    yield ctx.compute(work_iters * iter_s * 0.1)
                    yield from h.testsome([rreq, sreq])
                    yield ctx.compute(work_iters * iter_s * 0.2)
                    yield from h.testsome([rreq, sreq])
                    yield ctx.compute(work_iters * iter_s * 0.7)
                else:
                    yield ctx.compute(work_iters * iter_s)
                yield from h.waitall([rreq, sreq])
        if record:
            out["per_iter"] = (engine.now - t0) / iterations

    p0 = engine.spawn(rank(0, True))
    p1 = engine.spawn(rank(1, False))
    engine.run(engine.all_of([p0, p1]))
    return out["per_iter"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iters", type=int, default=20)
    parser.add_argument("--work", type=int, default=1_000_000,
                        help="compute per iteration (loop iterations; 1M = 4 ms)")
    args = parser.parse_args()

    systems = [gm_system(), portals_system(), offload_nic_system()]
    styles = ["blocking", "nonblocking", "nonblocking+test"]

    print(f"halo exchange: {HALO // KB} KB each way, "
          f"{args.work} loop iterations of compute per step\n")
    print(f"{'system':12s} " + " ".join(f"{s:>18s}" for s in styles)
          + f" {'best speedup':>13s}")
    for system in systems:
        times = [run_app(system, style, args.iters, args.work)
                 for style in styles]
        speedup = times[0] / min(times)
        cells = " ".join(f"{t * 1e3:15.3f} ms" for t in times)
        print(f"{system.name:12s} {cells} {speedup:12.2f}x")

    print()
    print("Reading the table:")
    print("  * Portals/OffloadNIC: the plain nonblocking loop hides the")
    print("    exchange inside the compute (application offload) — the")
    print("    speedup COMB's PWW method predicts.")
    print("  * GM: nonblocking alone buys ~nothing (no offload; the wait")
    print("    phase still pays the transfer); adding one MPI_Test during")
    print("    the compute recovers the overlap (§4.3).")


if __name__ == "__main__":
    main()
