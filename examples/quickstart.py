#!/usr/bin/env python3
"""Quickstart: run both COMB methods on both of the paper's systems.

Usage::

    python examples/quickstart.py
"""

from repro import CombSuite, gm_system, portals_system

KB = 1024


def main() -> None:
    for system in (gm_system(), portals_system()):
        suite = CombSuite(system)
        print(f"=== {system.name} ===")

        # Polling method (paper §2.1): bandwidth vs CPU availability at a
        # moderate poll interval.
        pt = suite.polling(msg_bytes=100 * KB, poll_interval_iters=10_000)
        print(f"  polling @ 10k iters : bandwidth {pt.bandwidth_MBps:6.2f} MB/s, "
              f"availability {pt.availability:.3f}")

        # Post-Work-Wait method (paper §2.2): where does host time go?
        pw = suite.pww(msg_bytes=100 * KB, work_interval_iters=1_000_000)
        print(f"  PWW @ 1M iters      : post {pw.post_s * 1e6:6.1f} us, "
              f"work {pw.work_s * 1e6:8.1f} us "
              f"(dry {pw.work_dry_s * 1e6:.1f} us), "
              f"wait {pw.wait_s * 1e6:7.1f} us")

        # The headline question: does this stack provide application
        # offload (progress without MPI library calls)?
        print(f"  {suite.offload_report()}")
        print()


if __name__ == "__main__":
    main()
