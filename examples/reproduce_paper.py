#!/usr/bin/env python3
"""Regenerate every results figure of the paper (Figs 4–17).

Renders terminal plots, checks the paper's qualitative claims against the
regenerated data, and optionally exports CSV/JSON per figure.

Usage::

    python examples/reproduce_paper.py                 # full resolution
    python examples/reproduce_paper.py --quick         # coarse grids
    python examples/reproduce_paper.py --out results/  # plus CSV/JSON
    python examples/reproduce_paper.py --jobs 4        # parallel sweeps
    python examples/reproduce_paper.py --no-cache      # force re-simulation

Sweep points are cached under ``.comb_cache/`` (content-addressed, salted
with the simulator's source hash), so a second run only simulates points
the first one never saw — typically none.
"""

import argparse
import sys
import time

from repro.analysis import export_figures, format_report, run_all
from repro.core import PointCache, SweepExecutor
from repro.core.executor import DEFAULT_CACHE_DIR


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="1 point per decade instead of 2")
    parser.add_argument("--out", default=None,
                        help="directory to export CSV/JSON into")
    parser.add_argument("--ids", nargs="*", default=None,
                        help="subset of figure ids (fig04..fig17)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep points")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk point cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="point-cache directory")
    args = parser.parse_args()

    cache = None if args.no_cache else PointCache(args.cache_dir)
    t0 = time.time()
    with SweepExecutor(jobs=args.jobs, cache=cache) as executor:
        reports = run_all(per_decade=1 if args.quick else 2,
                          fig_ids=args.ids, executor=executor)
        stats = executor.stats
    print(format_report(reports))
    if args.out:
        paths = export_figures([r.figure for r in reports], args.out)
        print(f"\nexported {len(paths)} files to {args.out}")
    print(f"\nregenerated {len(reports)} figures in {time.time() - t0:.1f}s "
          f"(jobs={args.jobs}, cache hits {stats.hits}/{stats.lookups})")
    return 0 if all(r.ok for r in reports) else 1


if __name__ == "__main__":
    sys.exit(main())
