#!/usr/bin/env python3
"""Fan-in scaling: one worker, many neighbours.

Extends the paper's two-node polling method to 1–7 support peers (the
8-port switch's limit) and shows where each stack saturates: GM at the
worker's host bus (availability untouched), Portals at the worker's CPU
(availability collapses while bandwidth barely gains).

Usage::

    python examples/fanin_scaling.py
"""

from repro.config import gm_system, portals_system
from repro.core import PollingConfig
from repro.patterns.fanin import run_fanin_polling

KB = 1024


def main() -> None:
    cfg = PollingConfig(msg_bytes=100 * KB, poll_interval_iters=1_000,
                        measure_s=0.1, warmup_s=0.02)
    for factory in (gm_system, portals_system):
        system = factory()
        print(f"=== {system.name} ===")
        print(f"  {'peers':>5s} {'aggregate bw':>13s} {'per peer':>10s} "
              f"{'avail':>7s} {'irq/s':>8s}")
        for n in (1, 2, 4, 7):
            fp = run_fanin_polling(system, cfg, n)
            pt = fp.point
            print(f"  {n:5d} {pt.bandwidth_MBps:10.1f} MB/s "
                  f"{fp.per_peer_bandwidth_Bps / 1e6:7.1f} MB/s "
                  f"{pt.availability:7.3f} "
                  f"{pt.interrupts / pt.elapsed_s:8.0f}")
        print()
    print("GM: the shared host bus is the ceiling; adding peers dilutes")
    print("per-peer bandwidth but costs the worker no CPU.  Portals: every")
    print("peer's packets interrupt the same worker CPU, so availability")
    print("sinks toward the floor while aggregate bandwidth plateaus.")


if __name__ == "__main__":
    main()
