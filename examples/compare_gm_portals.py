#!/usr/bin/env python3
"""Compare GM and Portals the way the paper's §4 does.

Regenerates the data behind Figures 8 (polling bandwidth), 10 (post time)
and 11 (wait time) and renders them as terminal plots.

Usage::

    python examples/compare_gm_portals.py [--per-decade N]
"""

import argparse

from repro.analysis import render, run_figure


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--per-decade", type=int, default=2,
                        help="sweep resolution (points per decade)")
    args = parser.parse_args()

    for fig_id in ("fig08", "fig10", "fig11"):
        report = run_figure(fig_id, per_decade=args.per_decade)
        print(render(report.figure))
        for claim in report.claims:
            mark = "PASS" if claim.ok else "FAIL"
            print(f"  [{mark}] {claim.claim} ({claim.detail})")
        print()

    print("Reading the tea leaves, as §4.1 does:")
    print("  * Fig 8: GM's OS-bypass path moves bytes without interrupts or")
    print("    kernel copies, so it sustains far higher bandwidth.")
    print("  * Fig 10: Portals posts trap into the kernel (expensive); GM")
    print("    posts are user-level descriptor writes.")
    print("  * Fig 11: with a long work phase, Portals finishes messaging")
    print("    before the wait (application offload); GM still pays the")
    print("    whole transfer in MPI_Waitall — no library calls, no data.")


if __name__ == "__main__":
    main()
