"""Unit-dimension inference rules UNIT003–UNIT004.

The v1 suffix rules (:mod:`repro.lint.units`) check *names*: ``a_s +
b_us`` is caught because both operands wear suffixes.  They are blind the
moment a value passes through an unsuffixed temporary::

    slack = poll_interval_s          # dimension enters the temporary
    budget_bytes = msg_bytes + slack # UNIT001/002 see nothing wrong

These rules run a fixpoint abstract interpretation (engine in
:mod:`repro.lint.flow`) that *propagates* unit dimensions through
assignments, arithmetic, calls, and branches:

* **UNIT003** — an addition, subtraction, or ordering comparison whose
  operands carry *different inferred dimensions*, where at least one
  side's dimension arrived through dataflow rather than a suffix on the
  operand itself (the suffix-on-both case stays UNIT002's).
* **UNIT004** — dimension laundering: a value whose inferred dimension
  is known lands in a binding whose suffix declares a *different*
  family (``count_iters = elapsed``), silently relabeling the quantity.

Dimensions are seeded from the suffix discipline
(:data:`repro.lint.units.SUFFIX_FAMILIES`), from the
:mod:`repro.sim.units` conversion helpers, and from literal ``# unit:
<family>`` annotations.  Arithmetic follows the physical algebra: a
count scales any dimension, ``time × bandwidth → size``, ``size / time
→ bandwidth``, ``size / bandwidth → time``, same-dimension division
drops to dimensionless.  Anything the algebra cannot prove is *unknown*,
and unknown never fires a rule — joins over branches can only suppress
diagnostics, never invent them.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .flow import Analysis, Env, Report, function_defs, run_analysis
from .model import FileContext, LintViolation
from .rules import FileRule, register
from .units import SUFFIX_FAMILIES, unit_suffix_of

#: The dimension vocabulary (== the suffix families).
DIMENSIONS: Tuple[str, ...] = tuple(SUFFIX_FAMILIES)

#: ``repro.sim.units`` helpers (matched by dotted-name tail) → dimension
#: of their return value.
UNIT_HELPER_DIMS: Dict[str, str] = {
    "usec": "time",
    "msec": "time",
    "nsec": "time",
    "to_usec": "time",
    "kib": "size",
    "mib": "size",
    "mbps": "bandwidth",
    "to_mbps": "bandwidth",
    "mhz": "frequency",
}

#: Builtins whose result keeps the (joined) dimension of their arguments.
_DIM_PRESERVING_CALLS = {"abs", "min", "max", "round"}

#: ``a / b`` → result dimension, by (dim(a), dim(b)).
_DIV_TABLE: Dict[Tuple[str, str], str] = {
    ("size", "time"): "bandwidth",
    ("size", "bandwidth"): "time",
    ("count", "time"): "frequency",
    ("count", "frequency"): "time",
    ("size", "count"): "size",
    ("time", "count"): "time",
    ("count", "count"): "count",
}

#: ``a * b`` → result dimension (symmetric pairs listed once).
_MUL_TABLE: Dict[Tuple[str, str], str] = {
    ("time", "bandwidth"): "size",
    ("time", "frequency"): "count",
    ("count", "time"): "time",
    ("count", "size"): "size",
    ("count", "bandwidth"): "bandwidth",
    ("count", "count"): "count",
    ("count", "frequency"): "frequency",
}

_ANNOTATION_RE = re.compile(r"#\s*unit:\s*([a-z]+)")

_ORDERED_CMP = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def suffix_dim(name: str) -> Optional[str]:
    """The dimension a name's unit suffix declares, if any."""
    tagged = unit_suffix_of(name)
    return tagged[0] if tagged else None


def _node_name(node: ast.AST) -> Optional[str]:
    """The identifier a Name/Attribute load presents (attribute tail)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class DimAnalysis(Analysis):
    """Forward dimension propagation for one function."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        #: line → dimension forced by a ``# unit: <family>`` annotation.
        self.annotations: Dict[int, str] = {}
        for lineno, text in enumerate(ctx.lines, start=1):
            m = _ANNOTATION_RE.search(text)
            if m and m.group(1) in SUFFIX_FAMILIES:
                self.annotations[lineno] = m.group(1)

    # ------------------------------------------------------------- seeding
    def seed(self, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> Env:
        env: Env = {}
        args = fn.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            dim = suffix_dim(arg.arg)
            if dim is not None:
                env[arg.arg] = frozenset({dim})
        return env

    # ------------------------------------------------------------ transfer
    def transfer(
        self, item: ast.AST, env: Env, report: Optional[Report]
    ) -> None:
        if isinstance(item, ast.Assign):
            dim = self._eval(item.value, env, report)
            for target in item.targets:
                self._bind(target, item.value, dim, env, report)
        elif isinstance(item, ast.AnnAssign):
            if item.value is not None:
                dim = self._eval(item.value, env, report)
                self._bind(item.target, item.value, dim, env, report)
        elif isinstance(item, ast.AugAssign):
            target_dim = self._target_dim(item.target, env)
            value_dim = self._eval(item.value, env, report)
            if isinstance(item.op, (ast.Add, ast.Sub)):
                self._check_additive(
                    item, item.target, target_dim, item.value, value_dim,
                    report,
                )
            result = self._binop_result(item.op, target_dim, value_dim)
            self._bind(item.target, item.value, result, env, report,
                       laundering=False)
        elif isinstance(item, (ast.For, ast.AsyncFor)):
            self._eval(item.iter, env, report)
            # Loop targets: no element-dimension tracking — clear facts.
            for name in self._target_names(item.target):
                env.pop(name, None)
        elif isinstance(item, ast.Return):
            if item.value is not None:
                self._eval(item.value, env, report)
        elif isinstance(item, ast.stmt):
            for expr in ast.iter_child_nodes(item):
                if isinstance(expr, ast.expr):
                    self._eval(expr, env, report)
        elif isinstance(item, ast.expr):
            self._eval(item, env, report)

    # ------------------------------------------------------------- binding
    def _bind(
        self,
        target: ast.AST,
        value: ast.expr,
        dim: Optional[FrozenSet[str]],
        env: Env,
        report: Optional[Report],
        laundering: bool = True,
    ) -> None:
        forced = self.annotations.get(getattr(target, "lineno", -1))
        if forced is not None:
            dim = frozenset({forced})
        if isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            values: List[Optional[ast.expr]]
            if isinstance(value, ast.Tuple) and len(value.elts) == len(elts):
                values = list(value.elts)
            else:
                values = [None] * len(elts)
            for elt, sub in zip(elts, values):
                sub_dim = (
                    self._eval(sub, env, None) if sub is not None else None
                )
                self._bind(elt, sub or value, sub_dim, env, report,
                           laundering=sub is not None)
            return
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is None:
            return
        declared = suffix_dim(name)
        if declared is not None:
            if (
                laundering
                and report is not None
                and dim is not None
                and len(dim) == 1
                and declared not in dim
            ):
                (inferred,) = dim
                report(
                    target,
                    f"UNIT004:{name!r} declares a {declared} quantity but "
                    f"is assigned a value inferred to be {inferred}; the "
                    "suffix relabels the dimension without a conversion",
                )
            dim = frozenset({declared})
        if isinstance(target, ast.Name):
            if dim is not None:
                env[target.id] = dim
            else:
                env.pop(target.id, None)

    @staticmethod
    def _target_names(target: ast.AST) -> Iterator[str]:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                yield node.id

    def _target_dim(
        self, target: ast.AST, env: Env
    ) -> Optional[FrozenSet[str]]:
        if isinstance(target, ast.Name):
            got = env.get(target.id)
            if got is not None:
                return got
        name = _node_name(target)
        if name is not None:
            declared = suffix_dim(name)
            if declared is not None:
                return frozenset({declared})
        return None

    # ---------------------------------------------------------- evaluation
    def _eval(
        self, node: ast.expr, env: Env, report: Optional[Report]
    ) -> Optional[FrozenSet[str]]:
        """Abstract value of ``node``; ``None`` = unknown dimension."""
        if isinstance(node, ast.Name):
            got = env.get(node.id)
            if got is not None:
                return got
            dim = suffix_dim(node.id)
            return frozenset({dim}) if dim else None
        if isinstance(node, ast.Attribute):
            self._eval(node.value, env, report)
            dim = suffix_dim(node.attr)
            return frozenset({dim}) if dim else None
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env, report)
            right = self._eval(node.right, env, report)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                self._check_additive(
                    node, node.left, left, node.right, right, report
                )
            return self._binop_result(node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, env, report)
        if isinstance(node, ast.Compare):
            prev_node: ast.expr = node.left
            prev = self._eval(node.left, env, report)
            for op, comparator in zip(node.ops, node.comparators):
                cur = self._eval(comparator, env, report)
                if isinstance(op, _ORDERED_CMP):
                    self._check_additive(
                        node, prev_node, prev, comparator, cur, report,
                        verb="comparing",
                    )
                prev_node, prev = comparator, cur
            return None
        if isinstance(node, ast.Call):
            for arg in node.args:
                self._eval(arg, env, report)
            for kw in node.keywords:
                self._eval(kw.value, env, report)
            dotted = self.ctx.dotted_name(node.func) or ""
            tail = dotted.rpartition(".")[2]
            helper = UNIT_HELPER_DIMS.get(tail)
            if helper is not None:
                return frozenset({helper})
            if tail == "len":
                return frozenset({"count"})
            if tail in _DIM_PRESERVING_CALLS and node.args:
                dims = [self._eval(a, env, None) for a in node.args]
                known = [d for d in dims if d is not None]
                if known and all(d == known[0] for d in known):
                    return known[0]
            return None
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env, report)
            a = self._eval(node.body, env, report)
            b = self._eval(node.orelse, env, report)
            if a is not None and b is not None:
                return a | b
            return a if b is None else b
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value, env, report)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, env, report)
            return None
        if isinstance(node, ast.Constant):
            return None
        # Comprehensions, lambdas, f-strings, subscripts, …: walk children
        # for reportable sub-expressions, yield no dimension.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, env, report)
        return None

    # ------------------------------------------------------------- algebra
    def _binop_result(
        self,
        op: ast.operator,
        left: Optional[FrozenSet[str]],
        right: Optional[FrozenSet[str]],
    ) -> Optional[FrozenSet[str]]:
        if isinstance(op, (ast.Add, ast.Sub)):
            if left is not None and left == right:
                return left
            return None
        a = self._single(left)
        b = self._single(right)
        if isinstance(op, ast.Mult):
            if a is None or b is None:
                return None
            got = _MUL_TABLE.get((a, b)) or _MUL_TABLE.get((b, a))
            return frozenset({got}) if got else None
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if a is None or b is None:
                return None
            if a == b:
                return None  # ratio: dimensionless
            got = _DIV_TABLE.get((a, b))
            return frozenset({got}) if got else None
        return None

    @staticmethod
    def _single(dim: Optional[FrozenSet[str]]) -> Optional[str]:
        if dim is not None and len(dim) == 1:
            return next(iter(dim))
        return None

    def _check_additive(
        self,
        anchor: ast.AST,
        left_node: ast.AST,
        left: Optional[FrozenSet[str]],
        right_node: ast.AST,
        right: Optional[FrozenSet[str]],
        report: Optional[Report],
        verb: str = "combining",
    ) -> None:
        if report is None:
            return
        a = self._single(left)
        b = self._single(right)
        if a is None or b is None or a == b:
            return
        # Both operands wearing their suffix on the node itself is the v1
        # UNIT002 case; UNIT003 exists for the flows UNIT002 cannot see.
        def syntactic(node: ast.AST) -> bool:
            name = _node_name(node)
            return name is not None and suffix_dim(name) is not None

        if syntactic(left_node) and syntactic(right_node):
            return
        report(
            anchor,
            f"UNIT003:{verb} a {a} quantity with a {b} quantity "
            "(dimensions inferred through dataflow); convert to one "
            "dimension explicitly (repro.sim.units)",
        )


class _DimRuleBase(FileRule):
    """Shared driver: run :class:`DimAnalysis`, keep this rule's hits."""

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        violations: List[LintViolation] = []

        def sink(anchor: ast.AST, tagged: str) -> None:
            rule, _, message = tagged.partition(":")
            if rule == self.rule_id:
                violations.append(
                    ctx.make_violation(self.rule_id, anchor, message)
                )

        analysis = DimAnalysis(ctx)
        for fn in function_defs(ctx.tree):
            run_analysis(fn, analysis, sink)
        seen: Set[Tuple[int, int, str]] = set()
        for v in violations:
            key = (v.line, v.col, v.message)
            if key not in seen:
                seen.add(key)
                yield v


@register
class MixedDimensionRule(_DimRuleBase):
    """UNIT003: inferred-dimension mismatch in additive/comparison ops."""

    rule_id = "UNIT003"
    summary = (
        "addition/subtraction/comparison across different inferred unit "
        "dimensions (dataflow through unsuffixed temporaries)"
    )


@register
class DimensionLaunderingRule(_DimRuleBase):
    """UNIT004: suffix relabels a value of a different inferred dimension."""

    rule_id = "UNIT004"
    summary = (
        "unit-suffixed binding assigned a value whose inferred dimension "
        "contradicts the suffix (dimension laundering)"
    )


__all__ = [
    "DIMENSIONS",
    "UNIT_HELPER_DIMS",
    "DimAnalysis",
    "MixedDimensionRule",
    "DimensionLaunderingRule",
    "suffix_dim",
]
