"""Hot-path I/O rule SIM001.

Engine hot paths — everything under the simulation packages plus the
COMB method drivers in ``repro.core`` — execute millions of times per
sweep and must never touch the host: a stray ``open()`` or
``time.sleep()`` couples simulated results to filesystem state and
wall-clock scheduling, and a ``print()`` in a pool worker interleaves
nondeterministically with the parent's output.  All I/O belongs in the
orchestration layer (executor, CLI, analysis).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from .model import FileContext, LintViolation
from .rules import FileRule, register

#: Canonical dotted names that block or touch the host.
BLOCKING_CALLS: Set[str] = {
    "open",
    "input",
    "print",
    "time.sleep",
    "os.system",
    "os.popen",
    "os.fork",
    "socket.socket",
    "socket.create_connection",
}

#: Any call under these prefixes is host I/O.
BLOCKING_PREFIXES: Tuple[str, ...] = (
    "subprocess.",
    "urllib.",
    "requests.",
    "shutil.",
)

#: Method names that are file I/O no matter the receiver (Path methods).
FILE_METHODS: Set[str] = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
    "unlink",
    "mkdir",
}


@register
class HotPathIoRule(FileRule):
    """SIM001: no blocking I/O inside engine hot paths."""

    rule_id = "SIM001"
    summary = (
        "blocking/host I/O (open, sleep, subprocess, print, Path I/O) "
        "inside an engine hot path"
    )

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        if not ctx.hot_scope:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.dotted_name(node.func)
            if name is not None and (
                name in BLOCKING_CALLS or name.startswith(BLOCKING_PREFIXES)
            ):
                yield ctx.make_violation(
                    self.rule_id,
                    node,
                    f"{name}() performs host I/O inside an engine hot "
                    "path; move it to the orchestration layer "
                    "(executor/CLI/analysis)",
                )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in FILE_METHODS
            ):
                yield ctx.make_violation(
                    self.rule_id,
                    node,
                    f".{node.func.attr}() is file I/O inside an engine "
                    "hot path; hot-path code must stay host-independent",
                )


__all__ = ["HotPathIoRule"]
