"""Hot-path safety rules SIM001–SIM002.

Engine hot paths — everything under the simulation packages plus the
COMB method drivers in ``repro.core`` — execute millions of times per
sweep and must never touch the host: a stray ``open()`` or
``time.sleep()`` couples simulated results to filesystem state and
wall-clock scheduling, and a ``print()`` in a pool worker interleaves
nondeterministically with the parent's output.  All I/O belongs in the
orchestration layer (executor, CLI, analysis).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional, Set, Tuple

from .model import FileContext, LintViolation
from .rules import FileRule, register
from .units import unit_suffix_of

#: Canonical dotted names that block or touch the host.
BLOCKING_CALLS: Set[str] = {
    "open",
    "input",
    "print",
    "time.sleep",
    "os.system",
    "os.popen",
    "os.fork",
    "socket.socket",
    "socket.create_connection",
}

#: Any call under these prefixes is host I/O.
BLOCKING_PREFIXES: Tuple[str, ...] = (
    "subprocess.",
    "urllib.",
    "requests.",
    "shutil.",
)

#: Method names that are file I/O no matter the receiver (Path methods).
FILE_METHODS: Set[str] = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
    "unlink",
    "mkdir",
}


@register
class HotPathIoRule(FileRule):
    """SIM001: no blocking I/O inside engine hot paths."""

    rule_id = "SIM001"
    summary = (
        "blocking/host I/O (open, sleep, subprocess, print, Path I/O) "
        "inside an engine hot path"
    )

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        if not ctx.hot_scope:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.dotted_name(node.func)
            if name is not None and (
                name in BLOCKING_CALLS or name.startswith(BLOCKING_PREFIXES)
            ):
                yield ctx.make_violation(
                    self.rule_id,
                    node,
                    f"{name}() performs host I/O inside an engine hot "
                    "path; move it to the orchestration layer "
                    "(executor/CLI/analysis)",
                )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in FILE_METHODS
            ):
                yield ctx.make_violation(
                    self.rule_id,
                    node,
                    f".{node.func.attr}() is file I/O inside an engine "
                    "hot path; hot-path code must stay host-independent",
                )


#: Modules implementing burst replay / quiescence fast-forward, where
#: every timestamp must reproduce the legacy per-event float arithmetic
#: bit for bit (see the commit-chain comments in ``hardware/nic.py``).
BURST_REPLAY_MODULES: FrozenSet[str] = frozenset(
    {
        "hardware/nic.py",
        "sim/resources.py",
        "sim/engine.py",
        "core/quiescence.py",
    }
)


@register
class BurstAccumulationRule(FileRule):
    """SIM002: float time accumulation off-contract in burst-replay loops.

    The burst/fast-forward paths guarantee bit-identity with the legacy
    per-packet event chain by reproducing its arithmetic exactly — the
    engine's delay-based scheduling observes fire times, so each step is
    the round-trip ``x = x + (y - x)``, never a running ``x += dt``.  A
    naive accumulation differs by a ulp after a few fragments and the
    golden figures drift.  This rule rejects, inside loops in the replay
    modules, (a) ``+=``/``-=`` on a time-suffixed quantity and (b)
    self-accumulation ``x = x + e`` where ``e`` is not the sanctioned
    round-trip form ``(y - x)``.
    """

    rule_id = "SIM002"
    summary = (
        "running float accumulation in a burst-replay/fast-forward loop "
        "instead of the per-fragment round-trip form x = x + (y - x)"
    )

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        if ctx.repro_relpath not in BURST_REPLAY_MODULES:
            return
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for stmt in ast.walk(loop):
                if isinstance(stmt, ast.AugAssign) and isinstance(
                    stmt.op, (ast.Add, ast.Sub)
                ):
                    yield from self._check_augmented(ctx, stmt)
                elif isinstance(stmt, ast.Assign):
                    yield from self._check_self_accumulation(ctx, stmt)

    @staticmethod
    def _target_name(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return None

    @staticmethod
    def _mentions_time(expr: ast.AST) -> bool:
        """Does any name inside ``expr`` carry a time suffix?"""
        for node in ast.walk(expr):
            name: Optional[str] = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            if name is not None:
                tagged = unit_suffix_of(name)
                if tagged is not None and tagged[0] == "time":
                    return True
        return False

    @staticmethod
    def _is_count_increment(expr: ast.AST) -> bool:
        """Integer-literal or count-suffixed increment (loop bookkeeping)."""
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, int)
        name: Optional[str] = None
        if isinstance(expr, ast.Name):
            name = expr.id
        elif isinstance(expr, ast.Attribute):
            name = expr.attr
        if name is not None:
            tagged = unit_suffix_of(name)
            return tagged is not None and tagged[0] in {"count", "size"}
        return False

    def _check_augmented(
        self, ctx: FileContext, stmt: ast.AugAssign
    ) -> Iterator[LintViolation]:
        target_key = self._expr_key(stmt.target)
        if target_key is None:
            return
        # ``x += (y - x)`` is the round-trip written augmented: same
        # float operation as the sanctioned assign form.
        if (
            isinstance(stmt.op, ast.Add)
            and isinstance(stmt.value, ast.BinOp)
            and isinstance(stmt.value.op, ast.Sub)
            and self._expr_key(stmt.value.right) == target_key
        ):
            return
        name = self._target_name(stmt.target)
        tagged = unit_suffix_of(name) if name else None
        target_is_time = tagged is not None and tagged[0] == "time"
        if isinstance(stmt.target, ast.Name) and tagged is None:
            # A bare local in a replay loop is presumed a chain timestamp
            # (the hot path hoists everything to unsuffixed locals);
            # only integer/count bookkeeping is exempt.
            if self._is_count_increment(stmt.value):
                return
        elif not target_is_time and not self._mentions_time(stmt.value):
            return  # count/byte bookkeeping, not a timestamp
        yield ctx.make_violation(
            self.rule_id,
            stmt,
            f"{name or target_key!r} accumulates time with "
            f"{'+=' if isinstance(stmt.op, ast.Add) else '-='} inside a "
            "replay loop; per-fragment timestamps must use the "
            "round-trip form x = x + (y - x) to stay bit-identical "
            "with the event chain",
        )

    def _check_self_accumulation(
        self, ctx: FileContext, stmt: ast.Assign
    ) -> Iterator[LintViolation]:
        if len(stmt.targets) != 1:
            return
        target_src = self._expr_key(stmt.targets[0])
        if target_src is None:
            return
        value = stmt.value
        if not (
            isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add)
        ):
            return
        # x = x + e  (or  x = e + x)
        if self._expr_key(value.left) == target_src:
            increment = value.right
        elif self._expr_key(value.right) == target_src:
            increment = value.left
        else:
            return
        # Sanctioned: the increment is the round-trip (y - x).
        if (
            isinstance(increment, ast.BinOp)
            and isinstance(increment.op, ast.Sub)
            and self._expr_key(increment.right) == target_src
        ):
            return
        yield ctx.make_violation(
            self.rule_id,
            stmt,
            f"{target_src!r} self-accumulates inside a replay loop; only "
            "the round-trip form x = x + (y - x) matches the legacy "
            "event chain's float arithmetic bit for bit",
        )

    @staticmethod
    def _expr_key(node: ast.AST) -> Optional[str]:
        """Canonical text of a Name/Attribute chain (load/store agnostic)."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            base = BurstAccumulationRule._expr_key(node.value)
            return f"{base}.{node.attr}" if base else None
        return None


__all__ = ["HotPathIoRule", "BurstAccumulationRule"]
