"""Cache-key hygiene rule CACHE001.

The point cache (:mod:`repro.core.executor`) keys every stored result on
a canonical JSON serialization of the task's config dataclasses
(``_jsonable`` walks ``dataclasses.fields`` recursively).  That scheme is
sound *only if* every field of every config dataclass reachable from a
:class:`PointTask` is faithfully canonicalized:

* a field typed ``set`` (or any unordered container) serializes in
  arbitrary order — two identical configs would hash differently;
* a field typed ``Any``/``Callable``/unknown falls through ``_jsonable``
  to ``json.dumps``'s default handling (or crashes) — its value may not
  round-trip stably;
* a ``ClassVar`` never appears in ``dataclasses.fields`` at all — a
  simulation parameter stored there silently escapes the cache key, the
  exact "config field missing from the hash" bug this rule exists for;
* a config class defined in a module outside the executor's
  ``_SALT_SOURCES`` tuple would let *code* changes slip past the salt.

CACHE001 statically cross-checks all four, reading the executor source
for ground truth (``_METHODS``, ``PointTask``, ``task_key``,
``_SALT_SOURCES``) rather than hard-coding class names, so adding a new
method kind automatically extends the check.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .model import FileContext, LintViolation
from .rules import ProjectRule, register

#: Leaf types ``_jsonable``/``json.dumps`` canonicalize exactly.
_STABLE_ATOMS: Set[str] = {"int", "float", "str", "bool", "bytes", "None"}

#: Generic containers whose canonical form is order-stable.
_STABLE_CONTAINERS: Set[str] = {
    "List", "list", "Tuple", "tuple", "Sequence", "Dict", "dict",
    "Mapping", "Optional", "Union",
}

#: Unordered containers: serialization order is undefined.
_UNSTABLE_CONTAINERS: Set[str] = {"Set", "set", "FrozenSet", "frozenset"}


class _ClassIndex:
    """Dataclass and Enum definitions across every linted file."""

    def __init__(self, ctxs: Sequence[FileContext]) -> None:
        self.dataclasses: Dict[str, Tuple[FileContext, ast.ClassDef]] = {}
        self.enums: Set[str] = set()
        for ctx in ctxs:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if self._is_dataclass(node, ctx):
                    self.dataclasses.setdefault(node.name, (ctx, node))
                elif self._is_enum(node, ctx):
                    self.enums.add(node.name)

    @staticmethod
    def _is_dataclass(node: ast.ClassDef, ctx: FileContext) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if ctx.dotted_name(target) in {
                "dataclass", "dataclasses.dataclass"
            }:
                return True
        return False

    @staticmethod
    def _is_enum(node: ast.ClassDef, ctx: FileContext) -> bool:
        for base in node.bases:
            name = ctx.dotted_name(base) or ""
            if name.rpartition(".")[2] in {"Enum", "IntEnum", "StrEnum"}:
                return True
        return False


@register
class CacheKeyRule(ProjectRule):
    """CACHE001: every config field must be hash-stable and hash-visible."""

    rule_id = "CACHE001"
    summary = (
        "config dataclass field invisible to (or unstable under) the "
        "point-cache key hash"
    )

    #: Path tail identifying the executor module in any tree layout.
    EXECUTOR_TAIL = "core/executor.py"

    def check_project(
        self, ctxs: Sequence[FileContext]
    ) -> Iterator[LintViolation]:
        executor = next(
            (
                c for c in ctxs
                if (c.repro_relpath or "") == self.EXECUTOR_TAIL
            ),
            None,
        )
        if executor is None:
            return  # executor not in the linted set: nothing to check
        index = _ClassIndex(ctxs)
        roots, missing_key_parts = self._executor_facts(executor)
        for part, node in missing_key_parts:
            yield executor.make_violation(
                self.rule_id,
                node,
                f"task_key() no longer hashes {part!r}; every cache key "
                "must cover the full system and method config",
            )
        salt_sources = self._salt_sources(executor)
        checked: Set[str] = set()
        for root in roots:
            yield from self._check_class(
                root, index, salt_sources, checked
            )

    # ------------------------------------------------------- executor facts
    def _executor_facts(
        self, executor: FileContext
    ) -> Tuple[List[str], List[Tuple[str, ast.AST]]]:
        """Config roots named by the executor + missing task_key parts.

        Roots are the first tuple element of every ``_METHODS`` value
        plus the annotation names of ``PointTask``'s fields.
        """
        roots: List[str] = []
        for node in ast.walk(executor.tree):
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "_METHODS"
                    for t in node.targets
                )
                and isinstance(node.value, ast.Dict)
            ):
                for value in node.value.values:
                    if (
                        isinstance(value, ast.Tuple)
                        and value.elts
                        and isinstance(value.elts[0], ast.Name)
                    ):
                        roots.append(value.elts[0].id)
            elif isinstance(node, ast.ClassDef) and node.name == "PointTask":
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign):
                        roots.extend(
                            self._annotation_class_names(stmt.annotation)
                        )
        missing: List[Tuple[str, ast.AST]] = []
        task_key = next(
            (
                n for n in ast.walk(executor.tree)
                if isinstance(n, ast.FunctionDef) and n.name == "task_key"
            ),
            None,
        )
        if task_key is not None:
            hashed = self._hashed_dict_keys(task_key)
            for part in ("kind", "salt", "system", "cfg"):
                if part not in hashed:
                    missing.append((part, task_key))
        # De-dup while preserving order.
        seen: Set[str] = set()
        uniq: List[str] = []
        for root in roots:
            if root not in seen:
                seen.add(root)
                uniq.append(root)
        return uniq, missing

    @staticmethod
    def _hashed_dict_keys(fn: ast.FunctionDef) -> Set[str]:
        keys: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        keys.add(key.value)
        return keys

    @staticmethod
    def _annotation_class_names(annotation: ast.AST) -> List[str]:
        """Candidate class names inside an annotation expression."""
        names: List[str] = []
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name) and node.id[:1].isupper():
                if node.id not in {"Union", "Optional", "List", "Tuple",
                                   "Dict", "Sequence", "Mapping"}:
                    names.append(node.id)
        return names

    def _salt_sources(self, executor: FileContext) -> Optional[Set[str]]:
        for node in ast.walk(executor.tree):
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "_SALT_SOURCES"
                    for t in node.targets
                )
                and isinstance(node.value, (ast.Tuple, ast.List))
            ):
                out: Set[str] = set()
                for elt in node.value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(
                        elt.value, str
                    ):
                        out.add(elt.value)
                return out
        return None

    # ------------------------------------------------------- field checking
    def _check_class(
        self,
        class_name: str,
        index: _ClassIndex,
        salt_sources: Optional[Set[str]],
        checked: Set[str],
    ) -> Iterator[LintViolation]:
        if class_name in checked or class_name not in index.dataclasses:
            return
        checked.add(class_name)
        ctx, node = index.dataclasses[class_name]
        if salt_sources is not None and ctx.repro_relpath is not None:
            top = ctx.repro_relpath.split("/", 1)[0]
            if top not in salt_sources:
                yield ctx.make_violation(
                    self.rule_id,
                    node,
                    f"config dataclass {class_name} lives outside the "
                    "executor's _SALT_SOURCES; edits here would not "
                    "invalidate cached points",
                )
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            field_name = stmt.target.id
            annotation = stmt.annotation
            if self._is_classvar(annotation, ctx):
                yield ctx.make_violation(
                    self.rule_id,
                    stmt,
                    f"{class_name}.{field_name} is a ClassVar: it is "
                    "excluded from dataclasses.fields() and therefore "
                    "invisible to the cache-key hash",
                )
                continue
            problem = self._annotation_problem(annotation, index, ctx)
            if problem is not None:
                yield ctx.make_violation(
                    self.rule_id,
                    stmt,
                    f"{class_name}.{field_name}: {problem}",
                )
            for nested in self._annotation_class_names(annotation):
                if nested in index.dataclasses:
                    yield from self._check_class(
                        nested, index, salt_sources, checked
                    )

    @staticmethod
    def _is_classvar(annotation: ast.AST, ctx: FileContext) -> bool:
        target = annotation
        if isinstance(target, ast.Subscript):
            target = target.value
        name = ctx.dotted_name(target) or ""
        return name.rpartition(".")[2] == "ClassVar"

    def _annotation_problem(
        self,
        annotation: ast.AST,
        index: _ClassIndex,
        ctx: FileContext,
    ) -> Optional[str]:
        """Why this annotation is not hash-stable, or ``None`` if it is."""
        if isinstance(annotation, ast.Constant):
            if annotation.value is None or annotation.value is Ellipsis:
                return None
            if isinstance(annotation.value, str):
                try:
                    parsed = ast.parse(annotation.value, mode="eval").body
                except SyntaxError:
                    return f"unparseable annotation {annotation.value!r}"
                return self._annotation_problem(parsed, index, ctx)
            return f"unexpected annotation literal {annotation.value!r}"
        if isinstance(annotation, ast.Name):
            return self._name_problem(annotation.id, index)
        if isinstance(annotation, ast.Attribute):
            name = ctx.dotted_name(annotation) or "?"
            return self._name_problem(name.rpartition(".")[2], index)
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            return (
                self._annotation_problem(annotation.left, index, ctx)
                or self._annotation_problem(annotation.right, index, ctx)
            )
        if isinstance(annotation, ast.Subscript):
            head = annotation.value
            head_name = (ctx.dotted_name(head) or "?").rpartition(".")[2]
            if head_name in _UNSTABLE_CONTAINERS:
                return (
                    f"{head_name} is unordered; its serialization order "
                    "is undefined, so equal configs could hash unequal"
                )
            if head_name not in _STABLE_CONTAINERS:
                return (
                    f"container {head_name!r} is not canonicalized by "
                    "the cache-key serializer"
                )
            inner = annotation.slice
            elements = (
                inner.elts if isinstance(inner, ast.Tuple) else [inner]
            )
            for element in elements:
                problem = self._annotation_problem(element, index, ctx)
                if problem is not None:
                    return problem
            return None
        return "annotation too dynamic for the cache-key cross-check"

    def _name_problem(
        self, name: str, index: _ClassIndex
    ) -> Optional[str]:
        if name in _STABLE_ATOMS or name == "Ellipsis":
            return None
        if name in _UNSTABLE_CONTAINERS:
            return (
                f"bare {name} is unordered; equal configs could hash "
                "unequal"
            )
        if name in index.enums or name in index.dataclasses:
            return None
        if name in {"Any", "object", "Callable"}:
            return (
                f"{name} is not hash-stable: its JSON form (if any) is "
                "not canonical"
            )
        return (
            f"type {name!r} is not provably hash-stable (not a "
            "primitive, Enum, or config dataclass in the linted set)"
        )


__all__ = ["CacheKeyRule"]
