"""Trace-schema rule OBS001.

The observability stack consumes trace events positionally: the span
stitcher reads ``detail[0]`` of a ``msg_bind`` as the request id, the
attribution pass reads ``detail[1]`` of a ``poll_window`` as the window
length.  An emitter that renames a kind or reorders its detail tuple
silently corrupts every downstream artifact — goldens, attributions,
exports — without raising.

:mod:`repro.obs.schema` declares every event kind and its detail field
layout.  OBS001 is a :class:`~repro.lint.rules.ProjectRule` that reads
the registry *from the linted set's own AST* (like CACHE001 reads the
executor) and cross-checks every ``*.record(...)`` emitter call site:

* the call must pass the full ``(time, source, kind, detail)`` arity;
* a constant ``kind`` must be declared in the registry (exactly, or
  under a wildcard prefix such as ``fault_``/``q_``);
* when the detail is a tuple literal its length must match the declared
  field count.

Dynamically composed kinds (f-strings, concatenation) are skipped —
those sites are covered by the wildcard prefixes they construct.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .model import FileContext, LintViolation
from .rules import ProjectRule, register

#: Receiver names that identify a tracer emitter call site: the chain
#: tail before ``.record`` (``trace.record``, ``self.tracer.record``,
#: ``engine.trace.record``).
_TRACER_RECEIVERS = frozenset({"trace", "tracer"})

#: ``self.record(...)`` counts as an emitter inside tracer classes.
_TRACER_CLASS_MARKER = "Tracer"

#: Path tail of the schema registry module in any tree layout.
SCHEMA_TAIL = "obs/schema.py"


def _load_registry(
    schema_ctx: FileContext,
) -> Tuple[Dict[str, int], Tuple[str, ...]]:
    """``(kind → field count, wildcard prefixes)`` from the registry AST."""
    fields: Dict[str, int] = {}
    prefixes: Tuple[str, ...] = ()
    for node in ast.walk(schema_ctx.tree):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id == "EVENT_SCHEMAS" and isinstance(value, ast.Dict):
                for key, val in zip(value.keys, value.values):
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and isinstance(val, ast.Tuple)
                    ):
                        fields[key.value] = len(val.elts)
            elif target.id == "WILDCARD_KIND_PREFIXES" and isinstance(
                value, (ast.Tuple, ast.List)
            ):
                prefixes = tuple(
                    elt.value
                    for elt in value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                )
    return fields, prefixes


@register
class TraceSchemaRule(ProjectRule):
    """OBS001: every tracer emitter must match the declared event schema."""

    rule_id = "OBS001"
    summary = (
        "ObsTracer emitter call site disagrees with the declared event "
        "schema registry (repro.obs.schema)"
    )

    def check_project(
        self, ctxs: Sequence[FileContext]
    ) -> Iterator[LintViolation]:
        schema_ctx = next(
            (c for c in ctxs if (c.repro_relpath or "") == SCHEMA_TAIL),
            None,
        )
        if schema_ctx is None:
            return  # registry not in the linted set: nothing to check
        fields, prefixes = _load_registry(schema_ctx)
        for ctx in ctxs:
            yield from self._check_file(ctx, fields, prefixes)

    def _check_file(
        self,
        ctx: FileContext,
        fields: Dict[str, int],
        prefixes: Tuple[str, ...],
    ) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_emitter(ctx, node):
                continue
            if node.keywords or any(
                isinstance(a, ast.Starred) for a in node.args
            ):
                continue  # dynamic forwarding (MultiTracer etc.)
            if len(node.args) != 4:
                yield ctx.make_violation(
                    self.rule_id,
                    node,
                    f"tracer emitter called with {len(node.args)} "
                    "positional arguments; the event contract is "
                    "record(time_s, source, kind, detail)",
                )
                continue
            kind_node = node.args[2]
            if not (
                isinstance(kind_node, ast.Constant)
                and isinstance(kind_node.value, str)
            ):
                continue  # dynamically composed kind (fault_*/q_*)
            kind = kind_node.value
            declared = fields.get(kind)
            if declared is None:
                if not kind.startswith(prefixes):
                    yield ctx.make_violation(
                        self.rule_id,
                        node,
                        f"event kind {kind!r} is not declared in "
                        "repro.obs.schema.EVENT_SCHEMAS; declare its "
                        "detail layout there so consumers can index it",
                    )
                continue
            detail = node.args[3]
            if isinstance(detail, ast.Tuple) and len(detail.elts) != declared:
                yield ctx.make_violation(
                    self.rule_id,
                    node,
                    f"event kind {kind!r} emits a {len(detail.elts)}-field "
                    f"detail tuple but repro.obs.schema declares "
                    f"{declared} field(s); emitter and registry drifted",
                )

    @staticmethod
    def _is_emitter(ctx: FileContext, node: ast.Call) -> bool:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "record"):
            return False
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id in _TRACER_RECEIVERS:
                return True
            if receiver.id == "self":
                symbol = ctx.symbol_at(node.lineno)
                return _TRACER_CLASS_MARKER in symbol.split(".")[0]
            return False
        if isinstance(receiver, ast.Attribute):
            return receiver.attr in _TRACER_RECEIVERS
        return False


__all__ = ["TraceSchemaRule", "SCHEMA_TAIL"]
