"""Report rendering: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Dict, List

from .rules import rule_catalog
from .runner import LintReport


def format_text(report: LintReport) -> str:
    """Human-readable report (one ``path:line:col`` line per violation)."""
    lines: List[str] = []
    for v in report.parse_errors + report.violations:
        lines.append(
            f"{v.path}:{v.line}:{v.col + 1}: {v.rule} [{v.severity}] "
            f"{v.message}"
        )
        if v.snippet:
            lines.append(f"    {v.snippet}")
    counts = _rule_counts(report)
    if counts:
        breakdown = ", ".join(f"{r}×{n}" for r, n in sorted(counts.items()))
        lines.append("")
        lines.append(
            f"comb-lint: {len(report.violations)} violation(s) "
            f"({breakdown}) in {report.files_checked} file(s)"
        )
    else:
        extras = []
        if report.baselined:
            extras.append(f"{len(report.baselined)} baselined")
        if report.suppressed:
            extras.append(f"{len(report.suppressed)} suppressed")
        tail = f" ({', '.join(extras)})" if extras else ""
        lines.append(
            f"comb-lint: clean — {report.files_checked} file(s){tail}"
        )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable report (stable key order)."""
    doc = {
        "ok": report.ok,
        "files_checked": report.files_checked,
        "counts": {
            "new": len(report.violations),
            "baselined": len(report.baselined),
            "suppressed": len(report.suppressed),
            "parse_errors": len(report.parse_errors),
        },
        "by_rule": _rule_counts(report),
        "violations": [v.to_dict() for v in report.violations],
        "baselined": [v.to_dict() for v in report.baselined],
        "parse_errors": [v.to_dict() for v in report.parse_errors],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def format_rule_list() -> str:
    """The ``--list-rules`` catalog."""
    lines = []
    for rule_id, summary in rule_catalog().items():
        lines.append(f"{rule_id:9s} {summary}")
    return "\n".join(lines)


def _rule_counts(report: LintReport) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for v in report.violations:
        counts[v.rule] = counts.get(v.rule, 0) + 1
    return counts


__all__ = ["format_text", "format_json", "format_rule_list"]
