"""Checked-in violation baseline.

The CI gate fails on any violation *not* recorded in the baseline file,
so new code is held to the full rule set while grandfathered debt is
burned down deliberately.  Entries are matched by fingerprint (rule +
path + enclosing symbol + source snippet), not line number, so unrelated
edits above a grandfathered line do not resurrect it.

The repository policy (enforced by tests) is that the DET and CACHE rule
families must never be baselined: determinism and cache-key bugs are
fixed, not grandfathered.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Set, Union

from .model import LintViolation

BASELINE_VERSION = 1

#: Rule-id prefixes that may never appear in a baseline file.
NEVER_BASELINE_PREFIXES = ("DET", "CACHE")


class BaselineError(ValueError):
    """Raised for malformed or policy-violating baseline files."""


class Baseline:
    """A set of grandfathered violation fingerprints."""

    def __init__(self, entries: Iterable[Dict[str, str]] = ()) -> None:
        self.entries: List[Dict[str, str]] = list(entries)
        self._fingerprints: Set[str] = {
            e["fingerprint"] for e in self.entries if "fingerprint" in e
        }

    def __len__(self) -> int:
        return len(self.entries)

    def contains(self, violation: LintViolation) -> bool:
        """Is this violation grandfathered?"""
        return violation.fingerprint() in self._fingerprints

    def forbidden_entries(self) -> List[Dict[str, str]]:
        """Entries violating the never-baseline policy (DET/CACHE)."""
        return [
            e for e in self.entries
            if str(e.get("rule", "")).startswith(NEVER_BASELINE_PREFIXES)
        ]

    # --------------------------------------------------------------- disk
    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        p = Path(path)
        if not p.exists():
            return cls()
        try:
            doc = json.loads(p.read_text())
        except (OSError, ValueError) as exc:
            raise BaselineError(f"unreadable baseline {p}: {exc}") from exc
        if (
            not isinstance(doc, dict)
            or doc.get("version") != BASELINE_VERSION
            or not isinstance(doc.get("entries"), list)
        ):
            raise BaselineError(
                f"{p} is not a version-{BASELINE_VERSION} baseline document"
            )
        return cls(doc["entries"])

    @classmethod
    def from_violations(
        cls, violations: Iterable[LintViolation]
    ) -> "Baseline":
        """Baseline grandfathering exactly ``violations``."""
        entries = [
            {
                "rule": v.rule,
                "path": v.path,
                "symbol": v.symbol,
                "snippet": v.snippet,
                "fingerprint": v.fingerprint(),
            }
            for v in violations
        ]
        entries.sort(key=lambda e: (e["rule"], e["path"], e["fingerprint"]))
        return cls(entries)

    def save(self, path: Union[str, Path]) -> None:
        """Write the baseline document (stable field order)."""
        doc = {"version": BASELINE_VERSION, "entries": self.entries}
        Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


__all__ = ["Baseline", "BaselineError", "NEVER_BASELINE_PREFIXES"]
