"""comb-lint: AST-based determinism, units, and cache-key linter.

Static counterpart of the runtime sanitizer (:mod:`repro.verify`): where
the sanitizer catches invariant violations while a simulation runs, this
package rejects the *sources* of irreproducibility at review time —
wall-clock reads, unseeded RNG, hash-order iteration, unit-suffix
violations, config fields invisible to the point-cache key, and blocking
I/O in engine hot paths.

Entry points::

    comb lint src [--format=json] [--baseline tools/lint_baseline.json]
    python tools/lint.py ...

The UNIT003/UNIT004, DET005 rules run on a per-function CFG + fixpoint
dataflow engine (:mod:`repro.lint.flow`) that propagates facts through
assignments and arithmetic, so violations hiding behind unsuffixed
temporaries are caught, not just misnamed bindings.

Rules (see ``docs/lint_rules.md`` for the full catalog):

========  ==========================================================
DET001    no wall-clock reads in simulation code
DET002    no global/unseeded RNG in simulation code
DET003    no iteration over bare sets in order-sensitive code
DET004    no hash()/id() values in simulation logic
DET005    no unordered values flowing into keys/digests/schedules
UNIT001   quantity-named bindings must carry unit suffixes
UNIT002   no additive arithmetic across unit suffixes
UNIT003   no mixed inferred dimensions in adds/compares (dataflow)
UNIT004   no dimension laundering through relabeling assignments
CACHE001  config dataclass fields must be cache-key visible + stable
EXEC001   no module-state mutation reachable from pool workers
SIM001    no blocking I/O in engine hot paths
SIM002    burst-replay loops must use round-trip time arithmetic
OBS001    tracer emitters must match the declared event schemas
========  ==========================================================

Inline waiver: ``# comb-lint: disable=RULE[,RULE...]`` on the offending
line (``disable-file=`` for a whole file).  The CI gate additionally
accepts a checked-in baseline of grandfathered violations — except for
the DET and CACHE families, which may never be baselined.
"""

from .baseline import Baseline, BaselineError, NEVER_BASELINE_PREFIXES
from .model import LintViolation, SIM_PACKAGES
from .output import format_json, format_rule_list, format_text
from .rules import all_rule_classes, rule_catalog
from .runner import LintReport, iter_python_files, lint_paths
from .sarif import format_sarif, sarif_log

__all__ = [
    "Baseline",
    "BaselineError",
    "NEVER_BASELINE_PREFIXES",
    "LintViolation",
    "SIM_PACKAGES",
    "LintReport",
    "lint_paths",
    "iter_python_files",
    "all_rule_classes",
    "rule_catalog",
    "format_text",
    "format_json",
    "format_rule_list",
    "format_sarif",
    "sarif_log",
]
