"""comb-lint: AST-based determinism, units, and cache-key linter.

Static counterpart of the runtime sanitizer (:mod:`repro.verify`): where
the sanitizer catches invariant violations while a simulation runs, this
package rejects the *sources* of irreproducibility at review time —
wall-clock reads, unseeded RNG, hash-order iteration, unit-suffix
violations, config fields invisible to the point-cache key, and blocking
I/O in engine hot paths.

Entry points::

    comb lint src [--format=json] [--baseline tools/lint_baseline.json]
    python tools/lint.py ...

Rules (see ``docs/lint_rules.md`` for the full catalog):

========  ==========================================================
DET001    no wall-clock reads in simulation code
DET002    no global/unseeded RNG in simulation code
DET003    no iteration over bare sets in simulation code
DET004    no hash()/id() values in simulation logic
UNIT001   quantity-named bindings must carry unit suffixes
UNIT002   no additive arithmetic across unit suffixes
CACHE001  config dataclass fields must be cache-key visible + stable
SIM001    no blocking I/O in engine hot paths
========  ==========================================================

Inline waiver: ``# comb-lint: disable=RULE[,RULE...]`` on the offending
line (``disable-file=`` for a whole file).  The CI gate additionally
accepts a checked-in baseline of grandfathered violations — except for
the DET and CACHE families, which may never be baselined.
"""

from .baseline import Baseline, BaselineError, NEVER_BASELINE_PREFIXES
from .model import LintViolation, SIM_PACKAGES
from .output import format_json, format_rule_list, format_text
from .rules import all_rule_classes, rule_catalog
from .runner import LintReport, iter_python_files, lint_paths

__all__ = [
    "Baseline",
    "BaselineError",
    "NEVER_BASELINE_PREFIXES",
    "LintViolation",
    "SIM_PACKAGES",
    "LintReport",
    "lint_paths",
    "iter_python_files",
    "all_rule_classes",
    "rule_catalog",
    "format_text",
    "format_json",
    "format_rule_list",
]
