"""Executor worker-safety rule EXEC001.

The sweep executor fans points out over a *spawn*-context process pool,
and its contract is that the pooled path is bit-identical to the serial
path (``jobs=1``).  Module-level mutable state breaks that contract
silently: a counter, cache, or registry mutated inside worker-reachable
code diverges between the parent (serial path: every point mutates it)
and the workers (pooled path: each worker mutates its own copy, the
parent's stays stale).  Nothing crashes — the numbers just differ
depending on ``--jobs``, which is exactly the failure mode the point
cache's determinism guarantee exists to exclude.

EXEC001 reads the executor module for ground truth (the
``functools.partial`` worker entry, ``run_task``/``run_task_checked``,
and the runner names in ``_METHODS`` — the same idiom CACHE001 uses),
builds a name-based over-approximate call graph across the linted set,
and flags every worker-reachable function that

* rebinds a ``global`` name, or
* mutates a module-level container (``.append``/``.update``/
  subscript-store on a name bound at module scope to a list/dict/set).

Functions decorated ``@contextmanager`` are exempt: the context-stack
idiom (``use_observer``/``use_sanitizer``) mutates a module list by
design, strictly bracketed, in whichever process enters the context.
State that is *process-local by design* (documented as such) should
carry an inline ``# comb-lint: disable=EXEC001`` at the mutation site.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from .model import FileContext, LintViolation
from .rules import ProjectRule, register

#: Methods that mutate their receiver in place.
MUTATING_METHODS: Set[str] = {
    "append", "appendleft", "extend", "insert",
    "add", "update", "setdefault",
    "pop", "popleft", "popitem", "remove", "discard", "clear",
}

#: Constructor tails producing mutable containers.
_MUTABLE_CONSTRUCTORS: Set[str] = {
    "list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter",
}

#: Files whose functions are never cross-file call-graph candidates: the
#: executor itself (parent-side orchestration; its worker entries are
#: seeded explicitly) and the CLI.  Without this, a sim method named
#: like an executor method (``submit``, ``close``) would drag the whole
#: parent-side module into the "worker-reachable" set.
_PARENT_SIDE_TAILS: Set[str] = {"core/executor.py", "cli.py"}

_EXEMPT_DECORATORS: Set[str] = {"contextmanager", "asynccontextmanager"}

#: Path tail identifying the executor module in any tree layout.
EXECUTOR_TAIL = "core/executor.py"

#: One function definition: (file, node, is-cross-file-candidate).
_FnKey = Tuple[int, int]  # (ctx index, lineno) — unique per def


def _shallow_walk(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk ``fn``'s body without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _call_tails(fn: ast.AST) -> Set[str]:
    """Simple names of everything ``fn`` (incl. nested defs) may call."""
    tails: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                tails.add(func.id)
            elif isinstance(func, ast.Attribute):
                tails.add(func.attr)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and node is not fn:
            # A nested def is conservatively "called": it is usually a
            # callback handed to the code the parent function drives.
            tails.add(node.name)
    return tails


@register
class WorkerSharedStateRule(ProjectRule):
    """EXEC001: no module-state mutation reachable from pool workers."""

    rule_id = "EXEC001"
    summary = (
        "module-level mutable state written by spawn-pool-worker-"
        "reachable code; serial and pooled sweeps would diverge"
    )

    def check_project(
        self, ctxs: Sequence[FileContext]
    ) -> Iterator[LintViolation]:
        executor = next(
            (c for c in ctxs if (c.repro_relpath or "") == EXECUTOR_TAIL),
            None,
        )
        if executor is None:
            return  # executor not in the linted set: nothing to check
        entry_names = self._entry_names(executor)
        if not entry_names:
            return

        # Index every function definition in the linted set.
        by_name: Dict[str, List[Tuple[FileContext, ast.AST]]] = {}
        functions: List[Tuple[FileContext, ast.AST]] = []
        for ctx in ctxs:
            for node in ast.walk(ctx.tree):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    functions.append((ctx, node))
                    by_name.setdefault(node.name, []).append((ctx, node))

        def candidates(
            caller_ctx: FileContext, name: str
        ) -> List[Tuple[FileContext, ast.AST]]:
            out: List[Tuple[FileContext, ast.AST]] = []
            for ctx, node in by_name.get(name, []):
                if ctx is caller_ctx:
                    out.append((ctx, node))
                elif (ctx.repro_relpath or "") not in _PARENT_SIDE_TAILS:
                    out.append((ctx, node))
            return out

        # Worker-reachable closure over simple-name call edges.
        reachable: Set[int] = set()
        work: List[Tuple[FileContext, ast.AST]] = []
        for name in sorted(entry_names):
            for ctx, node in by_name.get(name, []):
                if (ctx.repro_relpath or "") == EXECUTOR_TAIL or (
                    ctx.repro_relpath or ""
                ) not in _PARENT_SIDE_TAILS:
                    work.append((ctx, node))
        while work:
            ctx, node = work.pop()
            if id(node) in reachable:
                continue
            reachable.add(id(node))
            for tail in sorted(_call_tails(node)):
                for callee in candidates(ctx, tail):
                    if id(callee[1]) not in reachable:
                        work.append(callee)

        module_mutables = {
            id(ctx): self._module_mutable_names(ctx) for ctx in ctxs
        }
        for ctx, node in functions:
            if id(node) not in reachable:
                continue
            if self._is_exempt(ctx, node):
                continue
            yield from self._check_function(
                ctx, node, module_mutables[id(ctx)]
            )

    # ------------------------------------------------------- executor facts
    @staticmethod
    def _entry_names(executor: FileContext) -> Set[str]:
        """Worker entry points: the partial()ed entry, the task runners,
        and the per-kind method runners named by ``_METHODS``."""
        names: Set[str] = set()
        for node in ast.walk(executor.tree):
            if isinstance(node, ast.Call):
                # partial(_sim_entry, ...): the function shipped to the pool.
                func_tail = (
                    (executor.dotted_name(node.func) or "").rpartition(".")[2]
                )
                if func_tail == "partial" and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Name):
                        names.add(first.id)
            elif (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "_METHODS"
                    for t in node.targets
                )
                and isinstance(node.value, ast.Dict)
            ):
                for value in node.value.values:
                    if (
                        isinstance(value, ast.Tuple)
                        and len(value.elts) >= 2
                        and isinstance(value.elts[1], ast.Name)
                    ):
                        names.add(value.elts[1].id)
            elif isinstance(node, ast.FunctionDef) and node.name in {
                "run_task", "run_task_checked"
            }:
                names.add(node.name)
        return names

    # ---------------------------------------------------------- mutability
    @staticmethod
    def _module_mutable_names(ctx: FileContext) -> Set[str]:
        """Module-scope names bound to mutable containers."""
        names: Set[str] = set()
        for stmt in ctx.tree.body:
            targets: List[ast.expr] = []
            value: ast.expr
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if isinstance(
                value,
                (ast.List, ast.Dict, ast.Set,
                 ast.ListComp, ast.DictComp, ast.SetComp),
            ):
                mutable = True
            elif isinstance(value, ast.Call):
                tail = (ctx.dotted_name(value.func) or "").rpartition(".")[2]
                mutable = tail in _MUTABLE_CONSTRUCTORS
            else:
                mutable = False
            if not mutable:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _is_exempt(ctx: FileContext, fn: ast.AST) -> bool:
        for deco in getattr(fn, "decorator_list", []):
            target = deco.func if isinstance(deco, ast.Call) else deco
            tail = (ctx.dotted_name(target) or "").rpartition(".")[2]
            if tail in _EXEMPT_DECORATORS:
                return True
        return False

    def _check_function(
        self,
        ctx: FileContext,
        fn: ast.AST,
        module_mutables: Set[str],
    ) -> Iterator[LintViolation]:
        fn_name = getattr(fn, "name", "<lambda>")
        globals_declared: Set[str] = set()
        for node in _shallow_walk(fn):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
        for node in _shallow_walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in globals_declared
                    ):
                        yield ctx.make_violation(
                            self.rule_id,
                            node,
                            f"{fn_name}() rebinds global "
                            f"{target.id!r} and is reachable from pool "
                            "workers; serial and pooled sweeps would see "
                            "different state — thread it through the "
                            "world/task instead",
                        )
                    elif (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in module_mutables
                        and target.value.id not in globals_declared
                    ):
                        yield ctx.make_violation(
                            self.rule_id,
                            node,
                            f"{fn_name}() writes into module-level "
                            f"container {target.value.id!r} and is "
                            "reachable from pool workers; worker writes "
                            "never reach the parent process",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in module_mutables
                ):
                    yield ctx.make_violation(
                        self.rule_id,
                        node,
                        f"{fn_name}() mutates module-level container "
                        f"{func.value.id!r} via .{func.attr}() and is "
                        "reachable from pool workers; worker mutations "
                        "never reach the parent process",
                    )


__all__ = ["WorkerSharedStateRule", "MUTATING_METHODS", "EXECUTOR_TAIL"]
