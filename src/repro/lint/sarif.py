"""SARIF 2.1.0 output for GitHub code scanning.

``comb lint --format sarif`` serializes a lint run as one SARIF run so
CI can upload it with ``github/codeql-action/upload-sarif`` and findings
surface as code-scanning annotations on the PR diff instead of buried
job logs.

Shape notes (the parts of the 2.1.0 spec that bite):

* ``region`` lines/columns are 1-based; violations carry 0-based
  columns, so ``startColumn`` is ``col + 1``.
* every result references its rule by ``ruleIndex`` into the driver's
  ``rules`` array, which lists each rule exactly once.
* suppressed/baselined findings are still emitted, carrying a
  ``suppressions`` entry (``inSource`` for ``# comb-lint: disable``,
  ``external`` for the baseline file) — code scanning shows them as
  resolved rather than losing them.
* ``partialFingerprints`` carries the baseline fingerprint, which is
  line-number independent, so annotations track moved code.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .model import LintViolation
from .rules import rule_catalog
from .runner import LintReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_INFO_URI = "https://github.com/comb-repro/comb#comb-lint"

#: Synthetic rule id for unparseable files (not in the registry).
_PARSE_RULE = ("PARSE001", "file could not be parsed and was not linted")


def _rule_entry(rule_id: str, summary: str) -> Dict[str, object]:
    return {
        "id": rule_id,
        "shortDescription": {"text": summary or rule_id},
        "helpUri": _INFO_URI,
        "defaultConfiguration": {"level": "error"},
    }


def _result(
    v: LintViolation,
    rule_index: Dict[str, int],
    suppression: Optional[str],
) -> Dict[str, object]:
    out: Dict[str, object] = {
        "ruleId": v.rule,
        "ruleIndex": rule_index[v.rule],
        "level": "error" if v.severity == "error" else "warning",
        "message": {"text": f"{v.message} [in {v.symbol}]"},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": v.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(v.line, 1),
                        "startColumn": v.col + 1,
                        "snippet": {"text": v.snippet},
                    },
                }
            }
        ],
        "partialFingerprints": {"combLintFingerprint/v1": v.fingerprint()},
    }
    if suppression is not None:
        out["suppressions"] = [{"kind": suppression}]
    return out


def sarif_log(report: LintReport) -> Dict[str, object]:
    """The SARIF log of ``report`` as a JSON-ready dict."""
    catalog = dict(rule_catalog())
    catalog.setdefault(*_PARSE_RULE)
    # Only rules that actually fired, for a compact rules array; order is
    # sorted rule id so output is byte-stable.
    fired = sorted(
        {v.rule for v in report.all_found()}
        | {v.rule for v in report.parse_errors}
    )
    rule_index = {rule_id: i for i, rule_id in enumerate(fired)}
    rules = [_rule_entry(r, catalog.get(r, "")) for r in fired]

    batches: List[Tuple[List[LintViolation], Optional[str]]] = [
        (report.violations, None),
        (report.parse_errors, None),
        (report.suppressed, "inSource"),
        (report.baselined, "external"),
    ]
    results = [
        _result(v, rule_index, kind)
        for batch, kind in batches
        for v in batch
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "comb-lint",
                        "informationUri": _INFO_URI,
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def format_sarif(report: LintReport) -> str:
    """``report`` serialized as a SARIF 2.1.0 JSON document."""
    return json.dumps(sarif_log(report), indent=2, sort_keys=True)


__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "sarif_log", "format_sarif"]
