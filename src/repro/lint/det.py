"""Determinism rules DET001–DET004.

COMB's headline artifact is a set of bit-reproducible overlap curves; a
single wall-clock read or unseeded random draw inside the simulation
perturbs event timestamps or ordering and silently changes every number
downstream.  These rules reject the known nondeterminism sources at
review time, inside the simulation packages (``sim``, ``mpi``,
``transport``, ``hardware``, ``os``) where they can do damage.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from .model import FileContext, LintViolation
from .rules import FileRule, register

#: Wall-clock time sources (canonical dotted names).
WALL_CLOCK_CALLS: Set[str] = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Unseeded / process-global entropy sources.
GLOBAL_RNG_EXACT: Set[str] = {
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "numpy.random.RandomState",
    "numpy.random.seed",
}
GLOBAL_RNG_PREFIXES: Tuple[str, ...] = (
    "random.",
    "secrets.",
    "numpy.random.",
)

#: Dunders whose output never feeds simulation state; ``id()`` in a repr
#: is a debugging aid, not a determinism hazard.
_REPR_DUNDERS: Set[str] = {"__repr__", "__str__", "__hash__", "__format__"}


@register
class WallClockRule(FileRule):
    """DET001: no wall-clock reads inside the simulation."""

    rule_id = "DET001"
    summary = (
        "wall-clock read in simulation code; use the engine's virtual "
        "clock (Engine.now / timeouts)"
    )

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        if not ctx.sim_scope:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.dotted_name(node.func)
            if name in WALL_CLOCK_CALLS:
                yield ctx.make_violation(
                    self.rule_id,
                    node,
                    f"{name}() reads the wall clock; simulation code must "
                    "use engine virtual time (Engine.now)",
                )


@register
class GlobalRngRule(FileRule):
    """DET002: no global/unseeded RNG inside the simulation."""

    rule_id = "DET002"
    summary = (
        "global or unseeded RNG in simulation code; draw from a "
        "repro.sim.rng.RngRegistry named substream"
    )

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        if not ctx.sim_scope:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.dotted_name(node.func)
            if name is None:
                continue
            if name == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield ctx.make_violation(
                        self.rule_id,
                        node,
                        "numpy.random.default_rng() without a seed is "
                        "entropy-seeded; derive the seed from an "
                        "RngRegistry named substream",
                    )
                continue
            if name in GLOBAL_RNG_EXACT or name.startswith(
                GLOBAL_RNG_PREFIXES
            ):
                yield ctx.make_violation(
                    self.rule_id,
                    node,
                    f"{name}() draws from process-global entropy; use "
                    "repro.sim.rng.RngRegistry named substreams so adding "
                    "a consumer never perturbs existing streams",
                )


@register
class SetIterationRule(FileRule):
    """DET003: no iteration over a bare ``set`` in simulation paths.

    Set iteration order depends on insertion history and on the
    per-process string hash seed — the spawn-pool workers and the serial
    path would disagree.  ``sorted(the_set)`` is the sanctioned form.
    """

    rule_id = "DET003"
    summary = (
        "iteration over a bare set in simulation code; order is "
        "hash-seed dependent — wrap in sorted()"
    )

    _CONSUMERS: Set[str] = {"list", "tuple", "enumerate"}

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        if not ctx.sim_scope:
            return
        set_names = self._set_typed_names(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._flag_if_setish(ctx, node.iter, set_names)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    yield from self._flag_if_setish(ctx, gen.iter, set_names)
            elif isinstance(node, ast.Call):
                name = ctx.dotted_name(node.func)
                if name in self._CONSUMERS and node.args:
                    yield from self._flag_if_setish(
                        ctx, node.args[0], set_names
                    )

    @staticmethod
    def _set_typed_names(ctx: FileContext) -> Set[str]:
        """Names assigned a set literal / set() call anywhere in the file."""
        names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not SetIterationRule._is_set_expr(node.value, ctx):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _is_set_expr(node: ast.AST, ctx: FileContext) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return ctx.dotted_name(node.func) in {"set", "frozenset"}
        return False

    def _flag_if_setish(
        self, ctx: FileContext, expr: ast.AST, set_names: Set[str]
    ) -> Iterator[LintViolation]:
        setish = self._is_set_expr(expr, ctx) or (
            isinstance(expr, ast.Name) and expr.id in set_names
        )
        if setish:
            yield ctx.make_violation(
                self.rule_id,
                expr,
                "iteration order over a set depends on the per-process "
                "hash seed; iterate sorted(...) instead",
            )


@register
class HashSeedRule(FileRule):
    """DET004: no ``hash()``/``id()`` values in simulation logic.

    String hashing is randomized per process (PYTHONHASHSEED), and
    ``id()`` is an allocation address: both differ between the serial
    path and spawn-pool workers, so any value derived from them breaks
    the executor's bit-identity guarantee.  Reprs are exempt.
    """

    rule_id = "DET004"
    summary = (
        "hash()/id() value used in simulation code; both are "
        "per-process — derive ordering keys from stable fields"
    )

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        if not ctx.sim_scope:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.dotted_name(node.func)
            if name not in {"hash", "id"}:
                continue
            symbol = ctx.symbol_at(node.lineno)
            if symbol.rpartition(".")[2] in _REPR_DUNDERS:
                continue
            yield ctx.make_violation(
                self.rule_id,
                node,
                f"{name}() is per-process (hash seed / heap layout); "
                "simulation logic must not depend on it",
            )


# Re-exported for the rule catalog tests.
__all__ = [
    "WallClockRule",
    "GlobalRngRule",
    "SetIterationRule",
    "HashSeedRule",
]
