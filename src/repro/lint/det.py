"""Determinism rules DET001–DET005.

COMB's headline artifact is a set of bit-reproducible overlap curves; a
single wall-clock read or unseeded random draw inside the simulation
perturbs event timestamps or ordering and silently changes every number
downstream.  These rules reject the known nondeterminism sources at
review time, inside the simulation packages (``sim``, ``mpi``,
``transport``, ``hardware``, ``os``) where they can do damage.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from .flow import Analysis, Env, Report, function_defs, run_analysis
from .model import FileContext, LintViolation
from .rules import FileRule, register

#: Wall-clock time sources (canonical dotted names).
WALL_CLOCK_CALLS: Set[str] = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Unseeded / process-global entropy sources.
GLOBAL_RNG_EXACT: Set[str] = {
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "numpy.random.RandomState",
    "numpy.random.seed",
}
GLOBAL_RNG_PREFIXES: Tuple[str, ...] = (
    "random.",
    "secrets.",
    "numpy.random.",
)

#: Dunders whose output never feeds simulation state; ``id()`` in a repr
#: is a debugging aid, not a determinism hazard.
_REPR_DUNDERS: Set[str] = {"__repr__", "__str__", "__hash__", "__format__"}


@register
class WallClockRule(FileRule):
    """DET001: no wall-clock reads inside the simulation."""

    rule_id = "DET001"
    summary = (
        "wall-clock read in simulation code; use the engine's virtual "
        "clock (Engine.now / timeouts)"
    )

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        if not ctx.sim_scope:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.dotted_name(node.func)
            if name in WALL_CLOCK_CALLS:
                yield ctx.make_violation(
                    self.rule_id,
                    node,
                    f"{name}() reads the wall clock; simulation code must "
                    "use engine virtual time (Engine.now)",
                )


@register
class GlobalRngRule(FileRule):
    """DET002: no global/unseeded RNG inside the simulation."""

    rule_id = "DET002"
    summary = (
        "global or unseeded RNG in simulation code; draw from a "
        "repro.sim.rng.RngRegistry named substream"
    )

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        if not ctx.sim_scope:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.dotted_name(node.func)
            if name is None:
                continue
            if name == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield ctx.make_violation(
                        self.rule_id,
                        node,
                        "numpy.random.default_rng() without a seed is "
                        "entropy-seeded; derive the seed from an "
                        "RngRegistry named substream",
                    )
                continue
            if name in GLOBAL_RNG_EXACT or name.startswith(
                GLOBAL_RNG_PREFIXES
            ):
                yield ctx.make_violation(
                    self.rule_id,
                    node,
                    f"{name}() draws from process-global entropy; use "
                    "repro.sim.rng.RngRegistry named substreams so adding "
                    "a consumer never perturbs existing streams",
                )


@register
class SetIterationRule(FileRule):
    """DET003: no iteration over a bare ``set`` in simulation paths.

    Set iteration order depends on insertion history and on the
    per-process string hash seed — the spawn-pool workers and the serial
    path would disagree.  ``sorted(the_set)`` is the sanctioned form.
    """

    rule_id = "DET003"
    summary = (
        "iteration over a bare set in simulation code; order is "
        "hash-seed dependent — wrap in sorted()"
    )

    _CONSUMERS: Set[str] = {"list", "tuple", "enumerate"}

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        if not ctx.order_scope:
            return
        set_names = self._set_typed_names(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._flag_if_setish(ctx, node.iter, set_names)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    yield from self._flag_if_setish(ctx, gen.iter, set_names)
            elif isinstance(node, ast.Call):
                name = ctx.dotted_name(node.func)
                if name in self._CONSUMERS and node.args:
                    yield from self._flag_if_setish(
                        ctx, node.args[0], set_names
                    )

    @staticmethod
    def _set_typed_names(ctx: FileContext) -> Set[str]:
        """Names assigned a set literal / set() call anywhere in the file."""
        names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not SetIterationRule._is_set_expr(node.value, ctx):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _is_set_expr(node: ast.AST, ctx: FileContext) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return ctx.dotted_name(node.func) in {"set", "frozenset"}
        return False

    def _flag_if_setish(
        self, ctx: FileContext, expr: ast.AST, set_names: Set[str]
    ) -> Iterator[LintViolation]:
        setish = self._is_set_expr(expr, ctx) or (
            isinstance(expr, ast.Name) and expr.id in set_names
        )
        if setish:
            yield ctx.make_violation(
                self.rule_id,
                expr,
                "iteration order over a set depends on the per-process "
                "hash seed; iterate sorted(...) instead",
            )


@register
class HashSeedRule(FileRule):
    """DET004: no ``hash()``/``id()`` values in simulation logic.

    String hashing is randomized per process (PYTHONHASHSEED), and
    ``id()`` is an allocation address: both differ between the serial
    path and spawn-pool workers, so any value derived from them breaks
    the executor's bit-identity guarantee.  Reprs are exempt.
    """

    rule_id = "DET004"
    summary = (
        "hash()/id() value used in simulation code; both are "
        "per-process — derive ordering keys from stable fields"
    )

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        if not ctx.order_scope:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.dotted_name(node.func)
            if name not in {"hash", "id"}:
                continue
            symbol = ctx.symbol_at(node.lineno)
            if symbol.rpartition(".")[2] in _REPR_DUNDERS:
                continue
            yield ctx.make_violation(
                self.rule_id,
                node,
                f"{name}() is per-process (hash seed / heap layout); "
                "simulation logic must not depend on it",
            )


#: Set-producing / set-preserving / order-restoring call tails.
_SET_MAKERS: Set[str] = {"set", "frozenset"}
_SET_METHODS: Set[str] = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}
_ORDER_PRESERVERS: Set[str] = {"list", "tuple", "iter", "reversed"}
_DICT_VIEW_METHODS: Set[str] = {"keys", "values", "items"}

#: Call tails that consume their arguments into an order-sensitive
#: artifact: cache keys, golden/trace output, digests.
_ORDER_SINK_TAILS: Set[str] = {
    "dumps", "dump", "task_key", "join", "heappush",
}
_ORDER_SINK_PREFIXES: Tuple[str, ...] = ("hashlib.",)

_UNORDERED = frozenset({"unordered"})


class _OrderAnalysis(Analysis):
    """Propagates an ``unordered`` tag through assignments and set algebra."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.sinks: List[Tuple[ast.AST, str]] = []

    def seed(self, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> Env:
        env: Env = {}
        args = fn.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            ann = arg.annotation
            if ann is None:
                continue
            target = ann.value if isinstance(ann, ast.Subscript) else ann
            name = (self.ctx.dotted_name(target) or "").rpartition(".")[2]
            if name in {"Set", "FrozenSet", "set", "frozenset"}:
                env[arg.arg] = _UNORDERED
        return env

    def transfer(
        self, item: ast.AST, env: Env, report: Optional[Report]
    ) -> None:
        if isinstance(item, ast.Assign):
            tag = self._eval(item.value, env, report)
            for target in item.targets:
                if isinstance(target, ast.Name):
                    if tag:
                        env[target.id] = _UNORDERED
                    else:
                        env.pop(target.id, None)
        elif isinstance(item, ast.AnnAssign):
            if item.value is not None and isinstance(item.target, ast.Name):
                if self._eval(item.value, env, report):
                    env[item.target.id] = _UNORDERED
                else:
                    env.pop(item.target.id, None)
        elif isinstance(item, (ast.For, ast.AsyncFor)):
            self._eval(item.iter, env, report)
            for node in ast.walk(item.target):
                if isinstance(node, ast.Name):
                    env.pop(node.id, None)
        elif isinstance(item, ast.stmt):
            for expr in ast.iter_child_nodes(item):
                if isinstance(expr, ast.expr):
                    self._eval(expr, env, report)
        elif isinstance(item, ast.expr):
            self._eval(item, env, report)

    def _is_unordered(self, node: ast.expr, env: Env) -> bool:
        """Syntactic check without recursing into sub-calls."""
        if isinstance(node, ast.Name):
            return env.get(node.id) == _UNORDERED
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _DICT_VIEW_METHODS:
                # A dict view is insertion-ordered, but participating in
                # set algebra produces a real set (handled by BinOp).
                return False
        return False

    def _eval(
        self, node: ast.expr, env: Env, report: Optional[Report]
    ) -> bool:
        """True when ``node`` evaluates to an unordered collection."""
        if isinstance(node, ast.Name):
            return env.get(node.id) == _UNORDERED
        if isinstance(node, (ast.Set, ast.SetComp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, env, report)
            return True
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env, report)
            right = self._eval(node.right, env, report)
            if isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
            ):
                # Set algebra: unordered if either side is a set or a
                # dict view (view - view yields a set).
                def setish(n: ast.expr, tag: bool) -> bool:
                    if tag:
                        return True
                    return isinstance(n, ast.Call) and isinstance(
                        n.func, ast.Attribute
                    ) and n.func.attr in _DICT_VIEW_METHODS
                return setish(node.left, left) or setish(node.right, right)
            return False
        if isinstance(node, ast.Call):
            arg_tags = [self._eval(a, env, report) for a in node.args]
            for kw in node.keywords:
                self._eval(kw.value, env, report)
            dotted = self.ctx.dotted_name(node.func) or ""
            tail = dotted.rpartition(".")[2]
            if not tail and isinstance(node.func, ast.Attribute):
                # e.g. ",".join(...) — receiver is a literal, so there is
                # no dotted name, but the method tail still identifies a
                # sink.
                tail = node.func.attr
            if tail == "sorted":
                return False  # launders: output order is defined
            self._check_sink(node, dotted, tail, arg_tags, report)
            if tail in _SET_MAKERS:
                return True
            if tail in _ORDER_PRESERVERS:
                # list(s) materializes the arbitrary order; still tainted.
                return bool(arg_tags and arg_tags[0])
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and self._eval(node.func.value, env, None)
            ):
                return True
            return False
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env, report)
            a = self._eval(node.body, env, report)
            b = self._eval(node.orelse, env, report)
            return a or b
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env, report)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, env, report)
        return False

    def _check_sink(
        self,
        call: ast.Call,
        dotted: str,
        tail: str,
        arg_tags: List[bool],
        report: Optional[Report],
    ) -> None:
        if report is None:
            return
        is_sink = tail in _ORDER_SINK_TAILS or dotted.startswith(
            _ORDER_SINK_PREFIXES
        )
        if not is_sink:
            return
        for arg, tagged in zip(call.args, arg_tags):
            if tagged:
                report(
                    call,
                    f"a value of hash-seed-dependent iteration order "
                    f"flows into {tail}(); order it first (sorted(...)) "
                    "so cache keys / golden output / scheduling stay "
                    "deterministic",
                )


@register
class UnorderedFlowRule(FileRule):
    """DET005: unordered collections flowing into order-sensitive sinks.

    DET003 catches ``for x in some_set``; this rule catches the flows
    DET003 cannot see — a set (or set-algebra result, or ``Set``-typed
    parameter) passed through temporaries into ``json.dumps``,
    ``hashlib.*``, ``task_key``, ``str.join``, or ``heapq.heappush``,
    where the arbitrary order is frozen into a cache key, golden file,
    digest, or event schedule.  ``sorted(...)`` launders the taint.
    """

    rule_id = "DET005"
    summary = (
        "unordered set/dict-view value flows into a cache key, digest, "
        "join, or scheduling sink; order it with sorted() first"
    )

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        if not ctx.order_scope:
            return
        violations: List[LintViolation] = []

        def sink(anchor: ast.AST, message: str) -> None:
            violations.append(
                ctx.make_violation(self.rule_id, anchor, message)
            )

        analysis = _OrderAnalysis(ctx)
        for fn in function_defs(ctx.tree):
            run_analysis(fn, analysis, sink)
        seen: Set[Tuple[int, int, str]] = set()
        for v in violations:
            key = (v.line, v.col, v.message)
            if key not in seen:
                seen.add(key)
                yield v


# Re-exported for the rule catalog tests.
__all__ = [
    "WallClockRule",
    "GlobalRngRule",
    "SetIterationRule",
    "HashSeedRule",
    "UnorderedFlowRule",
]
