"""Data model of the linter: violations, file contexts, suppressions.

A :class:`FileContext` is one parsed Python file plus everything the rules
need to reason about it: its source lines, its import alias map (so calls
can be resolved to canonical dotted names regardless of ``import numpy as
np`` vs ``from numpy import random``), its *scope category* (is it part of
the simulation core, an engine hot path, or ordinary support code), and
the ``# comb-lint: disable=...`` suppression index.

Scope categories are derived from the file's path relative to the
``repro`` package, so the same rules apply identically to the real tree
and to test fixtures laid out under a ``repro/`` directory.
"""

from __future__ import annotations

import ast
import hashlib
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

#: repro sub-packages whose code executes *inside* the simulation: any
#: nondeterminism here perturbs event order and breaks bit-reproducibility.
SIM_PACKAGES: FrozenSet[str] = frozenset(
    {"sim", "mpi", "transport", "hardware", "os", "patterns"}
)

#: Packages whose output must be byte-stable (golden traces, exports)
#: even though they run outside the simulation: iteration-order rules
#: apply here too.
ORDER_SENSITIVE_PACKAGES: FrozenSet[str] = frozenset({"obs"})

#: Modules outside the sim packages whose bodies still run on the virtual
#: clock (the COMB method drivers are engine processes).
HOT_MODULES: FrozenSet[str] = frozenset(
    {"core/polling.py", "core/pww.py", "core/workloop.py", "core/sweep.py"}
)

#: Severity levels, ordered.
SEVERITIES: Tuple[str, ...] = ("warning", "error")


@dataclass(frozen=True)
class LintViolation:
    """One rule hit at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Enclosing ``Class.function`` qualname, or ``<module>``.
    symbol: str
    #: The stripped source line (for output and baseline fingerprints).
    snippet: str
    severity: str = "error"

    def fingerprint(self) -> str:
        """Stable identity used by the baseline file.

        Deliberately excludes the line number: inserting unrelated lines
        above a grandfathered violation must not un-baseline it.
        """
        blob = "\x1f".join((self.rule, self.path, self.symbol, self.snippet))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "symbol": self.symbol,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


def _relative_to_repro(path: Path) -> Optional[str]:
    """Path below the innermost ``repro`` package, or ``None``.

    ``src/repro/sim/engine.py`` → ``sim/engine.py``; a fixture tree
    ``tests/lint_fixtures/repro/sim/bad.py`` → ``sim/bad.py``.
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1:])
    return None


@dataclass
class Suppressions:
    """Parsed ``# comb-lint:`` comments of one file.

    Two forms are recognized::

        x = time.time()   # comb-lint: disable=DET001
        # comb-lint: disable-file=UNIT001

    ``disable`` applies to its own physical line; ``disable-file`` applies
    to the whole file.  ``all`` is accepted in place of a rule list.
    """

    by_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    file_wide: FrozenSet[str] = frozenset()

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Does a comment waive ``rule`` at ``line``?"""
        for ruleset in (self.file_wide, self.by_line.get(line, frozenset())):
            if "all" in ruleset or rule in ruleset:
                return True
        return False


_MARKER = "comb-lint:"


def parse_suppressions(source: str) -> Suppressions:
    """Extract the suppression index from ``source``.

    Tokenizes rather than regexes so strings containing the marker are
    never mistaken for directives.  Malformed directives are ignored (the
    linter must never crash on a weird comment).
    """
    sup = Suppressions()
    file_wide: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            if not text.startswith(_MARKER):
                continue
            directive = text[len(_MARKER):].strip()
            for form, target in (
                ("disable-file=", "file"),
                ("disable=", "line"),
            ):
                if directive.startswith(form):
                    rules = frozenset(
                        r.strip() for r in
                        directive[len(form):].split(",") if r.strip()
                    )
                    if not rules:
                        break
                    if target == "file":
                        file_wide |= rules
                    else:
                        line = tok.start[0]
                        sup.by_line[line] = sup.by_line.get(
                            line, frozenset()
                        ) | rules
                    break
    except tokenize.TokenError:  # pragma: no cover - half-written files
        pass
    sup.file_wide = frozenset(file_wide)
    return sup


def build_alias_map(tree: ast.AST) -> Dict[str, str]:
    """Map local names to canonical dotted import paths.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from time import time as wall`` → ``{"wall": "time.time"}``.
    Relative imports are prefixed with ``.`` per level and are resolved no
    further — the determinism rules only match absolute stdlib/numpy names.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{prefix}.{a.name}"
    return aliases


class FileContext:
    """One parsed file, ready for rule evaluation."""

    def __init__(self, path: Path, display_path: str, source: str):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.aliases: Dict[str, str] = build_alias_map(self.tree)
        self.suppressions: Suppressions = parse_suppressions(source)
        rel = _relative_to_repro(path)
        self.repro_relpath: Optional[str] = rel
        top = rel.split("/", 1)[0] if rel else ""
        #: Code that runs inside the simulation proper.
        self.sim_scope: bool = top in SIM_PACKAGES
        #: Sim scope plus the COMB method drivers (engine processes).
        self.hot_scope: bool = self.sim_scope or (rel in HOT_MODULES)
        #: Hot scope plus packages whose *output order* is contractual
        #: (obs: golden traces, exporters, attribution) — the
        #: iteration-order determinism rules apply here.
        self.order_scope: bool = self.hot_scope or (
            top in ORDER_SENSITIVE_PACKAGES
        )
        self._qualnames: Dict[int, str] = {}
        self._index_symbols()

    # ------------------------------------------------------------- symbols
    def _index_symbols(self) -> None:
        """Precompute the enclosing qualname of every line."""

        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    qual = f"{prefix}.{child.name}" if prefix else child.name
                    end = child.end_lineno or child.lineno
                    for ln in range(child.lineno, end + 1):
                        self._qualnames[ln] = qual
                    visit(child, qual)
                else:
                    visit(child, prefix)

        visit(self.tree, "")

    def symbol_at(self, line: int) -> str:
        """Enclosing ``Class.function`` qualname of ``line``."""
        return self._qualnames.get(line, "<module>")

    def snippet_at(self, line: int) -> str:
        """Stripped source text of ``line`` (1-based)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    # ----------------------------------------------------------- resolution
    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or ``None``.

        ``np.random.seed`` resolves through the alias map to
        ``numpy.random.seed``; chains rooted in anything other than a
        plain name (``self.rng.random``) resolve to ``None``.
        """
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        head = self.aliases.get(cur.id, cur.id)
        parts.append(head)
        return ".".join(reversed(parts))

    def make_violation(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        severity: str = "error",
    ) -> LintViolation:
        """Violation anchored at ``node`` in this file."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return LintViolation(
            rule=rule,
            path=self.display_path,
            line=line,
            col=col,
            message=message,
            symbol=self.symbol_at(line),
            snippet=self.snippet_at(line),
            severity=severity,
        )
