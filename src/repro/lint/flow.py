"""Per-function control-flow graphs and fixpoint abstract interpretation.

This is the engine under comb-lint's dataflow rules (UNIT003/UNIT004
dimension inference, DET005 orderedness tracking).  It deliberately stays
small and predictable rather than general:

* :func:`build_cfg` lowers one function body to basic blocks.  Branch
  *tests* and loop headers are kept as block items so an analysis can
  inspect (and report on) the expressions that guard control flow, not
  just straight-line statements.
* :func:`run_analysis` runs a forward worklist fixpoint: abstract
  environments (plain ``name → frozenset[str]`` fact maps) are pushed
  through every block until nothing changes, then one *reporting* pass
  re-walks each reachable block with the stabilized entry environment so
  every diagnostic is emitted exactly once.

The fact domain is a join-semilattice of tag sets: join is pointwise set
union, a name missing from an environment is "no information" (⊤ for
reporting purposes — rules only fire on singleton facts, so joins can
only ever *suppress* diagnostics, never invent them).  Tag sets are
bounded by the analysis's vocabulary, so the fixpoint terminates without
widening.

Exception edges are approximated conservatively: every ``except``
handler is entered with the join of the ``try`` block's entry *and* exit
environments.  Mid-body states are not modelled; because rules fire only
on singleton facts, the approximation again errs toward silence.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

#: An abstract environment: variable name → set of facts (tags).
Env = Dict[str, FrozenSet[str]]

#: Diagnostic sink: ``(anchor_node, message)``.
Report = Callable[[ast.AST, str], None]


@dataclass
class Block:
    """One basic block: straight-line items plus successor block ids."""

    block_id: int
    #: Statements *and* guard expressions, in execution order.
    items: List[ast.AST] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)


@dataclass
class CFG:
    """Control-flow graph of one function body (entry is block 0)."""

    blocks: List[Block]

    @property
    def entry(self) -> Block:
        return self.blocks[0]


class _Builder:
    """Lowers a statement list into basic blocks."""

    def __init__(self) -> None:
        self.blocks: List[Block] = []
        #: (loop-header id, loop-exit id) stack for break/continue.
        self.loops: List[Tuple[int, int]] = []
        self.cur: Optional[int] = self._new()

    def _new(self) -> int:
        b = Block(len(self.blocks))
        self.blocks.append(b)
        return b.block_id

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)

    def _emit(self, node: ast.AST) -> None:
        if self.cur is None:  # unreachable code: park it in a fresh block
            self.cur = self._new()
        self.blocks[self.cur].items.append(node)

    # ------------------------------------------------------------- lowering
    def lower(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._emit(stmt.test)
            head = self.cur
            assert head is not None
            join = self._new()
            self.cur = self._new()
            self._edge(head, self.cur)
            self.lower(stmt.body)
            if self.cur is not None:
                self._edge(self.cur, join)
            if stmt.orelse:
                self.cur = self._new()
                self._edge(head, self.cur)
                self.lower(stmt.orelse)
                if self.cur is not None:
                    self._edge(self.cur, join)
            else:
                self._edge(head, join)
            self.cur = join
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            pre = self.cur
            assert pre is not None
            header = self._new()
            self._edge(pre, header)
            # The loop node itself is the header item: analyses see the
            # test / iteration target with the loop body still attached.
            self.blocks[header].items.append(
                stmt.test if isinstance(stmt, ast.While) else stmt
            )
            exit_ = self._new()
            self.loops.append((header, exit_))
            self.cur = self._new()
            self._edge(header, self.cur)
            self.lower(stmt.body)
            if self.cur is not None:
                self._edge(self.cur, header)
            self.loops.pop()
            self._edge(header, exit_)
            if stmt.orelse:
                self.cur = self._new()
                self._edge(header, self.cur)
                self.lower(stmt.orelse)
                if self.cur is not None:
                    self._edge(self.cur, exit_)
            self.cur = exit_
        elif isinstance(stmt, ast.Try):
            pre = self.cur
            assert pre is not None
            body_entry = self._new()
            self._edge(pre, body_entry)
            self.cur = body_entry
            self.lower(stmt.body)
            body_exit = self.cur
            after = self._new()
            orelse_src = body_exit
            if stmt.orelse and body_exit is not None:
                self.cur = self._new()
                self._edge(body_exit, self.cur)
                self.lower(stmt.orelse)
                orelse_src = self.cur
            if orelse_src is not None:
                self._edge(orelse_src, after)
            for handler in stmt.handlers:
                h_entry = self._new()
                # Conservative: a handler may run with the try entry
                # state or (approximately) the try exit state.
                self._edge(body_entry, h_entry)
                if body_exit is not None:
                    self._edge(body_exit, h_entry)
                self.cur = h_entry
                if handler.name:
                    self._emit(
                        ast.copy_location(
                            ast.Name(id=handler.name, ctx=ast.Store()),
                            handler,
                        )
                    )
                self.lower(handler.body)
                if self.cur is not None:
                    self._edge(self.cur, after)
            self.cur = after
            if stmt.finalbody:
                self.lower(stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._emit(item.context_expr)
            self.lower(stmt.body)
        elif isinstance(stmt, ast.Match):
            self._emit(stmt.subject)
            head = self.cur
            assert head is not None
            join = self._new()
            for case in stmt.cases:
                self.cur = self._new()
                self._edge(head, self.cur)
                self.lower(case.body)
                if self.cur is not None:
                    self._edge(self.cur, join)
            self._edge(head, join)
            self.cur = join
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            self._emit(stmt)
            self.cur = None
        elif isinstance(stmt, ast.Break):
            if self.loops and self.cur is not None:
                self._edge(self.cur, self.loops[-1][1])
            self.cur = None
        elif isinstance(stmt, ast.Continue):
            if self.loops and self.cur is not None:
                self._edge(self.cur, self.loops[-1][0])
            self.cur = None
        else:
            # Straight-line statements (incl. nested def/class, which an
            # analysis treats as opaque name bindings).
            self._emit(stmt)


def build_cfg(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> CFG:
    """The CFG of ``fn``'s body (nested functions are *not* inlined)."""
    builder = _Builder()
    builder.lower(fn.body)
    return CFG(builder.blocks)


class Analysis:
    """A forward dataflow analysis over tag-set environments.

    Subclasses implement :meth:`seed` (the entry environment from the
    function's parameters) and :meth:`transfer` (one item's effect on the
    environment, optionally reporting diagnostics).  ``transfer`` must be
    deterministic and must mutate ``env`` in place.
    """

    def seed(self, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> Env:
        return {}

    def transfer(
        self, item: ast.AST, env: Env, report: Optional[Report]
    ) -> None:
        raise NotImplementedError


def join_envs(a: Env, b: Env) -> Env:
    """Pointwise union; names absent from either side carry no fact."""
    out: Env = {}
    for name, tags in a.items():
        other = b.get(name)
        if other is not None:
            out[name] = tags | other
    return out


def run_analysis(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    analysis: Analysis,
    report: Report,
) -> None:
    """Fixpoint ``analysis`` over ``fn``, then one reporting pass.

    Diagnostics are only emitted during the final pass, with every block
    entered under its stabilized environment — each offending node
    reports once regardless of how many fixpoint iterations ran.
    """
    cfg = build_cfg(fn)
    entry_env: List[Optional[Env]] = [None] * len(cfg.blocks)
    entry_env[0] = analysis.seed(fn)
    work = [0]
    # Quadratic worst case bounded by (blocks × vocabulary); fine at
    # function scale.
    guard = 0
    limit = 50 * (len(cfg.blocks) + 1)
    while work:
        guard += 1
        if guard > limit:  # pragma: no cover - defensive bound
            break
        bid = work.pop()
        env = dict(entry_env[bid] or {})
        for item in cfg.blocks[bid].items:
            analysis.transfer(item, env, None)
        for succ in cfg.blocks[bid].succs:
            cur = entry_env[succ]
            new = dict(env) if cur is None else join_envs(cur, env)
            if new != cur:
                entry_env[succ] = new
                if succ not in work:
                    work.append(succ)
    for bid, block in enumerate(cfg.blocks):
        env0 = entry_env[bid]
        if env0 is None:
            continue  # unreachable
        env = dict(env0)
        for item in block.items:
            analysis.transfer(item, env, report)


def function_defs(
    tree: ast.AST,
) -> List["ast.FunctionDef | ast.AsyncFunctionDef"]:
    """Every function/method definition in ``tree`` (nested included)."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


__all__ = [
    "Analysis",
    "Block",
    "CFG",
    "Env",
    "Report",
    "build_cfg",
    "function_defs",
    "join_envs",
    "run_analysis",
]
