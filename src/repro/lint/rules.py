"""Rule framework: base classes, the registry, and rule metadata.

Rules come in two shapes:

* :class:`FileRule` — examines one :class:`~repro.lint.model.FileContext`
  at a time (all DET/UNIT/SIM rules).
* :class:`ProjectRule` — examines the whole batch of parsed files at once
  (CACHE001 needs the executor's hashing code *and* every config
  dataclass definition, which live in different modules).

Every rule registers itself via the :func:`register` decorator; the
runner instantiates the registry once per invocation, so rules may keep
per-run state.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Type

from .model import FileContext, LintViolation


class Rule:
    """Common metadata every rule carries."""

    #: Unique id, e.g. ``DET001`` (class attribute; never empty in leaves).
    rule_id: str = ""
    #: ``error`` or ``warning``.
    severity: str = "error"
    #: One-line human summary (shown by ``comb lint --list-rules``).
    summary: str = ""


class FileRule(Rule):
    """A rule evaluated independently per file."""

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        """Yield every violation of this rule in ``ctx``."""
        raise NotImplementedError
        yield  # pragma: no cover


class ProjectRule(Rule):
    """A rule evaluated once over the whole set of linted files."""

    def check_project(
        self, ctxs: Sequence[FileContext]
    ) -> Iterator[LintViolation]:
        """Yield every violation of this rule across ``ctxs``."""
        raise NotImplementedError
        yield  # pragma: no cover


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rule_classes() -> List[Type[Rule]]:
    """Registered rule classes, ordered by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def rule_catalog() -> Dict[str, str]:
    """``rule_id → summary`` for every registered rule."""
    return {k: _REGISTRY[k].summary for k in sorted(_REGISTRY)}
