"""Lint driver: file discovery, rule evaluation, report assembly."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Union

from .baseline import Baseline
from .model import FileContext, LintViolation
from .rules import FileRule, ProjectRule, all_rule_classes

# Importing the rule modules populates the registry.
from . import cachekey as _cachekey  # noqa: F401
from . import det as _det  # noqa: F401
from . import simio as _simio  # noqa: F401
from . import units as _units  # noqa: F401

#: Directory names never descended into.
_SKIP_DIRS: Set[str] = {
    "__pycache__", ".git", ".comb_cache", ".venv", "node_modules",
    ".mypy_cache", ".pytest_cache",
}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    #: Violations that gate (not suppressed, not baselined), sorted.
    violations: List[LintViolation] = field(default_factory=list)
    #: Violations matched by the baseline file.
    baselined: List[LintViolation] = field(default_factory=list)
    #: Violations waived by ``# comb-lint: disable`` comments.
    suppressed: List[LintViolation] = field(default_factory=list)
    #: Files that failed to parse, as synthetic PARSE001 violations.
    parse_errors: List[LintViolation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """Gate verdict: no new violations and no unparseable files."""
        return not self.violations and not self.parse_errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def all_found(self) -> List[LintViolation]:
        """Everything the rules reported, regardless of disposition."""
        return sorted(
            self.violations + self.baselined + self.suppressed,
            key=_sort_key,
        )


def _sort_key(v: LintViolation) -> tuple:
    return (v.path, v.line, v.col, v.rule)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not _SKIP_DIRS.intersection(sub.parts):
                    out.add(sub)
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def _display_path(path: Path) -> str:
    """Path as reported and fingerprinted: relative to CWD when possible."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def load_contexts(
    files: Iterable[Path],
) -> "tuple[List[FileContext], List[LintViolation]]":
    """Parse every file; syntax errors become PARSE001 violations."""
    ctxs: List[FileContext] = []
    errors: List[LintViolation] = []
    for f in files:
        display = _display_path(f)
        try:
            source = f.read_text(encoding="utf-8")
            ctxs.append(FileContext(f, display, source))
        except (SyntaxError, ValueError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            errors.append(
                LintViolation(
                    rule="PARSE001",
                    path=display,
                    line=int(line),
                    col=0,
                    message=f"file could not be linted: {exc}",
                    symbol="<module>",
                    snippet="",
                    severity="error",
                )
            )
    return ctxs, errors


def lint_paths(
    paths: Sequence[Union[str, Path]],
    baseline: Optional[Baseline] = None,
    select: Optional[Set[str]] = None,
) -> LintReport:
    """Lint ``paths`` and return the full report.

    Parameters
    ----------
    paths:
        Files and/or directories (recursed) to lint.
    baseline:
        Grandfathered violations; matches are reported separately and do
        not gate.
    select:
        Restrict evaluation to these rule ids (default: all rules).
    """
    report = LintReport()
    files = iter_python_files(paths)
    ctxs, report.parse_errors = load_contexts(files)
    report.files_checked = len(ctxs)

    found: List[LintViolation] = []
    for rule_cls in all_rule_classes():
        if select is not None and rule_cls.rule_id not in select:
            continue
        rule = rule_cls()
        if isinstance(rule, FileRule):
            for ctx in ctxs:
                found.extend(rule.check(ctx))
        elif isinstance(rule, ProjectRule):
            found.extend(rule.check_project(ctxs))

    sup_index = {ctx.display_path: ctx.suppressions for ctx in ctxs}
    for violation in sorted(found, key=_sort_key):
        sup = sup_index.get(violation.path)
        if sup is not None and sup.is_suppressed(
            violation.rule, violation.line
        ):
            report.suppressed.append(violation)
        elif baseline is not None and baseline.contains(violation):
            report.baselined.append(violation)
        else:
            report.violations.append(violation)
    return report


__all__ = ["LintReport", "lint_paths", "iter_python_files"]
