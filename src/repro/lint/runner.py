"""Lint driver: file discovery, rule evaluation, report assembly.

File rules — including the dataflow fixpoints, the expensive part — can
be fanned out over a *spawn*-context process pool (the executor's
idiom: spawn, not fork, so workers import a clean interpreter and the
pooled run is bit-identical to the serial one).  Workers parse their own
files and return plain :class:`~repro.lint.model.LintViolation` values;
the parent always parses the full set anyway because project rules and
suppression/baseline matching need every context, and the final sort
makes result order independent of worker scheduling.
"""

from __future__ import annotations

import ast
import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union,
)

from .baseline import Baseline
from .model import FileContext, LintViolation
from .rules import FileRule, ProjectRule, all_rule_classes

# Importing the rule modules populates the registry.
from . import cachekey as _cachekey  # noqa: F401
from . import det as _det  # noqa: F401
from . import dims as _dims  # noqa: F401
from . import execsafe as _execsafe  # noqa: F401
from . import obsrules as _obsrules  # noqa: F401
from . import simio as _simio  # noqa: F401
from . import units as _units  # noqa: F401

#: Directory names never descended into.
_SKIP_DIRS: Set[str] = {
    "__pycache__", ".git", ".comb_cache", ".venv", "node_modules",
    ".mypy_cache", ".pytest_cache",
}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    #: Violations that gate (not suppressed, not baselined), sorted.
    violations: List[LintViolation] = field(default_factory=list)
    #: Violations matched by the baseline file.
    baselined: List[LintViolation] = field(default_factory=list)
    #: Violations waived by ``# comb-lint: disable`` comments.
    suppressed: List[LintViolation] = field(default_factory=list)
    #: Files that failed to parse, as synthetic PARSE001 violations.
    parse_errors: List[LintViolation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """Gate verdict: no new violations and no unparseable files."""
        return not self.violations and not self.parse_errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def all_found(self) -> List[LintViolation]:
        """Everything the rules reported, regardless of disposition."""
        return sorted(
            self.violations + self.baselined + self.suppressed,
            key=_sort_key,
        )


def _sort_key(v: LintViolation) -> tuple:
    return (v.path, v.line, v.col, v.rule)


def iter_python_files(
    paths: Sequence[Union[str, Path]],
    exclude: Optional[Set[str]] = None,
) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    ``exclude`` names directory components to skip (on top of the
    built-in skip list) — ``{"lint_fixtures"}`` lets CI lint ``tests/``
    without tripping over the deliberately-violating rule fixtures.
    """
    skip = _SKIP_DIRS | (exclude or set())
    out: Set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not skip.intersection(sub.parts):
                    out.add(sub)
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def _display_path(path: Path) -> str:
    """Path as reported and fingerprinted: relative to CWD when possible."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def load_contexts(
    files: Iterable[Path],
) -> "tuple[List[FileContext], List[LintViolation]]":
    """Parse every file; syntax errors become PARSE001 violations."""
    ctxs: List[FileContext] = []
    errors: List[LintViolation] = []
    for f in files:
        display = _display_path(f)
        try:
            source = f.read_text(encoding="utf-8")
            ctxs.append(FileContext(f, display, source))
        except (SyntaxError, ValueError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            errors.append(
                LintViolation(
                    rule="PARSE001",
                    path=display,
                    line=int(line),
                    col=0,
                    message=f"file could not be linted: {exc}",
                    symbol="<module>",
                    snippet="",
                    severity="error",
                )
            )
    return ctxs, errors


def _file_rules(select: Optional[FrozenSet[str]]) -> List[FileRule]:
    return [
        cls()
        for cls in all_rule_classes()
        if issubclass(cls, FileRule)
        and (select is None or cls.rule_id in select)
    ]


def _check_one_file(
    args: Tuple[str, str, Optional[FrozenSet[str]]],
) -> List[LintViolation]:
    """Pool worker: parse one file, run every (selected) file rule.

    Parse failures return ``[]`` — the parent parses the same file and
    owns PARSE001 reporting, so the worker never double-reports.
    """
    path_str, display, select = args
    try:
        source = Path(path_str).read_text(encoding="utf-8")
        ctx = FileContext(Path(path_str), display, source)
    except (SyntaxError, ValueError, OSError):
        return []
    found: List[LintViolation] = []
    for rule in _file_rules(select):
        found.extend(rule.check(ctx))
    return found


def lint_paths(
    paths: Sequence[Union[str, Path]],
    baseline: Optional[Baseline] = None,
    select: Optional[Set[str]] = None,
    jobs: int = 1,
    exclude: Optional[Set[str]] = None,
) -> LintReport:
    """Lint ``paths`` and return the full report.

    Parameters
    ----------
    paths:
        Files and/or directories (recursed) to lint.
    baseline:
        Grandfathered violations; matches are reported separately and do
        not gate.
    select:
        Restrict evaluation to these rule ids (default: all rules).
    jobs:
        File-rule fan-out width.  ``jobs > 1`` evaluates file rules in a
        spawn-context process pool; project rules always run in the
        parent.  Results are bit-identical to the serial path.
    exclude:
        Extra directory names to skip during discovery.
    """
    report = LintReport()
    files = iter_python_files(paths, exclude=exclude)
    ctxs, report.parse_errors = load_contexts(files)
    report.files_checked = len(ctxs)
    selected = frozenset(select) if select is not None else None

    found: List[LintViolation] = []
    pooled = jobs > 1 and len(ctxs) > 1
    if pooled:
        work = [
            (str(ctx.path), ctx.display_path, selected) for ctx in ctxs
        ]
        spawn = multiprocessing.get_context("spawn")
        with spawn.Pool(processes=min(jobs, len(work))) as pool:
            for batch in pool.map(_check_one_file, work):
                found.extend(batch)
    else:
        rules = _file_rules(selected)
        for ctx in ctxs:
            for rule in rules:
                found.extend(rule.check(ctx))
    for rule_cls in all_rule_classes():
        if not issubclass(rule_cls, ProjectRule):
            continue
        if selected is not None and rule_cls.rule_id not in selected:
            continue
        found.extend(rule_cls().check_project(ctxs))

    sup_index = {ctx.display_path: ctx.suppressions for ctx in ctxs}
    for violation in sorted(found, key=_sort_key):
        sup = sup_index.get(violation.path)
        if sup is not None and sup.is_suppressed(
            violation.rule, violation.line
        ):
            report.suppressed.append(violation)
        elif baseline is not None and baseline.contains(violation):
            report.baselined.append(violation)
        else:
            report.violations.append(violation)
    return report


__all__ = ["LintReport", "lint_paths", "iter_python_files"]
