"""Units-discipline rules UNIT001–UNIT002.

The simulator is SI-internal (seconds, bytes, bytes/second, hertz; see
:mod:`repro.sim.units`) and the codebase encodes the unit of every
quantity in its name: ``wire_latency_s``, ``msg_bytes``,
``host_dma_bandwidth_Bps``, ``poll_interval_iters``.  Hunold &
Carpen-Amarie's reproducibility post-mortems repeatedly trace silent
drift to a microsecond fed where a second was expected — a class of bug
the type checker cannot see because both are ``float``.  These rules
make the convention mandatory.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .model import FileContext, LintViolation
from .rules import FileRule, register

#: Recognized unit suffixes, grouped into dimension families.  A name
#: carrying any of these is considered unit-annotated.
SUFFIX_FAMILIES: Dict[str, Tuple[str, ...]] = {
    "time": ("_s", "_us", "_ms", "_ns"),
    "size": ("_bytes", "_kib", "_mib", "_kb", "_mb"),
    "bandwidth": ("_Bps", "_MBps", "_bps"),
    "frequency": ("_hz", "_mhz", "_ghz"),
    "count": ("_iters", "_cycles", "_pkts", "_msgs", "_ranks", "_tokens"),
}

#: Quantity stems that *require* a unit suffix, with the families that
#: satisfy them.  A name violates UNIT001 when it equals a stem (or ends
#: in ``_<stem>``) and carries no recognized suffix at all.
QUANTITY_STEMS: Dict[str, Tuple[str, ...]] = {
    "delay": ("time",),
    "latency": ("time",),
    "timeout": ("time",),
    "duration": ("time",),
    "elapsed": ("time",),
    "warmup": ("time", "count"),
    "deadline": ("time",),
    "period": ("time",),
    "interval": ("time", "count"),
    "size": ("size", "count"),
    "bandwidth": ("bandwidth",),
    "freq": ("frequency",),
    "frequency": ("frequency",),
}


def unit_suffix_of(name: str) -> Optional[Tuple[str, str]]:
    """``(family, suffix)`` when ``name`` ends in a recognized suffix."""
    for family, suffixes in SUFFIX_FAMILIES.items():
        for suffix in suffixes:
            if name.endswith(suffix):
                return family, suffix
    return None


def quantity_stem_of(name: str) -> Optional[str]:
    """The quantity stem ``name`` expresses, if any.

    Exact match or ``<prefix>_<stem>``; plural forms (``sizes``,
    ``intervals``) are containers of values, not quantities, and are
    deliberately not matched.
    """
    for stem in QUANTITY_STEMS:
        if name == stem or name.endswith(f"_{stem}"):
            return stem
    return None


def needs_suffix(name: str) -> bool:
    """Does UNIT001 require a suffix on ``name``?

    Two triggers: a quantity stem (``delay``, ``wire_latency``) and the
    time-temporary idiom ``t_<something>`` (``t_start``, ``t_comm``).
    """
    if unit_suffix_of(name) is not None:
        return False
    if quantity_stem_of(name) is not None:
        return True
    return (
        name.startswith("t_")
        and len(name) > 2
        and not name[2:].isdigit()
    )


@register
class UnitSuffixRule(FileRule):
    """UNIT001: quantity-named parameters/locals must carry unit suffixes."""

    rule_id = "UNIT001"
    summary = (
        "time/size/bandwidth-named binding without a unit suffix "
        "(_s, _bytes, _Bps, _iters, ...)"
    )

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        seen: Set[Tuple[str, int]] = set()
        for node in ast.walk(ctx.tree):
            for name, anchor in self._bindings(node):
                key = (name, anchor.lineno)
                if key in seen:
                    continue
                seen.add(key)
                if needs_suffix(name):
                    yield ctx.make_violation(
                        self.rule_id,
                        anchor,
                        f"{name!r} names a physical quantity but carries "
                        f"no unit suffix; encode the unit in the name "
                        f"(e.g. {name}_s / {name}_bytes / {name}_iters)",
                    )

    @staticmethod
    def _bindings(node: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
        """(name, anchor-node) for every binding this node introduces."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
            ):
                yield arg.arg, arg
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                yield from UnitSuffixRule._names_in_target(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            yield from UnitSuffixRule._names_in_target(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            yield from UnitSuffixRule._names_in_target(node.target)

    @staticmethod
    def _names_in_target(target: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
        if isinstance(target, ast.Name):
            yield target.id, target
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from UnitSuffixRule._names_in_target(elt)


@register
class UnitMixRule(FileRule):
    """UNIT002: no additive arithmetic across unit suffixes.

    ``a_s + b_us`` is a unit bug by construction; ``a_s + 3`` hides a
    constant whose unit nobody can audit.  Multiplication and division
    legitimately change dimensions and are not checked.
    """

    rule_id = "UNIT002"
    summary = (
        "addition/subtraction mixing different unit suffixes, or a "
        "unit-suffixed name with a bare non-zero literal"
    )

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            left = self._unit_tag(node.left)
            right = self._unit_tag(node.right)
            if left is None or right is None:
                continue
            if left == "literal" and right == "literal":
                continue
            if left == "literal" or right == "literal":
                suffix = right if left == "literal" else left
                yield ctx.make_violation(
                    self.rule_id,
                    node,
                    f"bare numeric literal combined with a {suffix!r} "
                    "quantity; give the constant a unit "
                    "(repro.sim.units helpers or a suffixed name)",
                )
            elif left != right:
                yield ctx.make_violation(
                    self.rule_id,
                    node,
                    f"adding {left!r} and {right!r} quantities; convert "
                    "to one unit first (repro.sim.units)",
                )

    @staticmethod
    def _unit_tag(node: ast.AST) -> Optional[str]:
        """The unit suffix of an operand, ``"literal"``, or ``None``.

        Only plain names and attribute tails are unit-tagged; zero
        literals are untagged (additive identity in any unit).
        """
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and node.value != 0:
                return "literal"
            return None
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is None:
            return None
        tagged = unit_suffix_of(name)
        return tagged[1] if tagged else None


__all__ = [
    "SUFFIX_FAMILIES",
    "QUANTITY_STEMS",
    "unit_suffix_of",
    "quantity_stem_of",
    "needs_suffix",
    "UnitSuffixRule",
    "UnitMixRule",
]
