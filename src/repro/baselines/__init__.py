"""Baseline measurements COMB is compared against (paper §5)."""

from .netperf import DELAY_ITERS, NetperfResult, run_netperf
from .pingpong import PingPongResult, run_pingpong
from .whitebova import OverlapClassification, classify_overlap, classify_sizes

__all__ = [
    "DELAY_ITERS",
    "NetperfResult",
    "OverlapClassification",
    "PingPongResult",
    "classify_overlap",
    "classify_sizes",
    "run_netperf",
    "run_pingpong",
]
