"""netperf-style CPU-availability measurement (paper §5).

netperf times a delay loop on a quiescent node, then times the same loop
while a *separate process on the same node* drives communication, and
reports the ratio as processor availability.  The paper identifies two
problems when this approach is applied to MPI:

1. MPI environments assume one process per node, so availability should be
   measured *within* the MPI task, not beside it;
2. netperf assumes the communication process *relinquishes the CPU* while
   waiting (a ``select`` call).  OS-bypass MPI implementations busy-wait
   instead, so the communication process soaks up its whole timeslice and
   the delay loop sees ≈ 50% of the CPU regardless of the actual
   communication overhead.

``run_netperf`` reproduces the scheme faithfully — two user processes
sharing one CPU round-robin — with both waiting styles, so the distortion
is directly observable (see ``examples/netperf_pitfall.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import SystemConfig
from ..mpi.world import build_world
from ..sim.units import to_mbps

#: Delay-loop iterations per measured repetition.  100 ms of work at the
#: default 4 ns/iteration — long enough to span many scheduler quanta, so
#: a busy-waiting co-located process actually shares the CPU.
DELAY_ITERS = 25_000_000


@dataclass
class NetperfResult:
    """Outcome of one netperf-style run."""

    system: str
    msg_bytes: int
    #: "blocking" (select semantics) or "busywait" (MPI semantics).
    wait_mode: str
    #: Delay-loop time on the quiescent node.
    dry_s: float
    #: Delay-loop time while the co-located process communicates.
    loaded_s: float
    #: Communication goodput achieved meanwhile (both directions).
    bandwidth_Bps: float

    @property
    def availability(self) -> float:
        """netperf's availability figure: dry / loaded."""
        return self.dry_s / self.loaded_s

    @property
    def bandwidth_MBps(self) -> float:
        """Bandwidth in MB/s."""
        return to_mbps(self.bandwidth_Bps)


def run_netperf(
    system: SystemConfig,
    msg_bytes: int = 100 * 1024,
    wait_mode: str = "blocking",
    delay_iters: int = DELAY_ITERS,
) -> NetperfResult:
    """Run the two-process netperf scheme on node 0.

    ``wait_mode='blocking'`` yields the CPU while waiting (netperf's
    assumption); ``'busywait'`` spins in the MPI wait, as OS-bypass MPI
    implementations do.
    """
    if wait_mode not in ("blocking", "busywait"):
        raise ValueError("wait_mode must be 'blocking' or 'busywait'")
    world = build_world(system)
    engine = world.engine
    node0 = world.cluster[0]
    iter_s = system.machine.cpu.work_iter_s

    delay_ctx = node0.new_context("netperf.delay")
    comm_ctx = node0.new_context("netperf.comm")
    remote_ctx = world.cluster[1].new_context("netperf.echo")
    h_comm = world.endpoint(0).bind(comm_ctx)
    h_remote = world.endpoint(1).bind(remote_ctx)

    out = {}
    comm_on = engine.event()
    done = {"stop": False}

    def delay_loop():
        # Quiescent measurement first (the other process is idle).
        t0 = engine.now
        yield delay_ctx.compute(delay_iters * iter_s)
        out["dry"] = engine.now - t0
        comm_on.succeed()
        stats0 = h_comm.device.stats.snapshot()
        t1 = engine.now
        yield delay_ctx.compute(delay_iters * iter_s)
        out["loaded"] = engine.now - t1
        delta = h_comm.device.stats.delta(stats0)
        out["bytes"] = delta.bytes_send_done + delta.bytes_recv_done
        done["stop"] = True

    def comm_proc():
        yield comm_on
        while not done["stop"]:
            rreq = yield from h_comm.irecv(src=1, nbytes=msg_bytes, tag=5)
            sreq = yield from h_comm.isend(1, msg_bytes, tag=5)
            if wait_mode == "blocking":
                yield from h_comm.wait_blocking([rreq, sreq])
            else:
                yield from h_comm.waitall([rreq, sreq])

    def echo_proc():
        while not done["stop"]:
            rreq = yield from h_remote.irecv(src=0, nbytes=msg_bytes, tag=5)
            sreq = yield from h_remote.isend(0, msg_bytes, tag=5)
            yield from h_remote.waitall([rreq, sreq])

    proc = engine.spawn(delay_loop(), name="netperf.delay")
    engine.spawn(comm_proc(), name="netperf.comm")
    engine.spawn(echo_proc(), name="netperf.echo")
    engine.run(proc)
    return NetperfResult(
        system=system.name,
        msg_bytes=msg_bytes,
        wait_mode=wait_mode,
        dry_s=out["dry"],
        loaded_s=out["loaded"],
        bandwidth_Bps=out["bytes"] / out["loaded"],
    )
