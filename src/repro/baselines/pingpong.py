"""Classic ping-pong latency/bandwidth microbenchmark.

This is the style of measurement COMB's introduction criticizes: it
captures latency and peak bandwidth but says nothing about how much CPU the
application keeps, or whether communication progresses during computation.
Included both as a baseline and as a calibration aid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import SystemConfig
from ..mpi.world import build_world
from ..sim.units import to_mbps


@dataclass
class PingPongResult:
    """Ping-pong outcome for one message size."""

    system: str
    msg_bytes: int
    #: Half round-trip time (the usual "latency" number).
    latency_s: float
    #: One-way goodput: msg_bytes / half-RTT.
    bandwidth_Bps: float
    repeats: int

    @property
    def bandwidth_MBps(self) -> float:
        """Bandwidth in MB/s."""
        return to_mbps(self.bandwidth_Bps)


def run_pingpong(
    system: SystemConfig,
    msg_bytes: int,
    repeats: int = 20,
    warmup_msgs: int = 3,
    topology=None,
) -> PingPongResult:
    """Measure mean half-RTT over ``repeats`` exchanges (after warmup_msgs).

    ``topology`` selects the fabric (``None``: the paper's crossbar
    switch) — the differential tests use an explicit two-node topology
    to pin it bit-identical against the default wiring.
    """
    if repeats < 1 or warmup_msgs < 0:
        raise ValueError("repeats >= 1 and warmup_msgs >= 0 required")
    world = build_world(system, topology=topology)
    engine = world.engine
    ctx0 = world.cluster[0].new_context("pingpong.initiator")
    ctx1 = world.cluster[1].new_context("pingpong.echo")
    h0 = world.endpoint(0).bind(ctx0)
    h1 = world.endpoint(1).bind(ctx1)
    out = {}

    def initiator():
        for _ in range(warmup_msgs):
            yield from h0.send(1, msg_bytes, tag=1)
            yield from h0.recv(1, msg_bytes, tag=2)
        t0 = engine.now
        for _ in range(repeats):
            yield from h0.send(1, msg_bytes, tag=1)
            yield from h0.recv(1, msg_bytes, tag=2)
        out["rtt"] = (engine.now - t0) / repeats

    def echo():
        for _ in range(warmup_msgs + repeats):
            yield from h1.recv(0, msg_bytes, tag=1)
            yield from h1.send(0, msg_bytes, tag=2)

    proc = engine.spawn(initiator(), name="pingpong.initiator")
    engine.spawn(echo(), name="pingpong.echo")
    engine.run(proc)
    half = out["rtt"] / 2
    return PingPongResult(
        system=system.name,
        msg_bytes=msg_bytes,
        latency_s=half,
        bandwidth_Bps=(msg_bytes / half) if half > 0 else 0.0,
        repeats=repeats,
    )
