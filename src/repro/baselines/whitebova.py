"""White & Bova–style binary overlap classification (paper ref [11]).

"Where's the overlap?" characterized MPI implementations by a yes/no
answer per message size: post non-blocking operations, compute for roughly
the message transfer time, wait — if the total is close to
``max(T_comm, T_work)`` the system overlapped; if it is close to
``T_comm + T_work`` it serialized.  COMB extends this with *degrees* of
overlap and the bandwidth/availability trade-off; the baseline is kept
here for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..config import SystemConfig
from ..core.pww import PwwConfig, run_pww
from ..core.workloop import work_time
from .pingpong import run_pingpong


@dataclass
class OverlapClassification:
    """One size's verdict."""

    system: str
    msg_bytes: int
    #: Pure communication time for the exchange (no work).
    t_comm_s: float
    #: Work time chosen to approximate ``t_comm_s``.
    t_work_s: float
    #: Measured post+work+wait cycle with both running.
    t_both_s: float
    #: ``(t_comm_s + t_work_s - t_both_s) / min(t_comm_s, t_work_s)`` — 1 means full
    #: overlap, 0 means full serialization.
    overlap_fraction: float
    #: The binary verdict White & Bova would report.
    overlaps: bool


def classify_overlap(
    system: SystemConfig,
    msg_bytes: int,
    threshold: float = 0.5,
) -> OverlapClassification:
    """Classify one message size."""
    # Communication-only cycle: PWW with zero work.
    comm = run_pww(
        system, PwwConfig(msg_bytes=msg_bytes, work_interval_iters=0)
    )
    t_comm_s = comm.post_s + comm.wait_s
    # Pick a work interval close to the communication time.
    iter_s = system.machine.cpu.work_iter_s
    work_iters = max(1, int(t_comm_s / iter_s))
    t_work_s = work_time(system, work_iters)
    both = run_pww(
        system, PwwConfig(msg_bytes=msg_bytes, work_interval_iters=work_iters)
    )
    t_both_s = both.post_s + both.work_s + both.wait_s
    denom = min(t_comm_s, t_work_s)
    frac = (t_comm_s + t_work_s - t_both_s) / denom if denom > 0 else 0.0
    return OverlapClassification(
        system=system.name,
        msg_bytes=msg_bytes,
        t_comm_s=t_comm_s,
        t_work_s=t_work_s,
        t_both_s=t_both_s,
        overlap_fraction=frac,
        overlaps=frac >= threshold,
    )


def classify_sizes(
    system: SystemConfig, sizes: Sequence[int], threshold: float = 0.5
) -> List[OverlapClassification]:
    """Classify several sizes (the full White & Bova table)."""
    return [classify_overlap(system, s, threshold) for s in sizes]
