"""What-if systems: hypothetical stacks for the design-choice ablations.

These exercise the simulator beyond the paper's two measured systems:

* :func:`coalesced_portals` — Portals with NIC interrupt mitigation;
* :class:`OffloadNicDevice` / :func:`offload_nic_system` — an idealized
  NIC that performs matching and delivery with *no* host interrupts (the
  direction Quadrics/Elan and later RDMA NICs took): full application
  offload *and* GM-class CPU availability;
* :func:`build_custom_world` — a world builder accepting any device class,
  the extension hook custom transports plug into.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Type

from ..config import InterruptConfig, SystemConfig, portals_system
from ..hardware.cluster import Cluster
from ..hardware.memory import copy_time
from ..mpi.api import Endpoint
from ..mpi.world import World, register_device
from ..sim.engine import Engine
from ..sim.units import usec
from ..transport.base import Device
from ..transport.packets import Packet, PacketKind
from ..transport.portals import PortalsDevice


def coalesced_portals(window_s: float = usec(40)) -> SystemConfig:
    """Portals with interrupt coalescing (ablation for design decision 1)."""
    base = portals_system()
    machine = dataclasses.replace(
        base.machine,
        irq=dataclasses.replace(base.machine.irq, coalesce_window_s=window_s),
    )
    return dataclasses.replace(base, name="Portals+coalesce", machine=machine)


class OffloadNicDevice(PortalsDevice):
    """An idealized offload NIC: kernel-Portals semantics, zero interrupts.

    Matching, reassembly and delivery run on the NIC; received data is
    DMA'd straight to user buffers (the host-bus transfer is already paid
    in the NIC receive path), so the host CPU is never involved in data
    motion.  Posting still traps (cheaply) to pin buffers.
    """

    #: NIC-side processing latency per data packet (no host CPU).
    NIC_RX_LATENCY_S = usec(1.0)

    def nic_rx(self, pkt: Packet) -> None:
        if pkt.kind is PacketKind.DATA:
            self.engine.schedule_callback(
                self.NIC_RX_LATENCY_S, lambda p=pkt: self._rx_commit(p)
            )
        elif pkt.kind is PacketKind.RTS:
            self.engine.schedule_callback(
                self.NIC_RX_LATENCY_S, lambda p=pkt: self._rts_commit(p)
            )
        elif pkt.kind is PacketKind.CTS:
            self.engine.schedule_callback(
                self.NIC_RX_LATENCY_S, lambda p=pkt: self._get_commit(p)
            )
        elif pkt.kind is PacketKind.ACK:
            self.engine.schedule_callback(
                self.NIC_RX_LATENCY_S,
                lambda p=pkt: self._on_ack(p.src, p.meta["cum"]),
            )

    def _tx_pump(self):
        """NIC-side transmit: no kernel work per packet."""
        from ..hardware.nic import SendJob

        while True:
            req, pkts = yield self._txq.get()
            for pkt in pkts:
                yield self._gbn_slot(pkt.dst)
                pkt.meta["seq"] = self._tx_flow(pkt.dst).register(pkt)
                on_done = (
                    (lambda r=req: self._tx_done(r)) if pkt.is_last else None
                )
                self.node.nic.submit(SendJob([pkt], on_done=on_done))
                self._arm_rto(pkt.dst)


def offload_nic_system() -> SystemConfig:
    """Parameters for the idealized offload NIC (cheap traps, no copies).

    Registered with the world builder, so the standard ``run_polling`` /
    ``run_pww`` drivers work on it directly.
    """
    base = portals_system()
    portals = dataclasses.replace(
        base.portals,
        isend_trap_s=usec(4.0),
        irecv_trap_s=usec(4.0),
        tx_window_pkts=8,
    )
    system = dataclasses.replace(base, name="OffloadNIC", portals=portals)
    register_device(system.name, OffloadNicDevice)
    return system


def build_custom_world(
    system: SystemConfig,
    device_cls: Type[Device],
    n_nodes: int = 2,
    tracer=None,
) -> World:
    """Like :func:`repro.mpi.world.build_world` but with any device class.

    This is the supported way to plug a custom transport into COMB: write a
    :class:`~repro.transport.base.Device` subclass, build a world with it,
    and run the unmodified benchmark methods on top.
    """
    engine = Engine(trace=tracer)
    cluster = Cluster(engine, system, n_nodes=n_nodes, tracer=tracer)
    devices: List[Device] = [
        device_cls(engine, cluster[i], i, system) for i in range(n_nodes)
    ]
    routes: Dict[int, int] = {rank: rank for rank in range(n_nodes)}
    for dev in devices:
        dev.routes = dict(routes)
    endpoints = [
        Endpoint(engine, dev, rank, n_nodes) for rank, dev in enumerate(devices)
    ]
    return World(engine, system, cluster, endpoints, tracer)
