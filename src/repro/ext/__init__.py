"""Extensions beyond the paper: SMP nodes (§7) and what-if systems."""

from .emp import EmpDevice, emp_system
from .multirank import FanInPoint, run_fanin_polling
from .smp import SmpAvailability, run_smp_polling, smp_system
from .whatif import (
    OffloadNicDevice,
    build_custom_world,
    coalesced_portals,
    offload_nic_system,
)

__all__ = [
    "EmpDevice",
    "FanInPoint",
    "OffloadNicDevice",
    "SmpAvailability",
    "build_custom_world",
    "coalesced_portals",
    "emp_system",
    "offload_nic_system",
    "run_fanin_polling",
    "run_smp_polling",
    "smp_system",
]
