"""Deprecated: multi-peer fan-in moved to :mod:`repro.patterns.fanin`.

This shim keeps the old import path alive.  The runner used to build its
world ad hoc, bypassing the topology seam; the port in
:mod:`repro.patterns.fanin` is bit-identical on the default crossbar and
additionally accepts a ``topology=`` argument.
"""

from __future__ import annotations

import warnings

from ..patterns.fanin import FanInPoint
from ..patterns.fanin import run_fanin_polling as _run_fanin_polling

__all__ = ["FanInPoint", "run_fanin_polling"]


def run_fanin_polling(system, cfg, n_peers):
    """Deprecated alias for :func:`repro.patterns.fanin.run_fanin_polling`."""
    warnings.warn(
        "repro.ext.multirank is deprecated; use repro.patterns.fanin",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_fanin_polling(system, cfg, n_peers)
