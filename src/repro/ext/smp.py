"""Multi-processor nodes (the paper's §7 future work).

The paper notes its availability metric breaks on SMP nodes: a single
dry-run ratio cannot tell *which* processor lost cycles to communication.
This extension builds nodes with several CPUs (interrupts still routed to
CPU 0, as on the era's Linux) and measures availability *per CPU* with one
calibrated load process on each, while rank 0's worker drives the polling
method on CPU 0.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List

from ..config import SystemConfig
from ..core.polling import COMB_TAG, PollingConfig, _support, _worker, _WorkerState
from ..mpi.world import build_world


@dataclass
class SmpAvailability:
    """Per-CPU availability on the worker node of an SMP polling run."""

    system: str
    msg_bytes: int
    poll_interval_iters: int
    #: Availability measured by the COMB worker on CPU 0 (work iterations
    #: vs wall time, as in the uniprocessor method).
    worker_availability: float
    #: Availability seen by an independent compute load on each CPU
    #: (index 0 = the CPU shared with the worker and the interrupts).
    per_cpu_availability: List[float]
    bandwidth_Bps: float

    @property
    def naive_availability(self) -> float:
        """What the uniprocessor method would report: CPU 0's figure,
        silently wrong for every other processor."""
        return self.per_cpu_availability[0]


def run_smp_polling(system: SystemConfig, cfg: PollingConfig) -> SmpAvailability:
    """Run the polling method on an SMP node, measuring every CPU.

    CPUs 1..N-1 run pure compute loads; their availability isolates how
    much communication (interrupts target CPU 0) perturbs each processor.
    """
    if system.cpus_per_node < 2:
        raise ValueError("run_smp_polling needs cpus_per_node >= 2")
    world = build_world(system)
    engine = world.engine
    node0 = world.cluster[0]
    iter_s = system.machine.cpu.work_iter_s

    state = _WorkerState()
    worker = engine.spawn(_worker(world, cfg, state), name="smp.worker")
    engine.spawn(_support(world, cfg), name="smp.support")

    # One measured load per extra CPU; plus a probe sharing CPU 0.
    loads = {}

    def load(cpu_index: int):
        ctx = node0.new_context(f"smp.load{cpu_index}", cpu_index=cpu_index)
        iters = 0
        t0 = engine.now
        chunk = 100_000
        while not worker.triggered:
            yield ctx.compute(chunk * iter_s)
            iters += chunk
        loads[cpu_index] = (iters * iter_s) / (engine.now - t0)

    load_procs = [
        engine.spawn(load(i), name=f"smp.load{i}")
        for i in range(1, system.cpus_per_node)
    ]
    engine.run(worker)
    # Let each load finish its current chunk and record its figure.
    for proc in load_procs:
        engine.run(proc)

    pt = state.result
    # CPU 0's independent availability equals the worker's own measurement
    # (it shares the processor with the interrupt stream).
    per_cpu = [pt.availability] + [loads[i] for i in sorted(loads)]
    return SmpAvailability(
        system=system.name,
        msg_bytes=cfg.msg_bytes,
        poll_interval_iters=cfg.poll_interval_iters,
        worker_availability=pt.availability,
        per_cpu_availability=per_cpu,
        bandwidth_Bps=pt.bandwidth_Bps,
    )


def smp_system(base: SystemConfig, n_cpus: int = 2) -> SystemConfig:
    """Copy ``base`` with ``n_cpus`` processors per node."""
    return dataclasses.replace(base, cpus_per_node=n_cpus)
