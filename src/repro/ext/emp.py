"""EMP-like system: zero-copy OS-bypass NIC-driven Gigabit Ethernet.

The paper's related work (§5, ref [10]) notes COMB was used by Shivam,
Wyckoff & Panda to assess **EMP** — a message-passing system running
entirely on programmable Alteon NICs over Gigabit Ethernet: zero-copy,
OS-bypass *and* NIC-driven protocol processing, i.e. full application
offload without host interrupts.

This preset models that class of system so COMB can be pointed at it:

* Gigabit Ethernet wire (125 MB/s signalling, 1500-byte frames — many
  more packets per message than Myrinet's 4 KB pages);
* NIC-resident protocol engine: matching, reassembly and retransmission
  on the NIC (no kernel, no interrupts), but with a per-frame NIC
  processing cost that is the system's real bottleneck;
* cheap user-level posts (descriptor writes, like GM) with completion
  flags raised by the NIC (offloaded, like Portals).

Mechanically it reuses :class:`OffloadNicDevice` (NIC-driven Portals
semantics) over an Ethernet-parameterized machine.
"""

from __future__ import annotations

import dataclasses

from ..config import (
    MachineConfig,
    NicConfig,
    PortalsParams,
    SystemConfig,
    portals_system,
)
from ..mpi.world import register_device
from ..sim.units import mbps, usec
from .whatif import OffloadNicDevice


class EmpDevice(OffloadNicDevice):
    """Alteon-class NIC engine: firmware processing per 1500-byte frame."""

    #: Firmware dispatch per received frame (the Alteon's MIPS cores were
    #: the published EMP bottleneck at small frames).
    NIC_RX_LATENCY_S = usec(3.0)


def emp_system(**overrides) -> SystemConfig:
    """The EMP-on-Gigabit-Ethernet preset (registered as ``EMP``)."""
    base = portals_system()
    nic = NicConfig(
        mtu_bytes=1500,
        header_bytes=58,                 # Ethernet+IP-ish framing EMP used
        wire_bandwidth_Bps=mbps(125),    # 1 Gb/s
        wire_latency_s=usec(1.0),
        host_dma_bandwidth_Bps=mbps(91),  # same PCI generation
        dma_setup_s=usec(1.0),
        nic_processing_s=usec(0.7),
    )
    machine = dataclasses.replace(base.machine, nic=nic)
    params = dataclasses.replace(
        base.portals,
        isend_trap_s=usec(6.0),      # user-level descriptor write
        irecv_trap_s=usec(6.0),
        progress_poll_s=usec(0.3),
        tx_window_pkts=24,           # small frames need a deeper window
        ack_every=8,
        rndv_threshold_bytes=1 << 62,  # EMP pushes; NIC-side flow control
        rto_s=usec(3000),
    )
    system = dataclasses.replace(
        base, name="EMP", machine=machine, portals=params,
    )
    system = system.replaced(**overrides) if overrides else system
    register_device(system.name, EmpDevice)
    return system
