"""Machine and system configuration presets.

Every physical constant of the simulated platform lives here, in SI units
(seconds, bytes, bytes/second, hertz).  The presets model the paper's
testbed (§3): 500 MHz Pentium III nodes, Myrinet LANai 7.2 NICs, an 8-port
SAN/LAN switch, and two software stacks:

* :data:`GM` — Myricom GM 1.4 + MPICH/GM 1.2..4 (OS-bypass, user-level,
  no interrupts, library-polled progress, eager/rendezvous split at 16 KB);
* :data:`PORTALS` — kernel-based Portals 3.0 + MPICH/Portals
  (interrupt-driven, kernel buffering and copies, application offload).

Absolute values are calibrated so the simulated COMB plateaus land near the
paper's (GM ≈ 85–90 MB/s, Portals ≈ 50–55 MB/s, knees near 10^5–10^6 loop
iterations); see EXPERIMENTS.md for the calibration record.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .sim.units import kib, mbps, mhz, usec


class ProgressModel(Enum):
    """How outstanding MPI communication makes progress.

    ``LIBRARY_POLLED``
        Protocol state advances only inside MPI library calls (MPICH/GM and
        most OS-bypass stacks of the era).  Violates the MPI Progress Rule;
        detected by COMB's PWW method.
    ``OFFLOADED``
        The kernel or NIC advances the protocol independently of the
        application (Portals 3.0 semantics) — *application offload*.
    """

    LIBRARY_POLLED = "library_polled"
    OFFLOADED = "offloaded"


@dataclass(frozen=True)
class CpuConfig:
    """Host processor model (500 MHz Pentium III by default)."""

    #: Core clock frequency.
    freq_hz: float = mhz(500)
    #: Cost of one iteration of COMB's empty calibration loop, in cycles.
    #: (An unoptimized ``for(j...) /* nothing */`` loop on a P6 core.)
    cycles_per_work_iter: float = 2.0
    #: Round-robin quantum when several user processes share the CPU
    #: (Linux 2.2 default timeslice ballpark).
    timeslice_s: float = 10e-3

    @property
    def work_iter_s(self) -> float:
        """Seconds of CPU time per calibration-loop iteration."""
        return self.cycles_per_work_iter / self.freq_hz


@dataclass(frozen=True)
class NicConfig:
    """Myrinet LANai 7.2 NIC + PCI host interface model."""

    #: Maximum transfer unit used to packetize messages (GM's 4 KB pages).
    mtu_bytes: int = 4096
    #: Per-packet header/trailer on the wire.
    header_bytes: int = 16
    #: Link signalling rate (Myrinet 1.28 Gb/s per direction).
    wire_bandwidth_Bps: float = mbps(160)
    #: Wire propagation + NIC forwarding latency per hop.
    wire_latency_s: float = usec(0.5)
    #: Host I/O bus (32-bit/33 MHz PCI) sustained DMA rate.  Shared between
    #: transmit and receive DMA on a node; this, not the wire, bounds the
    #: aggregate MPI bandwidth of the era's Myrinet systems.
    host_dma_bandwidth_Bps: float = mbps(91)
    #: Fixed DMA descriptor setup per packet.
    dma_setup_s: float = usec(1.0)
    #: LANai processing per packet (MCP dispatch).
    nic_processing_s: float = usec(0.7)


@dataclass(frozen=True)
class SwitchConfig:
    """Myrinet 8-port SAN/LAN switch model."""

    ports: int = 8
    #: Cut-through forwarding latency per packet.
    latency_s: float = usec(0.3)


@dataclass(frozen=True)
class InterruptConfig:
    """Interrupt delivery costs (Linux 2.2 on a PIII)."""

    #: Trap entry: pipeline flush, vector dispatch, register save.
    entry_s: float = usec(2.0)
    #: Return from interrupt + cache/TLB pollution charged to the app.
    exit_s: float = usec(2.0)
    #: If > 0, interrupts raised within this window of a running handler
    #: are coalesced (single entry/exit).  0 disables coalescing.
    coalesce_window_s: float = 0.0


@dataclass(frozen=True)
class GmParams:
    """MPICH/GM protocol constants (§4.2 of the paper).

    GM is OS-bypass: the NIC moves data with no interrupts; all protocol
    progress happens inside MPI library calls (``ProgressModel.LIBRARY_POLLED``).
    """

    #: Eager/rendezvous switch point ("messages less than about 16 KB").
    eager_threshold_bytes: int = kib(16)
    #: Host CPU cost of a non-blocking *eager* send ("about 45 microseconds
    #: per message") — includes the copy into a registered send buffer.
    eager_isend_s: float = usec(45.0)
    #: Host CPU cost of a non-blocking *rendezvous* send ("about 5
    #: microseconds"): just builds an RTS descriptor.
    rndv_isend_s: float = usec(5.0)
    #: Host CPU cost of posting a non-blocking receive.
    irecv_s: float = usec(3.0)
    #: One pass of the library progress loop (poll NIC completion queue).
    progress_poll_s: float = usec(0.4)
    #: Library handling per completed incoming message (match + bookkeeping).
    match_s: float = usec(1.5)
    #: Library cost to emit a control packet (CTS) during progress.
    ctrl_send_s: float = usec(2.0)
    #: Copy rate from the eager bounce buffer to the user buffer (cached,
    #: user-space memcpy).
    eager_copy_bandwidth_Bps: float = mbps(220)
    #: Receiver-side eager bounce buffers per peer (MPICH/GM's token flow
    #: control): at most this many eager messages may be in flight or
    #: sitting unconsumed; further eager sends queue in the library until
    #: tokens return.
    eager_tokens: int = 16
    #: Tokens returned per control packet (batched piggyback).
    eager_token_batch: int = 4


@dataclass(frozen=True)
class PortalsParams:
    """Kernel-based Portals 3.0 constants (§3: interrupts + kernel copies).

    All data motion is driven by the kernel (``ProgressModel.OFFLOADED``):
    posting traps into the kernel; every arriving packet interrupts the host;
    the handler runs reliability/flow control and copies payloads from
    kernel buffers into user space.
    """

    #: Trap + kernel descriptor setup for ``MPI_Isend`` (the paper's Fig 10
    #: shows Portals post times far above GM's).
    isend_trap_s: float = usec(55.0)
    #: Trap + kernel match-list insert for ``MPI_Irecv``.
    irecv_trap_s: float = usec(40.0)
    #: Cheap user-space completion-flag check (no trap needed).
    progress_poll_s: float = usec(0.3)
    #: Kernel handler work per received packet, *excluding* the copy:
    #: driver + reliability/flow-control module + Portals processing.
    rx_handler_s: float = usec(26.0)
    #: Kernel→user copy rate (uncached kernel buffers on a PIII).
    rx_copy_bandwidth_Bps: float = mbps(95)
    #: Kernel work per transmitted packet (driver + reliability window).
    tx_kernel_s: float = usec(24.0)
    #: Kernel handling of an arriving acknowledgment packet (interrupt body).
    ack_handler_s: float = usec(8.0)
    #: Data packets acknowledged per ACK (go-back-N window cadence).
    ack_every: int = 2
    #: Portals matching cost on the first packet of a message.
    match_s: float = usec(4.0)
    #: Kernel handler body for control packets (RTS headers, GET requests).
    ctrl_handler_s: float = usec(10.0)
    #: Messages at least this large use the kernel-driven get protocol:
    #: the sender publishes a header (RTS); the *receiver's kernel* pulls
    #: the data once a matching receive exists.  Unexpected long messages
    #: therefore buffer only a header — no kernel-to-user double copy —
    #: while remaining fully application-offloaded.
    rndv_threshold_bytes: int = kib(16)
    #: Go-back-N window: unacknowledged data packets allowed per peer.
    #: Small windows leave ack-round-trip gaps in the receiver's interrupt
    #: stream — the slivers of CPU the application sees at full message
    #: rate (the paper's ~0.1 availability plateau, Figs 4/15).
    tx_window_pkts: int = 3
    #: Retransmission timeout for unacknowledged packets.
    rto_s: float = usec(2000)
    #: Duplicate acks that trigger a fast retransmission of the window.
    dup_ack_threshold: int = 2


@dataclass(frozen=True)
class TcpParams:
    """A simple sockets/TCP-like stack used by the netperf baseline.

    Interrupt-driven like Portals (same field meanings), with heavier
    syscall and per-packet costs.  The API *blocks and yields the CPU*
    while waiting (select semantics) — the behaviour netperf assumes; the
    blocking choice is made at the MPI layer.
    """

    isend_trap_s: float = usec(30.0)
    irecv_trap_s: float = usec(20.0)
    progress_poll_s: float = usec(0.3)
    rx_handler_s: float = usec(45.0)
    rx_copy_bandwidth_Bps: float = mbps(95)
    tx_kernel_s: float = usec(30.0)
    ack_every: int = 2
    ack_handler_s: float = usec(8.0)
    match_s: float = usec(2.0)
    ctrl_handler_s: float = usec(12.0)
    #: TCP streams have no rendezvous: always push (threshold unreachable).
    rndv_threshold_bytes: int = 1 << 62
    tx_window_pkts: int = 8
    rto_s: float = usec(4000)
    dup_ack_threshold: int = 2


class TransportKind(Enum):
    """Which transport stack a system preset uses."""

    GM = "gm"
    PORTALS = "portals"
    TCP = "tcp"


@dataclass(frozen=True)
class FaultConfig:
    """Fault injection for the wire (exercises the reliability layer).

    Loss applies to DATA packets only: the model assumes control packets
    (headers, GETs, acks) ride the kernel module's tiny protected channel.
    """

    #: Independent drop probability per DATA packet on each switch link.
    data_loss_rate: float = 0.0


@dataclass(frozen=True)
class MachineConfig:
    """Everything below the transport: CPU, NIC, switch, interrupts."""

    cpu: CpuConfig = field(default_factory=CpuConfig)
    nic: NicConfig = field(default_factory=NicConfig)
    switch: SwitchConfig = field(default_factory=SwitchConfig)
    irq: InterruptConfig = field(default_factory=InterruptConfig)
    fault: FaultConfig = field(default_factory=FaultConfig)


@dataclass(frozen=True)
class SystemConfig:
    """A complete simulated platform: machine + transport + MPI behaviour."""

    name: str
    machine: MachineConfig = field(default_factory=MachineConfig)
    transport: TransportKind = TransportKind.GM
    progress: ProgressModel = ProgressModel.LIBRARY_POLLED
    gm: GmParams = field(default_factory=GmParams)
    portals: PortalsParams = field(default_factory=PortalsParams)
    tcp: TcpParams = field(default_factory=TcpParams)
    #: Root seed for all stochastic sub-models (jitter, loss injection).
    seed: int = 0
    #: Number of CPUs per node (1 in the paper; >1 exercises §7 future work).
    cpus_per_node: int = 1

    def replaced(self, **changes) -> "SystemConfig":
        """Return a copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **changes)


def gm_system(**overrides) -> SystemConfig:
    """The GM 1.4 + MPICH/GM preset (OS-bypass, no application offload)."""
    cfg = SystemConfig(
        name="GM",
        transport=TransportKind.GM,
        progress=ProgressModel.LIBRARY_POLLED,
    )
    return cfg.replaced(**overrides) if overrides else cfg


def portals_system(**overrides) -> SystemConfig:
    """The kernel Portals 3.0 + MPICH preset (application offload)."""
    cfg = SystemConfig(
        name="Portals",
        transport=TransportKind.PORTALS,
        progress=ProgressModel.OFFLOADED,
    )
    return cfg.replaced(**overrides) if overrides else cfg


def tcp_system(**overrides) -> SystemConfig:
    """A sockets/TCP-style preset used by the netperf baseline."""
    cfg = SystemConfig(
        name="TCP",
        transport=TransportKind.TCP,
        progress=ProgressModel.OFFLOADED,
    )
    return cfg.replaced(**overrides) if overrides else cfg


#: Ready-made presets, keyed by their paper names.
PRESETS = {
    "GM": gm_system,
    "Portals": portals_system,
    "TCP": tcp_system,
}


def get_system(name: str, **overrides) -> SystemConfig:
    """Look up a preset by (case-insensitive) name."""
    for key, factory in PRESETS.items():
        if key.lower() == name.lower():
            return factory(**overrides)
    raise KeyError(f"unknown system preset {name!r}; have {sorted(PRESETS)}")
