"""Optional compiled build of the simulation core.

The simulator's per-event constant cost lives in two types: the
``Event`` state machine and the ``Engine`` heap/dispatch loop.  Both have
a hand-written C implementation (``src/repro/_simcore.c``) built into the
extension module ``repro._simcore`` by ``tools/build_compiled.py`` — no
third-party toolchain, just a C compiler and the Python headers.  When a
build is present and the user opts in, ``repro.sim.events`` and
``repro.sim.engine`` rebind ``Event``/``Engine`` to the C types behind
the identical API; every subclass (``Timeout``, ``Process``, resource
``Request``, …) and all model code stay pure Python.

This module is the *gate and the report*, not the build:

* :func:`requested` — did the user opt in (``COMB_COMPILED=1``)?
* :func:`active` — is the C kernel actually driving this process?
* :func:`status` — both, plus a human-readable detail line; recorded in
  every ``BENCH_<n>.json`` so performance records always say which core
  produced them.

Opting in without a compiled build present is not an error: the pure
Python classes load as always and :func:`active` reports ``False``.
That transparency is what lets CI run the same suite against both cores
and assert bit-identical goldens.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Union

#: Environment flag opting into the compiled core (truthy values: 1/true/
#: yes/on, case-insensitive).  With the flag unset or falsy the compiled
#: kernel is ignored even if built.
ENV_FLAG = "COMB_COMPILED"

#: C sources of the accelerator extension, relative to the directory
#: containing the ``repro`` package.
C_SOURCES = ("repro/_simcore.c",)


def requested() -> bool:
    """``True`` when the user opted into the compiled core via the
    environment (``COMB_COMPILED=1``)."""
    value = os.environ.get(ENV_FLAG, "")
    return value.strip().lower() in {"1", "true", "yes", "on"}


def active() -> bool:
    """``True`` when the C kernel (``repro._simcore``) is driving this
    process — i.e. the swap in ``repro.sim.events`` actually happened."""
    import importlib

    try:
        events = importlib.import_module("repro.sim.events")
    except ImportError:  # pragma: no cover - core always importable
        return False
    return getattr(events, "_BACKEND", "python") == "c"


def status() -> Dict[str, Union[bool, str]]:
    """Gate state for records and diagnostics.

    Returns ``{"requested": bool, "active": bool, "detail": str}`` where
    ``detail`` is a one-line human-readable explanation.
    """
    req = requested()
    act = active()
    if act:
        detail = "C simulation kernel (repro._simcore) loaded"
    elif req:
        detail = (
            f"{ENV_FLAG} set but no compiled build found; "
            "running the pure Python core (build one with "
            "tools/build_compiled.py)"
        )
    else:
        detail = "pure Python simulation core"
    return {"requested": req, "active": act, "detail": detail}


def build_targets(src_root: Union[str, Path]) -> List[Path]:
    """The C source files a compiled build covers, in deterministic order.

    ``src_root`` is the directory containing the ``repro`` package.
    Shared with ``tools/build_compiled.py`` so the build manifest has a
    single definition.
    """
    root = Path(src_root)
    return [root / rel for rel in C_SOURCES]
