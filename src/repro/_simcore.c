/* _simcore: C accelerator for the DES kernel (Event + Engine).
 *
 * Drop-in replacements for repro.sim.events.Event and
 * repro.sim.engine.Engine, swapped in by those modules when
 * COMB_COMPILED=1 (see repro.compiled).  The contract is *bit identity*:
 * the heap is ordered by exactly the same (when, priority, seq) key the
 * pure-Python tuples produce, float arithmetic is limited to the same
 * `now + delay` additions CPython performs (IEEE-754 double either way),
 * and every observable side effect (callback order, trace hooks, error
 * messages, events_processed accounting) mirrors the Python source
 * line for line.  All model code stays in Python; only the per-event
 * constant cost (heap tuples, rich comparisons, attribute juggling)
 * moves to C.
 *
 * The Python modules stay the reference implementation — when editing
 * engine.py/events.py, port the change here (test_sim_step_parity and
 * the golden matrix enforce agreement).
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h> /* PyMemberDef T_* flags (pre-3.12 spelling) */
#include <math.h>

/* ------------------------------------------------------------------ glue */
/* Python-side classes and singletons, handed over by _install() from
 * repro.sim.events / repro.sim.engine after they finish defining them. */
static PyObject *g_SimulationError;
static PyObject *g_EmptySchedule;
static PyObject *g_Timeout;
static PyObject *g_Process;
static PyObject *g_AllOf;
static PyObject *g_AnyOf;
static PyObject *g_PENDING;

static PyObject *s_record_kernel; /* interned method names */
static PyObject *s_record;
static PyObject *s_engine_src;    /* "engine" */
static PyObject *s_schedule_past; /* "schedule_past" */

static PyTypeObject SimEventType;
static PyTypeObject SimEngineType;

/* Minimal vectorcall argument binder for METH_FASTCALL|METH_KEYWORDS
 * methods: binds positionals then keywords against `names` (NULL-padded
 * borrowed refs into `out`), enforcing `required` leading arguments.
 * The hot call sites pass positionally and never touch the keyword
 * loop. */
static int
bind_fast(PyObject *const *args, Py_ssize_t nargs, PyObject *kwnames,
          const char *const *names, Py_ssize_t nnames, Py_ssize_t required,
          const char *fname, PyObject **out)
{
    if (nargs > nnames) {
        PyErr_Format(PyExc_TypeError,
                     "%s() takes at most %zd arguments (%zd given)",
                     fname, nnames, nargs);
        return -1;
    }
    for (Py_ssize_t i = 0; i < nnames; i++)
        out[i] = i < nargs ? args[i] : NULL;
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t k = 0; k < nkw; k++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, k);
            Py_ssize_t i;
            for (i = 0; i < nnames; i++) {
                if (PyUnicode_CompareWithASCIIString(name, names[i]) == 0)
                    break;
            }
            if (i == nnames) {
                PyErr_Format(PyExc_TypeError,
                             "%s() got an unexpected keyword argument %R",
                             fname, name);
                return -1;
            }
            if (out[i] != NULL) {
                PyErr_Format(PyExc_TypeError,
                             "%s() got multiple values for argument '%s'",
                             fname, names[i]);
                return -1;
            }
            out[i] = args[nargs + k];
        }
    }
    for (Py_ssize_t i = 0; i < required; i++) {
        if (out[i] == NULL) {
            PyErr_Format(PyExc_TypeError,
                         "%s() missing required argument '%s'",
                         fname, names[i]);
            return -1;
        }
    }
    return 0;
}

/* ----------------------------------------------------------------- Event */

typedef struct {
    PyObject_HEAD
    PyObject *engine;    /* owning Engine (any object accepted) */
    PyObject *callbacks; /* list, or None once processed */
    PyObject *value;     /* NULL = pending (Python: _PENDING sentinel) */
    char ok;             /* -1 = None, 0 = False, 1 = True */
    char processed;
    char defused;
} SimEvent;

typedef struct {
    double when;
    int prio;
    unsigned long long seq;
    PyObject *ev; /* strong reference */
} HeapEntry;

typedef struct {
    PyObject_HEAD
    double now;
    unsigned long long seq;
    Py_ssize_t events_processed;
    PyObject *trace;          /* None or a tracer */
    PyObject *active_process; /* None or the Process being resumed */
    HeapEntry *heap;
    Py_ssize_t heap_len;
    Py_ssize_t heap_cap;
} SimEngine;

static int
SimEvent_init(SimEvent *self, PyObject *args, PyObject *kwds)
{
    PyObject *engine;
    static char *kwlist[] = {"engine", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O", kwlist, &engine))
        return -1;
    PyObject *cbs = PyList_New(0);
    if (cbs == NULL)
        return -1;
    Py_INCREF(engine);
    Py_XSETREF(self->engine, engine);
    Py_XSETREF(self->callbacks, cbs);
    Py_CLEAR(self->value);
    self->ok = -1;
    self->processed = 0;
    self->defused = 0;
    return 0;
}

static int
SimEvent_traverse(SimEvent *self, visitproc visit, void *arg)
{
    Py_VISIT(self->engine);
    Py_VISIT(self->callbacks);
    Py_VISIT(self->value);
    return 0;
}

static int
SimEvent_clear(SimEvent *self)
{
    Py_CLEAR(self->engine);
    Py_CLEAR(self->callbacks);
    Py_CLEAR(self->value);
    return 0;
}

static void
SimEvent_dealloc(SimEvent *self)
{
    PyObject_GC_UnTrack(self);
    SimEvent_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* Core enqueue: push (when, prio, seq, ev) onto the engine's heap. */
static int
engine_push(SimEngine *e, PyObject *ev, int prio, double when)
{
    if (e->heap_len == e->heap_cap) {
        Py_ssize_t cap = e->heap_cap ? e->heap_cap * 2 : 64;
        HeapEntry *heap = PyMem_Realloc(e->heap, cap * sizeof(HeapEntry));
        if (heap == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        e->heap = heap;
        e->heap_cap = cap;
    }
    unsigned long long seq = e->seq++;
    /* Sift up from the end — identical order to heapq on (when, prio,
     * seq, event) tuples: the event itself is never compared because
     * seq is unique. */
    Py_ssize_t pos = e->heap_len++;
    HeapEntry *heap = e->heap;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        HeapEntry *p = &heap[parent];
        int lt = (when < p->when) ||
                 (when == p->when &&
                  (prio < p->prio || (prio == p->prio && seq < p->seq)));
        if (!lt)
            break;
        heap[pos] = *p;
        pos = parent;
    }
    Py_INCREF(ev);
    heap[pos].when = when;
    heap[pos].prio = prio;
    heap[pos].seq = seq;
    heap[pos].ev = ev;
    return 0;
}

static inline int
entry_lt(const HeapEntry *a, const HeapEntry *b)
{
    if (a->when != b->when)
        return a->when < b->when;
    if (a->prio != b->prio)
        return a->prio < b->prio;
    return a->seq < b->seq;
}

/* Pop the root into *out (ownership of out->ev transfers to caller). */
static void
engine_pop(SimEngine *e, HeapEntry *out)
{
    HeapEntry *heap = e->heap;
    *out = heap[0];
    Py_ssize_t n = --e->heap_len;
    if (n == 0)
        return;
    HeapEntry last = heap[n];
    Py_ssize_t pos = 0, child;
    while ((child = 2 * pos + 1) < n) {
        if (child + 1 < n && entry_lt(&heap[child + 1], &heap[child]))
            child += 1;
        if (!entry_lt(&heap[child], &last))
            break;
        heap[pos] = heap[child];
        pos = child;
    }
    heap[pos] = last;
}

/* Enqueue helper used from Event methods: direct C call when the engine
 * is a SimEngine, generic method call otherwise. */
static int
event_enqueue(SimEvent *self, int priority)
{
    PyObject *engine = self->engine;
    if (engine != NULL && Py_TYPE(engine) == &SimEngineType) {
        SimEngine *e = (SimEngine *)engine;
        return engine_push(e, (PyObject *)self, priority, e->now);
    }
    PyObject *res = PyObject_CallMethod(engine, "_enqueue", "Oi",
                                        (PyObject *)self, priority);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

static PyObject *
SimEvent_succeed(SimEvent *self, PyObject *const *args, Py_ssize_t nargs,
                 PyObject *kwnames)
{
    static const char *const names[] = {"value", "priority"};
    PyObject *bound[2];
    if (bind_fast(args, nargs, kwnames, names, 2, 0, "succeed", bound) < 0)
        return NULL;
    PyObject *value = bound[0] ? bound[0] : Py_None;
    int priority = 1;
    if (bound[1] != NULL) {
        priority = (int)PyLong_AsLong(bound[1]);
        if (priority == -1 && PyErr_Occurred())
            return NULL;
    }
    if (self->value != NULL) {
        PyErr_Format(g_SimulationError, "%R has already been triggered",
                     (PyObject *)self);
        return NULL;
    }
    self->ok = 1;
    Py_INCREF(value);
    self->value = value;
    if (event_enqueue(self, priority) < 0)
        return NULL;
    Py_INCREF(self);
    return (PyObject *)self;
}

static PyObject *
SimEvent_fail(SimEvent *self, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    static const char *const names[] = {"exception", "priority"};
    PyObject *bound[2];
    if (bind_fast(args, nargs, kwnames, names, 2, 1, "fail", bound) < 0)
        return NULL;
    PyObject *exception = bound[0];
    int priority = 1;
    if (bound[1] != NULL) {
        priority = (int)PyLong_AsLong(bound[1]);
        if (priority == -1 && PyErr_Occurred())
            return NULL;
    }
    if (self->value != NULL) {
        PyErr_Format(g_SimulationError, "%R has already been triggered",
                     (PyObject *)self);
        return NULL;
    }
    if (!PyObject_IsInstance(exception, PyExc_BaseException)) {
        PyErr_Format(PyExc_TypeError, "fail() needs an exception, got %R",
                     exception);
        return NULL;
    }
    self->ok = 0;
    Py_INCREF(exception);
    self->value = exception;
    if (event_enqueue(self, priority) < 0)
        return NULL;
    Py_INCREF(self);
    return (PyObject *)self;
}

static PyObject *
SimEvent_trigger(SimEvent *self, PyObject *other)
{
    if (Py_TYPE(other) != &SimEventType &&
        !PyObject_TypeCheck(other, &SimEventType)) {
        PyErr_SetString(PyExc_TypeError, "trigger() needs an Event");
        return NULL;
    }
    SimEvent *ev = (SimEvent *)other;
    PyObject *res;
    if (ev->ok == 1)
        res = PyObject_CallMethod((PyObject *)self, "succeed", "O",
                                  ev->value ? ev->value : Py_None);
    else
        res = PyObject_CallMethod((PyObject *)self, "fail", "O",
                                  ev->value ? ev->value : Py_None);
    if (res == NULL)
        return NULL;
    Py_DECREF(res);
    Py_RETURN_NONE;
}

static PyObject *
SimEvent_defuse(SimEvent *self, PyObject *Py_UNUSED(ignored))
{
    self->defused = 1;
    Py_RETURN_NONE;
}

static PyObject *
SimEvent_and(PyObject *self, PyObject *other)
{
    if (!PyObject_TypeCheck(self, &SimEventType) ||
        !PyObject_TypeCheck(other, &SimEventType))
        Py_RETURN_NOTIMPLEMENTED;
    PyObject *pair = PyList_New(2);
    if (pair == NULL)
        return NULL;
    Py_INCREF(self);
    Py_INCREF(other);
    PyList_SET_ITEM(pair, 0, self);
    PyList_SET_ITEM(pair, 1, other);
    PyObject *res = PyObject_CallFunctionObjArgs(
        g_AllOf, ((SimEvent *)self)->engine, pair, NULL);
    Py_DECREF(pair);
    return res;
}

static PyObject *
SimEvent_or(PyObject *self, PyObject *other)
{
    if (!PyObject_TypeCheck(self, &SimEventType) ||
        !PyObject_TypeCheck(other, &SimEventType))
        Py_RETURN_NOTIMPLEMENTED;
    PyObject *pair = PyList_New(2);
    if (pair == NULL)
        return NULL;
    Py_INCREF(self);
    Py_INCREF(other);
    PyList_SET_ITEM(pair, 0, self);
    PyList_SET_ITEM(pair, 1, other);
    PyObject *res = PyObject_CallFunctionObjArgs(
        g_AnyOf, ((SimEvent *)self)->engine, pair, NULL);
    Py_DECREF(pair);
    return res;
}

static PyObject *
SimEvent_repr(SimEvent *self)
{
    const char *state = self->processed ? "processed"
                        : (self->value != NULL ? "triggered" : "pending");
    return PyUnicode_FromFormat("<%s %s at %p>",
                                Py_TYPE(self)->tp_name, state, self);
}

/* -- getsets: raw underscore attributes mirror the Python slots -------- */

static PyObject *
SimEvent_get_value_raw(SimEvent *self, void *closure)
{
    PyObject *v = self->value ? self->value : g_PENDING;
    Py_INCREF(v);
    return v;
}

static int
SimEvent_set_value_raw(SimEvent *self, PyObject *v, void *closure)
{
    if (v == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete _value");
        return -1;
    }
    Py_INCREF(v);
    Py_XSETREF(self->value, v == g_PENDING ? (Py_DECREF(v), NULL) : v);
    return 0;
}

static PyObject *
SimEvent_get_ok_raw(SimEvent *self, void *closure)
{
    if (self->ok < 0)
        Py_RETURN_NONE;
    return PyBool_FromLong(self->ok);
}

static int
SimEvent_set_ok_raw(SimEvent *self, PyObject *v, void *closure)
{
    if (v == NULL || v == Py_None) {
        self->ok = -1;
        return 0;
    }
    int truth = PyObject_IsTrue(v);
    if (truth < 0)
        return -1;
    self->ok = (char)truth;
    return 0;
}

static PyObject *
SimEvent_get_processed_raw(SimEvent *self, void *closure)
{
    return PyBool_FromLong(self->processed);
}

static int
SimEvent_set_processed_raw(SimEvent *self, PyObject *v, void *closure)
{
    int truth = v == NULL ? 0 : PyObject_IsTrue(v);
    if (truth < 0)
        return -1;
    self->processed = (char)truth;
    return 0;
}

static PyObject *
SimEvent_get_defused_raw(SimEvent *self, void *closure)
{
    return PyBool_FromLong(self->defused);
}

static int
SimEvent_set_defused_raw(SimEvent *self, PyObject *v, void *closure)
{
    int truth = v == NULL ? 0 : PyObject_IsTrue(v);
    if (truth < 0)
        return -1;
    self->defused = (char)truth;
    return 0;
}

/* -- public properties ------------------------------------------------- */

static PyObject *
SimEvent_get_triggered(SimEvent *self, void *closure)
{
    return PyBool_FromLong(self->value != NULL);
}

static PyObject *
SimEvent_get_processed(SimEvent *self, void *closure)
{
    return PyBool_FromLong(self->processed);
}

static PyObject *
SimEvent_get_ok(SimEvent *self, void *closure)
{
    if (self->ok < 0)
        Py_RETURN_NONE;
    return PyBool_FromLong(self->ok);
}

static PyObject *
SimEvent_get_value(SimEvent *self, void *closure)
{
    if (self->value == NULL) {
        PyErr_Format(g_SimulationError, "value of %R is not yet available",
                     (PyObject *)self);
        return NULL;
    }
    Py_INCREF(self->value);
    return self->value;
}

static PyGetSetDef SimEvent_getset[] = {
    {"_value", (getter)SimEvent_get_value_raw,
     (setter)SimEvent_set_value_raw, NULL, NULL},
    {"_ok", (getter)SimEvent_get_ok_raw, (setter)SimEvent_set_ok_raw,
     NULL, NULL},
    {"_processed", (getter)SimEvent_get_processed_raw,
     (setter)SimEvent_set_processed_raw, NULL, NULL},
    {"_defused", (getter)SimEvent_get_defused_raw,
     (setter)SimEvent_set_defused_raw, NULL, NULL},
    {"triggered", (getter)SimEvent_get_triggered, NULL,
     PyDoc_STR("True once succeed() or fail() has been called."), NULL},
    {"processed", (getter)SimEvent_get_processed, NULL,
     PyDoc_STR("True once callbacks have run."), NULL},
    {"ok", (getter)SimEvent_get_ok, NULL,
     PyDoc_STR("True/False after success/failure, None while pending."),
     NULL},
    {"value", (getter)SimEvent_get_value, NULL,
     PyDoc_STR("Payload (or exception); an error while pending."), NULL},
    {NULL},
};

static PyMemberDef SimEvent_members[] = {
    {"engine", T_OBJECT, offsetof(SimEvent, engine), READONLY, NULL},
    {"callbacks", T_OBJECT, offsetof(SimEvent, callbacks), 0, NULL},
    {NULL},
};

static PyMethodDef SimEvent_methods[] = {
    {"succeed", (PyCFunction)(void (*)(void))SimEvent_succeed,
     METH_FASTCALL | METH_KEYWORDS,
     PyDoc_STR("Mark the event successful and enqueue it now.")},
    {"fail", (PyCFunction)(void (*)(void))SimEvent_fail,
     METH_FASTCALL | METH_KEYWORDS,
     PyDoc_STR("Mark the event failed and enqueue it now.")},
    {"trigger", (PyCFunction)SimEvent_trigger, METH_O,
     PyDoc_STR("Trigger this event with the state of another event.")},
    {"defuse", (PyCFunction)SimEvent_defuse, METH_NOARGS,
     PyDoc_STR("Prevent an unhandled failure from crashing the run.")},
    {NULL},
};

static PyNumberMethods SimEvent_as_number = {
    .nb_and = SimEvent_and,
    .nb_or = SimEvent_or,
};

static PyTypeObject SimEventType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "Event",
    .tp_basicsize = sizeof(SimEvent),
    .tp_dealloc = (destructor)SimEvent_dealloc,
    .tp_repr = (reprfunc)SimEvent_repr,
    .tp_as_number = &SimEvent_as_number,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE |
                Py_TPFLAGS_HAVE_GC,
    .tp_doc = PyDoc_STR("A one-shot occurrence on the simulation timeline "
                        "(C-accelerated)."),
    .tp_traverse = (traverseproc)SimEvent_traverse,
    .tp_clear = (inquiry)SimEvent_clear,
    .tp_methods = SimEvent_methods,
    .tp_members = SimEvent_members,
    .tp_getset = SimEvent_getset,
    .tp_init = (initproc)SimEvent_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------ Call0 (wrapper) */
/* schedule_callback's `lambda _e: fn()` as a tiny callable object. */

typedef struct {
    PyObject_HEAD
    PyObject *fn;
} Call0;

static void
Call0_dealloc(Call0 *self)
{
    PyObject_GC_UnTrack(self);
    Py_CLEAR(self->fn);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
Call0_traverse(Call0 *self, visitproc visit, void *arg)
{
    Py_VISIT(self->fn);
    return 0;
}

static int
Call0_clear(Call0 *self)
{
    Py_CLEAR(self->fn);
    return 0;
}

static PyObject *
Call0_call(Call0 *self, PyObject *args, PyObject *kwds)
{
    return PyObject_CallNoArgs(self->fn);
}

static PyTypeObject Call0Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "_simcore._call0",
    .tp_basicsize = sizeof(Call0),
    .tp_dealloc = (destructor)Call0_dealloc,
    .tp_call = (ternaryfunc)Call0_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)Call0_traverse,
    .tp_clear = (inquiry)Call0_clear,
};

/* ---------------------------------------------------------------- Engine */

static int
SimEngine_init(SimEngine *self, PyObject *args, PyObject *kwds)
{
    PyObject *start_time = NULL;
    PyObject *trace = Py_None;
    static char *kwlist[] = {"start_time", "trace", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OO", kwlist,
                                     &start_time, &trace))
        return -1;
    double now = 0.0;
    if (start_time != NULL) {
        now = PyFloat_AsDouble(start_time);
        if (now == -1.0 && PyErr_Occurred())
            return -1;
    }
    self->now = now;
    self->seq = 0;
    self->events_processed = 0;
    Py_INCREF(trace);
    Py_XSETREF(self->trace, trace);
    Py_INCREF(Py_None);
    Py_XSETREF(self->active_process, Py_None);
    /* Re-init (unlikely): drop any queued events. */
    for (Py_ssize_t i = 0; i < self->heap_len; i++)
        Py_CLEAR(self->heap[i].ev);
    self->heap_len = 0;
    return 0;
}

static int
SimEngine_traverse(SimEngine *self, visitproc visit, void *arg)
{
    Py_VISIT(self->trace);
    Py_VISIT(self->active_process);
    for (Py_ssize_t i = 0; i < self->heap_len; i++)
        Py_VISIT(self->heap[i].ev);
    return 0;
}

static int
SimEngine_clear(SimEngine *self)
{
    Py_CLEAR(self->trace);
    Py_CLEAR(self->active_process);
    for (Py_ssize_t i = 0; i < self->heap_len; i++)
        Py_CLEAR(self->heap[i].ev);
    self->heap_len = 0;
    return 0;
}

static void
SimEngine_dealloc(SimEngine *self)
{
    PyObject_GC_UnTrack(self);
    SimEngine_clear(self);
    PyMem_Free(self->heap);
    self->heap = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
SimEngine_event(SimEngine *self, PyObject *Py_UNUSED(ignored))
{
    SimEvent *ev = (SimEvent *)SimEventType.tp_alloc(&SimEventType, 0);
    if (ev == NULL)
        return NULL;
    ev->callbacks = PyList_New(0);
    if (ev->callbacks == NULL) {
        Py_DECREF(ev);
        return NULL;
    }
    Py_INCREF(self);
    ev->engine = (PyObject *)self;
    ev->value = NULL;
    ev->ok = -1;
    ev->processed = 0;
    ev->defused = 0;
    return (PyObject *)ev;
}

static PyObject *
SimEngine_timeout(SimEngine *self, PyObject *const *args, Py_ssize_t nargs,
                  PyObject *kwnames)
{
    static const char *const names[] = {"delay_s", "value"};
    PyObject *bound[2];
    if (bind_fast(args, nargs, kwnames, names, 2, 1, "timeout", bound) < 0)
        return NULL;
    return PyObject_CallFunctionObjArgs(
        g_Timeout, (PyObject *)self, bound[0],
        bound[1] ? bound[1] : Py_None, NULL);
}

static PyObject *
SimEngine_spawn(SimEngine *self, PyObject *const *args, Py_ssize_t nargs,
                PyObject *kwnames)
{
    static const char *const names[] = {"generator", "name"};
    PyObject *bound[2];
    if (bind_fast(args, nargs, kwnames, names, 2, 1, "spawn", bound) < 0)
        return NULL;
    if (bound[1] == NULL)
        return PyObject_CallFunctionObjArgs(g_Process, (PyObject *)self,
                                            bound[0], NULL);
    return PyObject_CallFunctionObjArgs(g_Process, (PyObject *)self,
                                        bound[0], bound[1], NULL);
}

static PyObject *
SimEngine_all_of(SimEngine *self, PyObject *events)
{
    return PyObject_CallFunctionObjArgs(g_AllOf, (PyObject *)self, events,
                                        NULL);
}

static PyObject *
SimEngine_any_of(SimEngine *self, PyObject *events)
{
    return PyObject_CallFunctionObjArgs(g_AnyOf, (PyObject *)self, events,
                                        NULL);
}

static PyObject *
SimEngine_schedule_callback(SimEngine *self, PyObject *const *args,
                            Py_ssize_t nargs, PyObject *kwnames)
{
    /* `priority` is accepted for signature parity; unused by the Python
     * source too. */
    static const char *const names[] = {"delay_s", "fn", "priority"};
    PyObject *bound[3];
    if (bind_fast(args, nargs, kwnames, names, 3, 2, "schedule_callback",
                  bound) < 0)
        return NULL;
    PyObject *fn = bound[1];
    PyObject *timeout = PyObject_CallFunctionObjArgs(
        g_Timeout, (PyObject *)self, bound[0], NULL);
    if (timeout == NULL)
        return NULL;
    Call0 *wrap = (Call0 *)Call0Type.tp_alloc(&Call0Type, 0);
    if (wrap == NULL) {
        Py_DECREF(timeout);
        return NULL;
    }
    Py_INCREF(fn);
    wrap->fn = fn;
    PyObject *cbs = PyObject_GetAttrString(timeout, "callbacks");
    int rc = cbs == NULL ? -1 : PyList_Append(cbs, (PyObject *)wrap);
    Py_XDECREF(cbs);
    Py_DECREF(wrap);
    if (rc < 0) {
        Py_DECREF(timeout);
        return NULL;
    }
    return timeout;
}

static PyObject *
SimEngine_enqueue(SimEngine *self, PyObject *const *args, Py_ssize_t nargs,
                  PyObject *kwnames)
{
    static const char *const names[] = {"event", "priority", "delay_s"};
    PyObject *bound[3];
    if (bind_fast(args, nargs, kwnames, names, 3, 2, "_enqueue", bound) < 0)
        return NULL;
    PyObject *event = bound[0];
    int priority = (int)PyLong_AsLong(bound[1]);
    if (priority == -1 && PyErr_Occurred())
        return NULL;
    double delay_s = 0.0;
    if (bound[2] != NULL) {
        delay_s = PyFloat_AsDouble(bound[2]);
        if (delay_s == -1.0 && PyErr_Occurred())
            return NULL;
    }
    if (!PyObject_TypeCheck(event, &SimEventType)) {
        PyErr_Format(PyExc_TypeError, "_enqueue() needs an Event, got %R",
                     event);
        return NULL;
    }
    if (delay_s < 0.0 && self->trace != NULL && self->trace != Py_None) {
        /* Scheduling in the past is a causality corruption the sanitizer
         * must see at the source (mirrors engine.py). */
        PyObject *now = PyFloat_FromDouble(self->now);
        PyObject *detail = Py_BuildValue("(d)", delay_s);
        PyObject *res = NULL;
        if (now != NULL && detail != NULL)
            res = PyObject_CallMethodObjArgs(self->trace, s_record, now,
                                             s_engine_src, s_schedule_past,
                                             detail, NULL);
        Py_XDECREF(now);
        Py_XDECREF(detail);
        if (res == NULL)
            return NULL;
        Py_DECREF(res);
    }
    if (engine_push(self, event, priority, self->now + delay_s) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
SimEngine_enqueue_at(SimEngine *self, PyObject *const *args,
                     Py_ssize_t nargs, PyObject *kwnames)
{
    static const char *const names[] = {"event", "priority", "when_s"};
    PyObject *bound[3];
    if (bind_fast(args, nargs, kwnames, names, 3, 3, "_enqueue_at",
                  bound) < 0)
        return NULL;
    PyObject *event = bound[0];
    int priority = (int)PyLong_AsLong(bound[1]);
    if (priority == -1 && PyErr_Occurred())
        return NULL;
    double when_s = PyFloat_AsDouble(bound[2]);
    if (when_s == -1.0 && PyErr_Occurred())
        return NULL;
    if (!PyObject_TypeCheck(event, &SimEventType)) {
        PyErr_Format(PyExc_TypeError, "_enqueue_at() needs an Event, got %R",
                     event);
        return NULL;
    }
    if (engine_push(self, event, priority, when_s) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
SimEngine_peek(SimEngine *self, PyObject *Py_UNUSED(ignored))
{
    return PyFloat_FromDouble(self->heap_len ? self->heap[0].when
                                             : Py_HUGE_VAL);
}

static PyObject *
SimEngine_fast_forward(SimEngine *self, PyObject *arg)
{
    double until_s = PyFloat_AsDouble(arg);
    if (until_s == -1.0 && PyErr_Occurred())
        return NULL;
    if (until_s <= self->now)
        Py_RETURN_FALSE;
    /* An event *at* until_s also forbids the jump (see engine.py). */
    if (self->heap_len && self->heap[0].when <= until_s)
        Py_RETURN_FALSE;
    self->now = until_s;
    Py_RETURN_TRUE;
}

/* Dispatch one popped event: callbacks, trace hook, failure propagation.
 * Mirrors the inlined loop body in engine.py run()/step().  Returns 0 on
 * success, -1 with an exception set. */
static int
dispatch_event(SimEngine *self, SimEvent *ev, double when)
{
    PyObject *cbs = ev->callbacks;
    Py_INCREF(Py_None);
    ev->callbacks = Py_None;
    ev->processed = 1;
    if (self->trace != NULL && self->trace != Py_None) {
        PyObject *w = PyFloat_FromDouble(when);
        if (w == NULL) {
            Py_XDECREF(cbs);
            return -1;
        }
        PyObject *res = PyObject_CallMethodObjArgs(
            self->trace, s_record_kernel, w, (PyObject *)ev, NULL);
        Py_DECREF(w);
        if (res == NULL) {
            Py_XDECREF(cbs);
            return -1;
        }
        Py_DECREF(res);
    }
    if (cbs != NULL && cbs != Py_None) {
        if (PyList_CheckExact(cbs)) {
            /* Live-length iteration, like a Python for loop over a list
             * (callbacks appended during dispatch still run). */
            for (Py_ssize_t i = 0; i < PyList_GET_SIZE(cbs); i++) {
                PyObject *cb = PyList_GET_ITEM(cbs, i);
                Py_INCREF(cb);
                PyObject *res = PyObject_CallOneArg(cb, (PyObject *)ev);
                Py_DECREF(cb);
                if (res == NULL) {
                    Py_DECREF(cbs);
                    return -1;
                }
                Py_DECREF(res);
            }
        }
        else {
            PyObject *it = PyObject_GetIter(cbs);
            if (it == NULL) {
                Py_DECREF(cbs);
                return -1;
            }
            PyObject *cb;
            while ((cb = PyIter_Next(it)) != NULL) {
                PyObject *res = PyObject_CallOneArg(cb, (PyObject *)ev);
                Py_DECREF(cb);
                if (res == NULL)
                    break;
                Py_DECREF(res);
            }
            Py_DECREF(it);
            if (PyErr_Occurred()) {
                Py_DECREF(cbs);
                return -1;
            }
        }
    }
    Py_XDECREF(cbs);
    if (ev->ok != 1 && !ev->defused) {
        PyObject *exc = ev->value ? ev->value : Py_None;
        PyErr_SetObject((PyObject *)Py_TYPE(exc), exc);
        return -1;
    }
    return 0;
}

static PyObject *
SimEngine_step(SimEngine *self, PyObject *Py_UNUSED(ignored))
{
    if (self->heap_len == 0) {
        PyErr_SetString(g_EmptySchedule, "no scheduled events remain");
        return NULL;
    }
    HeapEntry entry;
    engine_pop(self, &entry);
    if (entry.when < self->now) { /* defensive, mirrors engine.py */
        Py_DECREF(entry.ev);
        PyErr_SetString(g_SimulationError, "event scheduled in the past");
        return NULL;
    }
    self->now = entry.when;
    self->events_processed += 1;
    int rc = dispatch_event(self, (SimEvent *)entry.ev, entry.when);
    Py_DECREF(entry.ev);
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
SimEngine_run(SimEngine *self, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    static const char *const names[] = {"until"};
    PyObject *bound[1];
    if (bind_fast(args, nargs, kwnames, names, 1, 0, "run", bound) < 0)
        return NULL;
    PyObject *until = bound[0] ? bound[0] : Py_None;

    SimEvent *stop_event = NULL;
    double stop_at = Py_HUGE_VAL;
    if (until != Py_None) {
        if (PyObject_TypeCheck(until, &SimEventType)) {
            stop_event = (SimEvent *)until;
        }
        else {
            stop_at = PyFloat_AsDouble(until);
            if (stop_at == -1.0 && PyErr_Occurred())
                return NULL;
            if (stop_at < self->now) {
                PyObject *s = PyFloat_FromDouble(stop_at);
                PyObject *n = PyFloat_FromDouble(self->now);
                if (s != NULL && n != NULL)
                    PyErr_Format(g_SimulationError,
                                 "run(until=%S) is in the past (now=%S)",
                                 s, n);
                Py_XDECREF(s);
                Py_XDECREF(n);
                return NULL;
            }
        }
    }

    Py_ssize_t n_done = 0;
    PyObject *result = NULL;
    if (stop_event != NULL) {
        Py_INCREF(stop_event);
        while (!stop_event->processed) {
            if (self->heap_len == 0) {
                PyErr_SetString(
                    g_SimulationError,
                    "simulation ran out of events before the awaited "
                    "event fired (deadlock?)");
                goto done;
            }
            HeapEntry entry;
            engine_pop(self, &entry);
            self->now = entry.when;
            n_done += 1;
            int rc = dispatch_event(self, (SimEvent *)entry.ev, entry.when);
            Py_DECREF(entry.ev);
            if (rc < 0)
                goto done;
        }
        if (stop_event->ok == 1) {
            result = stop_event->value ? stop_event->value : Py_None;
            Py_INCREF(result);
        }
        else {
            PyObject *exc = stop_event->value ? stop_event->value : Py_None;
            PyErr_SetObject((PyObject *)Py_TYPE(exc), exc);
        }
    done:
        Py_DECREF(stop_event);
        self->events_processed += n_done;
        return result;
    }

    while (self->heap_len && self->heap[0].when <= stop_at) {
        HeapEntry entry;
        engine_pop(self, &entry);
        self->now = entry.when;
        n_done += 1;
        int rc = dispatch_event(self, (SimEvent *)entry.ev, entry.when);
        Py_DECREF(entry.ev);
        if (rc < 0) {
            self->events_processed += n_done;
            return NULL;
        }
    }
    self->events_processed += n_done;
    if (stop_at != Py_HUGE_VAL && stop_at > self->now)
        self->now = stop_at;
    Py_RETURN_NONE;
}

static PyObject *
SimEngine_repr(SimEngine *self)
{
    char buf[64];
    PyOS_snprintf(buf, sizeof(buf), "%.9f", self->now);
    return PyUnicode_FromFormat("<Engine t=%s pending=%zd>", buf,
                                self->heap_len);
}

static PyObject *
SimEngine_get_now(SimEngine *self, void *closure)
{
    return PyFloat_FromDouble(self->now);
}

static PyObject *
SimEngine_get_active_process(SimEngine *self, void *closure)
{
    Py_INCREF(self->active_process);
    return self->active_process;
}

static int
SimEngine_set_active_process(SimEngine *self, PyObject *v, void *closure)
{
    if (v == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete _active_process");
        return -1;
    }
    Py_INCREF(v);
    Py_XSETREF(self->active_process, v);
    return 0;
}

static PyObject *
SimEngine_get_queue(SimEngine *self, void *closure)
{
    /* Debug/test view: the heap as a list of (when, prio, seq, event)
     * tuples in heap-array order (root first, as heapq keeps it). */
    PyObject *out = PyList_New(self->heap_len);
    if (out == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < self->heap_len; i++) {
        HeapEntry *h = &self->heap[i];
        PyObject *t = Py_BuildValue("(diKO)", h->when, h->prio,
                                    h->seq, h->ev);
        if (t == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, i, t);
    }
    return out;
}

static PyObject *
SimEngine_get_seq(SimEngine *self, void *closure)
{
    return PyLong_FromUnsignedLongLong(self->seq);
}

static PyGetSetDef SimEngine_getset[] = {
    {"now", (getter)SimEngine_get_now, NULL,
     PyDoc_STR("Current simulation time in seconds."), NULL},
    {"_now", (getter)SimEngine_get_now, NULL, NULL, NULL},
    {"active_process", (getter)SimEngine_get_active_process, NULL,
     PyDoc_STR("The process currently being resumed, if any."), NULL},
    {"_active_process", (getter)SimEngine_get_active_process,
     (setter)SimEngine_set_active_process, NULL, NULL},
    {"_queue", (getter)SimEngine_get_queue, NULL, NULL, NULL},
    {"_seq", (getter)SimEngine_get_seq, NULL, NULL, NULL},
    {NULL},
};

static PyMemberDef SimEngine_members[] = {
    {"trace", T_OBJECT, offsetof(SimEngine, trace), 0, NULL},
    {"events_processed", T_PYSSIZET, offsetof(SimEngine, events_processed),
     0, NULL},
    {NULL},
};

static PyMethodDef SimEngine_methods[] = {
    {"event", (PyCFunction)SimEngine_event, METH_NOARGS,
     PyDoc_STR("Create a fresh untriggered Event.")},
    {"timeout", (PyCFunction)(void (*)(void))SimEngine_timeout,
     METH_FASTCALL | METH_KEYWORDS,
     PyDoc_STR("Create an event firing delay_s seconds from now.")},
    {"spawn", (PyCFunction)(void (*)(void))SimEngine_spawn,
     METH_FASTCALL | METH_KEYWORDS,
     PyDoc_STR("Start a new Process running the generator.")},
    {"process", (PyCFunction)(void (*)(void))SimEngine_spawn,
     METH_FASTCALL | METH_KEYWORDS,
     PyDoc_STR("Alias of spawn (SimPy naming).")},
    {"all_of", (PyCFunction)SimEngine_all_of, METH_O,
     PyDoc_STR("Composite event firing when all events have fired.")},
    {"any_of", (PyCFunction)SimEngine_any_of, METH_O,
     PyDoc_STR("Composite event firing when any event has fired.")},
    {"schedule_callback",
     (PyCFunction)(void (*)(void))SimEngine_schedule_callback,
     METH_FASTCALL | METH_KEYWORDS,
     PyDoc_STR("Run fn() after delay_s seconds; returns the event.")},
    {"_enqueue", (PyCFunction)(void (*)(void))SimEngine_enqueue,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"_enqueue_at", (PyCFunction)(void (*)(void))SimEngine_enqueue_at,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"peek", (PyCFunction)SimEngine_peek, METH_NOARGS,
     PyDoc_STR("Time of the next scheduled event, or INFINITY.")},
    {"fast_forward", (PyCFunction)SimEngine_fast_forward, METH_O,
     PyDoc_STR("Analytically advance the clock across a quiescent span.")},
    {"step", (PyCFunction)SimEngine_step, METH_NOARGS,
     PyDoc_STR("Process the single next event.")},
    {"run", (PyCFunction)(void (*)(void))SimEngine_run,
     METH_FASTCALL | METH_KEYWORDS,
     PyDoc_STR("Run the simulation (until=None | time | Event).")},
    {NULL},
};

static PyTypeObject SimEngineType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "Engine",
    .tp_basicsize = sizeof(SimEngine),
    .tp_dealloc = (destructor)SimEngine_dealloc,
    .tp_repr = (reprfunc)SimEngine_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE |
                Py_TPFLAGS_HAVE_GC,
    .tp_doc = PyDoc_STR("A deterministic discrete-event simulation engine "
                        "(C-accelerated)."),
    .tp_traverse = (traverseproc)SimEngine_traverse,
    .tp_clear = (inquiry)SimEngine_clear,
    .tp_methods = SimEngine_methods,
    .tp_members = SimEngine_members,
    .tp_getset = SimEngine_getset,
    .tp_init = (initproc)SimEngine_init,
    .tp_new = PyType_GenericNew,
};

/* ---------------------------------------------------------------- module */

static PyObject *
simcore_install(PyObject *Py_UNUSED(module), PyObject *args, PyObject *kwds)
{
    PyObject *sim_err = NULL, *empty = NULL, *timeout = NULL;
    PyObject *process = NULL, *all_of = NULL, *any_of = NULL;
    PyObject *pending = NULL;
    static char *kwlist[] = {"SimulationError", "EmptySchedule", "Timeout",
                             "Process", "AllOf", "AnyOf", "PENDING", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OOOOOOO", kwlist,
                                     &sim_err, &empty, &timeout, &process,
                                     &all_of, &any_of, &pending))
        return NULL;
#define INSTALL(slot, var)                                                 \
    if (var != NULL) {                                                     \
        Py_INCREF(var);                                                    \
        Py_XSETREF(slot, var);                                             \
    }
    INSTALL(g_SimulationError, sim_err)
    INSTALL(g_EmptySchedule, empty)
    INSTALL(g_Timeout, timeout)
    INSTALL(g_Process, process)
    INSTALL(g_AllOf, all_of)
    INSTALL(g_AnyOf, any_of)
    INSTALL(g_PENDING, pending)
#undef INSTALL
    Py_RETURN_NONE;
}

static PyMethodDef simcore_methods[] = {
    {"_install", (PyCFunction)simcore_install,
     METH_VARARGS | METH_KEYWORDS,
     PyDoc_STR("Hand over the Python-side classes the C types call.")},
    {NULL},
};

static struct PyModuleDef simcore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._simcore",
    .m_doc = PyDoc_STR("C accelerator for the DES kernel (Event + Engine)."),
    .m_size = -1,
    .m_methods = simcore_methods,
};

PyMODINIT_FUNC
PyInit__simcore(void)
{
    s_record_kernel = PyUnicode_InternFromString("record_kernel");
    s_record = PyUnicode_InternFromString("record");
    s_engine_src = PyUnicode_InternFromString("engine");
    s_schedule_past = PyUnicode_InternFromString("schedule_past");
    if (s_record_kernel == NULL || s_record == NULL ||
        s_engine_src == NULL || s_schedule_past == NULL)
        return NULL;
    /* Defaults so the types are usable before _install() runs (errors
     * degrade to the builtin RuntimeError rather than crashing). */
    g_SimulationError = PyExc_RuntimeError;
    Py_INCREF(g_SimulationError);
    g_EmptySchedule = PyExc_RuntimeError;
    Py_INCREF(g_EmptySchedule);
    g_PENDING = Py_None;
    Py_INCREF(g_PENDING);

    if (PyType_Ready(&SimEventType) < 0)
        return NULL;
    if (PyType_Ready(&SimEngineType) < 0)
        return NULL;
    if (PyType_Ready(&Call0Type) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&simcore_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&SimEventType);
    if (PyModule_AddObject(m, "Event", (PyObject *)&SimEventType) < 0) {
        Py_DECREF(&SimEventType);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&SimEngineType);
    if (PyModule_AddObject(m, "Engine", (PyObject *)&SimEngineType) < 0) {
        Py_DECREF(&SimEngineType);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
