"""Scenario runner: declarative experiment specs.

A *scenario* is a JSON document naming systems (presets plus dotted
parameter overrides) and experiments to run on each.  It makes a study
reproducible as data instead of a script::

    {
      "name": "window-study",
      "systems": [
        {"preset": "Portals"},
        {"preset": "Portals", "label": "Portals/w8",
         "overrides": {"portals.tx_window_pkts": 8}}
      ],
      "experiments": [
        {"kind": "polling", "msg_kb": 100, "intervals": [1000, 100000]},
        {"kind": "offload", "msg_kb": 100}
      ]
    }

Run with ``comb scenario spec.json`` or :func:`run_scenario`.

Supported experiment kinds: ``polling`` (sweep over ``intervals``),
``pww`` (same), ``offload``, ``netperf`` (``mode``), ``pingpong``
(``sizes_kb``), and ``pattern`` (application communication patterns —
``pattern`` names halo2d/halo3d/sweep/allreduce, sweeping ``ranks`` over
``rank_counts`` on a named ``topology``).  Extra per-point options go
under ``config`` and feed the corresponding Config dataclass.

A top-level ``"replication"`` object requests replicated measurement
for the point-producing kinds (polling/pww/pattern)::

    {"replication": {"reps": 5, "ci_width": 0.02}, ...}

Each point then runs as up to ``reps`` sub-runs on named RNG substreams
(optionally stopping early once the availability CI is at most
``ci_width`` wide) and its result dict carries a ``replication``
summary.  Without the key — or with ``reps: 1`` — the scenario takes
the direct single-shot path, bit-identical to earlier releases.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from .baselines import run_netperf, run_pingpong
from .config import PRESETS, SystemConfig, get_system
from .core import CombSuite, PollingConfig, PwwConfig, run_polling, run_pww
from .core.executor import PointTask, SweepExecutor
from .patterns import PatternConfig, run_pattern

KB = 1024


class ScenarioError(ValueError):
    """Malformed scenario document."""


def _ext_presets() -> Dict[str, Callable[[], SystemConfig]]:
    from .ext import coalesced_portals, emp_system, offload_nic_system

    return {
        "EMP": emp_system,
        "OffloadNIC": offload_nic_system,
        "Portals+coalesce": coalesced_portals,
    }


def resolve_preset(name: str) -> SystemConfig:
    """Look up a preset across the core and extension registries."""
    for key, factory in _ext_presets().items():
        if key.lower() == name.lower():
            return factory()
    try:
        return get_system(name)
    except KeyError:
        known = sorted(PRESETS) + sorted(_ext_presets())
        raise ScenarioError(
            f"unknown preset {name!r}; known: {known}"
        ) from None


def apply_overrides(system: SystemConfig, overrides: Dict[str, Any]) -> SystemConfig:
    """Apply dotted-path overrides (``"portals.tx_window_pkts": 8``)."""
    for path, value in overrides.items():
        parts = path.split(".")
        system = _replace_path(system, parts, value)
    return system


def _replace_path(obj, parts: List[str], value):
    field = parts[0]
    if not hasattr(obj, field):
        raise ScenarioError(
            f"{type(obj).__name__} has no field {field!r}"
        )
    if len(parts) == 1:
        current = getattr(obj, field)
        if current is not None and not isinstance(value, type(current)) \
                and not (isinstance(current, float) and isinstance(value, (int, float))):
            raise ScenarioError(
                f"override {field!r}: expected {type(current).__name__}, "
                f"got {type(value).__name__}"
            )
        return dataclasses.replace(obj, **{field: value})
    child = _replace_path(getattr(obj, field), parts[1:], value)
    return dataclasses.replace(obj, **{field: child})


def _run_experiment(
    system: SystemConfig,
    spec: Dict[str, Any],
    executor: Optional[SweepExecutor] = None,
) -> Dict:
    kind = spec.get("kind")
    msg_bytes = int(spec.get("msg_kb", 100) * KB)
    cfg_extra = dict(spec.get("config", {}))

    def run_point(point_kind: str, cfg, direct) -> Dict:
        # The direct path (no replication requested) is kept verbatim:
        # its results are bit-identical to pre-replication scenarios.
        if executor is None:
            return direct(system, cfg).to_dict()
        return executor.run_one(PointTask(point_kind, system, cfg)).to_dict()

    if kind == "polling":
        points = []
        for interval_iters in spec.get("intervals", [10_000]):
            cfg = PollingConfig(
                msg_bytes=msg_bytes, poll_interval_iters=int(interval_iters),
                **cfg_extra,
            )
            points.append(run_point("polling", cfg, run_polling))
        return {"kind": kind, "points": points}
    if kind == "pww":
        points = []
        for interval_iters in spec.get("intervals", [100_000]):
            cfg = PwwConfig(
                msg_bytes=msg_bytes, work_interval_iters=int(interval_iters),
                **cfg_extra,
            )
            points.append(run_point("pww", cfg, run_pww))
        return {"kind": kind, "points": points}
    if kind == "offload":
        verdict = CombSuite(system).offload_verdict(msg_bytes=msg_bytes)
        return {
            "kind": kind,
            "offloaded": verdict.offloaded,
            "wait_short_s": verdict.wait_short_s,
            "wait_long_s": verdict.wait_long_s,
            "summary": verdict.summary(),
        }
    if kind == "netperf":
        res = run_netperf(system, msg_bytes=msg_bytes,
                          wait_mode=spec.get("mode", "busywait"))
        return {
            "kind": kind, "mode": res.wait_mode,
            "availability": res.availability,
            "bandwidth_Bps": res.bandwidth_Bps,
        }
    if kind == "pingpong":
        results = []
        for size_kb in spec.get("sizes_kb", [100]):
            r = run_pingpong(system, int(size_kb * KB))
            results.append({
                "msg_bytes": r.msg_bytes,
                "latency_s": r.latency_s,
                "bandwidth_Bps": r.bandwidth_Bps,
            })
        return {"kind": kind, "points": results}
    if kind == "pattern":
        points = []
        for ranks in spec.get("rank_counts", [4]):
            cfg = PatternConfig(
                pattern=spec.get("pattern", "halo2d"),
                ranks=int(ranks),
                msg_bytes=msg_bytes,
                topology=spec.get("topology", "crossbar"),
                **cfg_extra,
            )
            points.append(run_point("pattern", cfg, run_pattern))
        return {"kind": kind, "points": points}
    raise ScenarioError(f"unknown experiment kind {kind!r}")


def _replication_executor(
    spec: Dict[str, Any], point_log: bool = False
) -> Optional[SweepExecutor]:
    """Executor for the scenario's ``replication`` request (or ``None``)."""
    rep_spec = spec.get("replication")
    if rep_spec is None:
        return None
    if not isinstance(rep_spec, dict):
        raise ScenarioError("'replication' must be an object")
    try:
        reps = int(rep_spec.get("reps", 1))
    except (TypeError, ValueError):
        raise ScenarioError("replication 'reps' must be an integer") from None
    if reps < 1:
        raise ScenarioError(f"replication 'reps' must be >= 1, got {reps}")
    ci_width = rep_spec.get("ci_width")
    if ci_width is not None:
        ci_width = float(ci_width)
    if reps == 1:
        return None  # single-shot: keep the bit-identical direct path
    return SweepExecutor(reps=reps, ci_width=ci_width, point_log=point_log)


def run_scenario(spec: Union[Dict, str, Path], ledger: Any = None) -> Dict:
    """Execute a scenario; returns the result document (JSON-ready).

    ``ledger`` is an open :class:`~repro.obs.ledger.RunLedger`: replicated
    scenarios (the executor-driven path) append per-point outcome records
    and every scenario appends a closing run record.  Single-shot
    scenarios keep the bit-identical direct path — the ledger then only
    carries the run summary.
    """
    import time as _time

    if not isinstance(spec, dict):
        spec = json.loads(Path(spec).read_text())
    if "systems" not in spec or "experiments" not in spec:
        raise ScenarioError("scenario needs 'systems' and 'experiments'")
    t0_wall = _time.perf_counter() if ledger is not None else 0.0
    executor = _replication_executor(spec, point_log=ledger is not None)
    results: Dict[str, Any] = {
        "name": spec.get("name", "scenario"),
        "systems": [],
    }
    if executor is not None:
        results["replication"] = {
            "reps": executor.reps,
            "ci_width": executor.ci_width,
        }
    for sys_spec in spec["systems"]:
        system = resolve_preset(sys_spec["preset"])
        overrides = sys_spec.get("overrides", {})
        if overrides:
            system = apply_overrides(system, overrides)
        label = sys_spec.get("label", system.name)
        entry = {"label": label, "preset": sys_spec["preset"],
                 "experiments": []}
        for exp in spec["experiments"]:
            entry["experiments"].append(_run_experiment(system, exp,
                                                        executor=executor))
        results["systems"].append(entry)
    if executor is not None and executor.disagreements:
        results["disagreements"] = [
            d.detail for d in executor.disagreements
        ]
    if ledger is not None:
        from datetime import datetime, timezone

        from . import compiled

        if executor is not None:
            for point in executor.point_records:
                ledger.record_point(
                    key=point["key"], kind=point["kind"],
                    system=point["system"], outcome=point["outcome"],
                    wall_s=point["wall_s"], seed=point["seed"],
                )
        ledger.record_run(
            wall_s=round(_time.perf_counter() - t0_wall, 4),
            timestamp=datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            compiled=compiled.active(),
            reps=executor.reps if executor is not None else 1,
            cache=executor.stats.to_dict() if executor is not None else {},
        )
    return results


def format_scenario_results(results: Dict) -> str:
    """Short human-readable rendering of a scenario result document."""
    lines = [f"scenario: {results['name']}"]
    for entry in results["systems"]:
        lines.append(f"\n[{entry['label']}]")
        for exp in entry["experiments"]:
            kind = exp["kind"]
            if kind in ("polling", "pww"):
                for p in exp["points"]:
                    x = p.get("poll_interval_iters",
                              p.get("work_interval_iters"))
                    lines.append(
                        f"  {kind:8s} interval={x:>10}: "
                        f"bw={p['bandwidth_MBps']:7.2f} MB/s "
                        f"avail={p['availability']:.3f}"
                    )
            elif kind == "offload":
                lines.append(f"  offload  {exp['summary']}")
            elif kind == "netperf":
                lines.append(
                    f"  netperf  {exp['mode']}: "
                    f"avail={exp['availability']:.3f} "
                    f"bw={exp['bandwidth_Bps'] / 1e6:.2f} MB/s"
                )
            elif kind == "pingpong":
                for p in exp["points"]:
                    lines.append(
                        f"  pingpong {p['msg_bytes'] // KB:>6d} KB: "
                        f"lat={p['latency_s'] * 1e6:8.1f} us "
                        f"bw={p['bandwidth_Bps'] / 1e6:7.2f} MB/s"
                    )
            elif kind == "pattern":
                for p in exp["points"]:
                    lines.append(
                        f"  {p['pattern']:8s} ranks={p['ranks']:>3d} "
                        f"({p['topology']}): "
                        f"avail={p['availability']:.3f} "
                        f"[{p['availability_min']:.3f}"
                        f"..{p['availability_max']:.3f}] "
                        f"bw={p['bandwidth_MBps']:7.2f} MB/s"
                    )
    return "\n".join(lines)
