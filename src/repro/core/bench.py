"""Benchmark-trajectory recording shared by ``comb bench`` and
``tools/bench_report.py``.

One *record* is one timed pass over the coarse benchmark grid (the paper
figures at 1 point/decade by default).  Records append to a trajectory
directory as ``BENCH_<n>.json`` — ``<n>`` one past the highest existing
record — so the directory accumulates the suite's performance history
across PRs; ``comb compare <dir>`` judges the newest record against the
older ones.

Each record carries total and per-figure wall time, the executor cache
hit rate, the engine event count (the simulator's own cost model — burst
batching and quiescence fast-forward exist to shrink it), whether the
compiled core was active, and optionally a cProfile top table over one
figure (``profile=...``) so hot-path claims in CHANGES.md are backed by
recorded evidence.
"""

from __future__ import annotations

import json
import platform
import re
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from .. import compiled
from ..obs import MetricsRegistry
from .executor import PointCache, SweepExecutor, code_salt

DEFAULT_OUT_DIR = Path("results") / "bench"

#: Rows of the embedded cProfile table (sorted by cumulative time).
PROFILE_TOP_ROWS = 20


def next_record_path(out_dir: Path) -> Path:
    """``BENCH_<n>.json`` with ``n`` = highest existing + 1 (1-based)."""
    highest = 0
    for f in out_dir.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", f.name)
        if m:
            highest = max(highest, int(m.group(1)))
    return out_dir / f"BENCH_{highest + 1}.json"


def profile_figure(fig_id: str, per_decade: int = 1) -> Dict[str, Any]:
    """cProfile one figure (serial, uncached, so every point simulates
    in-process) and return the top cumulative-time rows as JSON rows.

    The run is separate from the timed pass: profiling slows execution by
    tens of percent, which would corrupt the wall-time trajectory.
    """
    import cProfile
    import pstats

    from ..analysis import run_figure

    profiler = cProfile.Profile()
    with SweepExecutor(jobs=1, cache=None) as executor:
        profiler.enable()
        run_figure(fig_id, per_decade=per_decade, executor=executor)
        profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows: List[Dict[str, Any]] = []
    for func in stats.fcn_list[:PROFILE_TOP_ROWS]:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _callers = stats.stats[func]  # type: ignore[attr-defined]
        filename, line, name = func
        rows.append({
            "ncalls": nc,
            "tottime_s": round(tt, 6),
            "cumtime_s": round(ct, 6),
            "function": f"{filename}:{line}({name})",
        })
    return {"figure": fig_id, "per_decade": per_decade, "top": rows}


def run_bench(
    ids: Optional[List[str]] = None,
    per_decade: int = 1,
    jobs: int = 1,
    cache: Optional[PointCache] = None,
    profile: Optional[str] = None,
    echo: Callable[[str], None] = print,
    ledger: Optional[Any] = None,
) -> Dict[str, Any]:
    """Time one pass over the benchmark grid; return the record dict.

    ``ids`` defaults to every figure; ``profile`` names a figure id to
    additionally cProfile (top rows embedded under ``"profile"``).
    ``echo`` receives one progress line per figure.  ``ledger`` is an
    open :class:`~repro.obs.ledger.RunLedger`: every point outcome and
    the closing run summary are appended to it (timing is unchanged —
    point logging costs two timestamps per simulated point).
    """
    from ..analysis import run_figure
    from ..analysis.figures import ALL_FIGURES
    from ..analysis.scaling import SCALING_FIGURES

    # Paper figures by default; scaling figures (availability vs ranks)
    # are opt-in by id, same as in `comb figures --ids`.
    fig_ids = list(ids) if ids else sorted(ALL_FIGURES)
    known = sorted(ALL_FIGURES) + sorted(SCALING_FIGURES)
    unknown = [i for i in fig_ids if i not in known]
    if unknown:
        raise ValueError(
            f"unknown figure ids: {unknown}; have {known}"
        )
    registry = MetricsRegistry()
    per_figure: Dict[str, float] = {}
    claims_ok = True
    t_total_s = time.time()
    with SweepExecutor(jobs=jobs, cache=cache, metrics=registry,
                       point_log=ledger is not None) as executor:
        for fig_id in fig_ids:
            t0 = time.time()
            report = run_figure(fig_id, per_decade=per_decade,
                                executor=executor)
            per_figure[fig_id] = round(time.time() - t0, 4)
            claims_ok = claims_ok and report.ok
            echo(f"{fig_id}: {per_figure[fig_id]:7.2f}s "
                 f"({'ok' if report.ok else 'CLAIMS FAILED'})")
        stats = executor.stats
    total_s = time.time() - t_total_s

    record: Dict[str, Any] = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "per_decade": per_decade,
        "jobs": jobs,
        "cache_enabled": cache is not None,
        "code_salt": code_salt(),
        "python": platform.python_version(),
        # Which simulation core produced this record (see repro.compiled).
        "compiled": compiled.active(),
        "total_s": round(total_s, 4),
        "figures": per_figure,
        "cache": stats.to_dict(),
        # Wall-clock stage profile from the observability layer: cache
        # lookup latency, per-point simulation wall times, fan-out
        # utilization (see docs/observability.md).
        "metrics": registry.to_dict(),
        "claims_ok": claims_ok,
    }
    events = events_processed_total(registry)
    if events is not None:
        # The simulator's own cost model: heap events dispatched across
        # all in-process points (pooled points simulate elsewhere).
        record["events_processed"] = events
    if profile is not None:
        echo(f"profiling {profile} (serial, uncached)...")
        record["profile"] = profile_figure(profile, per_decade=per_decade)
    if ledger is not None:
        for point in executor.point_records:
            ledger.record_point(
                key=point["key"], kind=point["kind"],
                system=point["system"], outcome=point["outcome"],
                wall_s=point["wall_s"], seed=point["seed"],
            )
        ledger.record_run(
            wall_s=round(total_s, 4),
            timestamp=record["timestamp"],
            compiled=record["compiled"],
            reps=1,
            cache=record["cache"],
            figures=per_figure,
            total_s=record["total_s"],
            claims_ok=claims_ok,
        )
    return record


def events_processed_total(registry: MetricsRegistry) -> Optional[int]:
    """Sum the per-point engine event counters out of a metrics registry,
    or ``None`` when the registry carries none (e.g. all points pooled)."""
    doc = registry.to_dict()
    total = 0
    seen = False
    for name, series in doc.get("counters", {}).items():
        if name != "sim.events_processed":
            continue
        seen = True
        if isinstance(series, (int, float)):
            total += int(series)
        elif isinstance(series, dict):
            total += int(sum(v for v in series.values()
                             if isinstance(v, (int, float))))
    return total if seen else None


def write_record(record: Dict[str, Any], out_dir: Union[str, Path]) -> Path:
    """Append ``record`` to the trajectory directory; return its path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = next_record_path(out)
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path
