"""Process-local simulation cost accounting.

The engine counts every heap event it dispatches
(:attr:`repro.sim.engine.Engine.events_processed`) — the cost model of
the simulator itself, and the number burst batching and quiescence
fast-forward exist to shrink.  Each engine dies with its world, so the
method runners deposit their final counts here; the sweep executor
drains the tally into the metrics registry (``sim.events_processed``)
and ``BENCH_<n>.json`` records it per trajectory point.

The tally is process-local by design: points simulated in pool workers
tally in *their* processes and are not shipped back.  Serial runs (the
bench default) therefore account for every point; pooled runs account
for the in-process remainder — the same caveat the observer's sim
metrics carry.
"""

from __future__ import annotations

_events_processed = 0


def tally_events(n: int) -> None:
    """Add one finished engine's dispatched-event count to the tally."""
    global _events_processed
    # Process-local by design (see module docstring): pooled workers tally
    # in their own processes and the counts are knowingly not shipped back.
    _events_processed += n  # comb-lint: disable=EXEC001


def drain_events() -> int:
    """Return the tally accumulated since the last drain, and reset it."""
    global _events_processed
    n = _events_processed
    _events_processed = 0
    return n
