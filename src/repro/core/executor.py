"""Sweep execution layer: parallel point fan-out + persistent point cache.

Every COMB figure is a parameter sweep whose points run on fresh,
independent, deterministic worlds (see :mod:`repro.core.sweep`), so the
suite's hot loop is embarrassingly parallel *and* perfectly memoizable.
This module exploits both properties:

* :class:`SweepExecutor` fans a list of :class:`PointTask` records out
  over a spawn-safe :mod:`multiprocessing` pool (``jobs > 1``) or runs
  them inline (``jobs=1``, the default).  Results are assembled in task
  order, so the pool path is bit-identical to the serial path.
* :class:`PointCache` is a content-addressed on-disk store: the key is a
  stable SHA-256 over the full :class:`~repro.config.SystemConfig`, the
  method config, the method kind, and a code-version salt hashed from the
  simulator's source files.  Re-generating a figure only simulates points
  the cache has never seen; editing any simulator source invalidates every
  stale record automatically.
* An in-process memo table (always on) deduplicates identical points
  *within* a run — overlapping figures (e.g. Figs 4/5 share one polling
  sweep; Figs 14–17 re-sweep the same grids) pay for each point once.

Executor resolution is layered: an explicit ``executor=`` argument wins,
then the innermost :func:`use_executor` context, then a lazily-created
process-wide serial default.  Library code therefore never *needs* to
know about executors, while drivers (CLI, ``reproduce_paper.py``) opt in
to parallelism and persistence with two flags.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import multiprocessing.pool
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from enum import Enum
from functools import partial
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..config import SystemConfig
from ..obs import live as _live
from ..obs.context import current_observer
from ..obs.live import TelemetryChannel
from ..obs.metrics import DEFAULT_LATENCY_BUCKETS_S, MetricsRegistry

# Submodule imports only (never package-level ``..patterns``): the
# patterns package imports core submodules, so importing its package
# __init__ from here would cycle.
from ..patterns.config import PatternConfig
from ..patterns.results import PatternPoint
from ..patterns.runner import run_pattern
from ..stats import (
    Disagreement,
    StoppingRule,
    find_disagreements,
    is_stochastic,
    replicate_system,
    summarize_replicates,
)
from .accounting import drain_events
from .polling import PollingConfig, run_polling
from .pww import PwwConfig, run_pww
from .results import PollingPoint, PwwPoint

#: Any method's per-point result record.
Point = Union[PollingPoint, PwwPoint, PatternPoint]

#: Default location of the on-disk point cache (relative to the CWD).
DEFAULT_CACHE_DIR = ".comb_cache"

#: Bump to invalidate every existing cache record regardless of source
#: hashing (e.g. when the *record format* below changes).
CACHE_SCHEMA_VERSION = 1

#: Replicates-per-point histogram buckets (adaptive designs are small).
_REPLICATE_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 16.0, 32.0, 64.0)

#: Stopping reason → metric counter name (static names keep the metric
#: namespace enumerable).
_STOP_COUNTERS = {
    "ci_width": "executor.replication.stop.ci_width",
    "max_reps": "executor.replication.stop.max_reps",
    "fixed": "executor.replication.stop.fixed",
}

#: Method kind → (config type, runner, result type).
_METHODS = {
    "polling": (PollingConfig, run_polling, PollingPoint),
    "pww": (PwwConfig, run_pww, PwwPoint),
    "pattern": (PatternConfig, run_pattern, PatternPoint),
}


@dataclass(frozen=True)
class PointTask:
    """One sweep point: a method kind bound to its full configuration.

    Plain picklable data — safe to ship to a spawn-context worker.
    """

    kind: str
    system: SystemConfig
    cfg: Union[PollingConfig, PwwConfig, PatternConfig]

    def __post_init__(self) -> None:
        if self.kind not in _METHODS:
            raise ValueError(
                f"unknown method kind {self.kind!r}; have {sorted(_METHODS)}"
            )


def run_task(task: PointTask) -> Point:
    """Execute one task on a fresh world (also the pool worker entry)."""
    _cfg_type, runner, _pt_type = _METHODS[task.kind]
    return runner(task.system, task.cfg)


def run_task_checked(task: PointTask) -> Tuple[Point, List[Any]]:
    """Execute one task under the simulation sanitizer.

    Returns ``(point, violations)``.  Module-level (not a closure) so the
    spawn pool can pickle it; :class:`~repro.verify.monitors.Violation` is
    a frozen dataclass of primitives, so the report ships back intact.
    The sanitizer only observes — the point is bit-identical to
    :func:`run_task`'s.
    """
    from ..verify import Sanitizer, use_sanitizer

    sanitizer = Sanitizer()
    with use_sanitizer(sanitizer):
        point = run_task(task)
    return point, sanitizer.finalize()


def _point_marker(task: PointTask) -> Tuple[str, str, int, int, int]:
    """``point_start`` detail: ``(kind, system, msg_bytes, interval_iters,
    warmup_windows)``.  Polling self-describes its window (``poll_window``
    events), so its warmup count is 0."""
    cfg = task.cfg
    if isinstance(cfg, PwwConfig):
        return (task.kind, task.system.name, cfg.msg_bytes,
                cfg.work_interval_iters, cfg.warmup_batches)
    if isinstance(cfg, PatternConfig):
        return (task.kind, task.system.name, cfg.msg_bytes,
                cfg.work_interval_iters, cfg.warmup_iterations)
    return (task.kind, task.system.name, cfg.msg_bytes,
            cfg.poll_interval_iters, 0)


def _sim_entry(
    task: PointTask, check: bool = False, timed: bool = False
) -> Tuple[Point, List[Any], float]:
    """Uniform worker entry: ``(point, violations, wall_s)``.

    Module-level so ``functools.partial`` of it pickles into the spawn
    pool.  ``wall_s`` is measured *inside* the worker, so pool timings
    profile simulation cost, not dispatch latency.  With ``timed`` and
    ``check`` both off this is :func:`run_task` plus two constants —
    the point itself is bit-identical in every mode.
    """
    t0_wall = time.perf_counter() if timed else 0.0
    if check:
        point, violations = run_task_checked(task)
    else:
        point, violations = run_task(task), []
    wall_s = time.perf_counter() - t0_wall if timed else 0.0
    return point, violations, wall_s


def _sim_entry_live(
    task_and_key: Tuple[PointTask, str],
    check: bool = False,
    timed: bool = False,
) -> Tuple[Point, List[Any], float]:
    """:func:`_sim_entry` bracketed by live telemetry lifecycle events.

    Module-level for spawn-pool pickling.  Runs in the emitting process
    (pool worker, or the parent on the serial path), so the emitted
    ``point_start`` / ``point_end`` carry *that* process's pid and
    cumulative drop counts.  Telemetry is observation-only: the returned
    point is bit-identical to :func:`_sim_entry`'s.
    """
    task, key = task_and_key
    kind, system, msg_bytes, interval_iters, _warmup_windows = (
        _point_marker(task)
    )
    _live.note_point_start(key, kind, {
        "system": system,
        "msg_bytes": msg_bytes,
        "interval_iters": interval_iters,
    })
    result = _sim_entry(task, check=check, timed=timed)
    _live.note_point_end(key, kind, result[2])
    return result


# --------------------------------------------------------------------- keys
def _jsonable(value: Any) -> Any:
    """Canonical JSON-ready form of a config value (stable across runs)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    return value


#: Simulator packages/modules whose source determines point values.  The
#: analysis/plotting layers are deliberately excluded: they postprocess
#: points but never influence them.
_SALT_SOURCES = ("sim", "hardware", "transport", "os", "mpi", "core",
                 "patterns", "config.py")

_code_salt: Optional[str] = None


def code_salt() -> str:
    """Hash of the simulator's source files (computed once per process).

    Any edit to the DES kernel, hardware models, transports, MPI layer, or
    the COMB methods changes the salt and therefore every cache key —
    stale records can never be returned after a code change.
    """
    global _code_salt
    if _code_salt is None:
        root = Path(__file__).resolve().parent.parent  # src/repro
        h = hashlib.sha256()
        for entry in _SALT_SOURCES:
            path = root / entry
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for f in files:
                h.update(str(f.relative_to(root)).encode())
                h.update(f.read_bytes())
        _code_salt = h.hexdigest()[:16]
    return _code_salt


def task_key(task: PointTask, salt: Optional[str] = None) -> str:
    """Stable content hash of a task (the cache key)."""
    doc = {
        "schema": CACHE_SCHEMA_VERSION,
        "salt": salt if salt is not None else code_salt(),
        "kind": task.kind,
        "system": _jsonable(task.system),
        "cfg": _jsonable(task.cfg),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# -------------------------------------------------------------------- cache
@dataclass
class CacheStats:
    """Hit/miss counters for one executor lifetime."""

    hits: int = 0
    misses: int = 0
    #: Corrupt on-disk records evicted during this executor's lookups.
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class PointCache:
    """Content-addressed on-disk store of measurement points.

    Layout: one JSON record per point under ``root``, named
    ``<sha256>.json`` and sharded by the first two hex digits::

        .comb_cache/ab/abcdef….json

    Records carry the method kind and the full result dataclass; floats
    survive the JSON round-trip exactly (shortest-repr doubles), so a
    cache hit is bit-identical to a fresh simulation.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        #: Corrupt records detected (and removed) over this cache's lifetime.
        self.evictions = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str, kind: str) -> Optional[Point]:
        """Return the stored point for ``key``, or ``None``.

        Corrupt records — truncated writes, hand-edited garbage, or JSON
        of the wrong shape — are treated as misses *and deleted*, so one
        bad file costs one recompute instead of poisoning every future
        lookup of its key.
        """
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            doc = json.loads(text)
            if not isinstance(doc, dict):
                raise ValueError("record is not a JSON object")
            if doc.get("kind") != kind:  # key collision across kinds:
                return None  # impossible, but never mis-deserialize
            _cfg_type, _runner, pt_type = _METHODS[kind]
            return pt_type(**doc["point"])
        except (ValueError, KeyError, TypeError):
            self._evict_corrupt(path)
            return None

    def _evict_corrupt(self, path: Path) -> None:
        """Best-effort removal of an unreadable record (always counted)."""
        self.evictions += 1
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing eviction is fine
            pass

    def put(self, key: str, kind: str, point: Point) -> None:
        """Store ``point`` under ``key`` (atomic rename, racer-safe)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"kind": kind, "point": dataclasses.asdict(point)}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, sort_keys=True))
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every record; returns the number removed."""
        n = 0
        if self.root.is_dir():
            for f in self.root.rglob("*.json"):
                f.unlink()
                n += 1
        return n

    def __len__(self) -> int:
        return sum(1 for _ in self.root.rglob("*.json")) if self.root.is_dir() else 0


# ----------------------------------------------------------------- executor
class SweepExecutor:
    """Runs batches of independent sweep points, optionally in parallel
    and optionally against a persistent cache.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs points inline — the
        reference code path; ``N > 1`` fans cache misses out over a
        spawn-context pool.  Both paths assemble results in task order,
        so they are bit-identical.
    cache:
        ``None`` (default) disables the on-disk cache; a :class:`PointCache`
        or a path enables it.
    memoize:
        Keep an in-process memo of completed points (default on).  Purely
        an intra-run dedup: determinism makes it value-transparent.
    check:
        Run every simulated point under the simulation sanitizer
        (:mod:`repro.verify`) and collect invariant violations into
        :attr:`violations`.  Observation-only: checked points are
        bit-identical to unchecked ones.  Off by default — the default
        path never imports or touches the verify package.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` receiving
        wall-clock stage profiles: cache hit/miss lookup latency
        histograms, per-point simulation wall times, and worker fan-out
        utilization per batch.  ``None`` (default) skips all wall-clock
        reads — the unprofiled path takes no timestamps at all.
    reps:
        Replicate cap per sweep point.  ``1`` (default) is the classic
        single-shot path, bit-identical to the pre-replication executor.
        ``N > 1`` runs each point as replicated sub-runs on named RNG
        substreams (replicate 0 keeps the root seed and therefore the
        single-shot cache key) and returns one aggregated point per task
        carrying a ``replication`` summary.
    ci_width:
        Adaptive stopping tolerance: with ``reps > 1``, stop replicating
        a point once the bootstrap CI of its availability is at most
        this wide (never exceeding the ``reps`` cap).  ``None``
        (default) runs the fixed design of exactly ``reps`` replicates.
        Ignored when ``reps == 1``.
    telemetry:
        A :class:`~repro.obs.live.TelemetryChannel` receiving live point
        lifecycle events and per-worker heartbeats (see
        :mod:`repro.obs.live`).  Pool workers are armed through the pool
        initializer; on the serial path the parent arms itself.
        ``None`` (default) is the detached path — no queue, no arming,
        bit-identical results and walls.
    point_log:
        Record one parent-side outcome dict per point into
        :attr:`point_records` (key, kind, system, hit/miss/duplicate,
        wall, seed) — the run ledger's feed.  Implied timing only; the
        points themselves are untouched.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Union[None, str, Path, PointCache] = None,
        memoize: bool = True,
        check: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        reps: int = 1,
        ci_width: Optional[float] = None,
        telemetry: Optional[TelemetryChannel] = None,
        point_log: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if reps < 1:
            raise ValueError("reps must be >= 1")
        self.jobs = jobs
        if cache is not None and not isinstance(cache, PointCache):
            cache = PointCache(cache)
        self.cache = cache
        self.memoize = memoize
        self.check = check
        self.metrics = metrics
        self.reps = reps
        self.ci_width = ci_width
        self.telemetry = telemetry
        self.point_log = point_log
        #: Parent-side per-point outcome records (``point_log`` or
        #: ``telemetry`` set): the run ledger's input.
        self.point_records: List[Dict[str, Any]] = []
        self._armed_serial = False
        #: Per-task walls of the most recent :meth:`_simulate` batch.
        self._last_walls_s: List[float] = []
        self.stats = CacheStats()
        #: Violations collected from checked simulations (``check=True``).
        self.violations: List[Any] = []
        #: Replica disagreements: deterministic points whose replicates
        #: diverged bit-level — sanitizer escapes (see ``repro.stats``).
        self.disagreements: List[Disagreement] = []
        self._memo: Dict[str, Any] = {}
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._pool_size = 0
        self._evictions_base = cache.evictions if cache is not None else 0

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._armed_serial:
            _live.disarm_worker()
            self._armed_serial = False

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def _get_pool(self, want: int) -> multiprocessing.pool.Pool:
        """Lazily create (and reuse) the spawn-context worker pool."""
        if self._pool is None:
            ctx = multiprocessing.get_context("spawn")
            self._pool_size = min(self.jobs, max(want, 1))
            if self.telemetry is not None:
                # Arm every worker as a telemetry emitter: the bounded
                # queue inherits through initargs (the only channel a
                # spawn worker can receive an mp.Queue over).
                self._pool = ctx.Pool(
                    processes=self._pool_size,
                    initializer=_live.pool_worker_init,
                    initargs=(self.telemetry.queue,
                              self.telemetry.heartbeat_s),
                )
            else:
                self._pool = ctx.Pool(processes=self._pool_size)
        return self._pool

    # ------------------------------------------------------------- execution
    def run(
        self,
        tasks: Sequence[PointTask],
        reps: Optional[int] = None,
        ci_width: Optional[float] = None,
    ) -> List[Any]:
        """Run every task, returning points in task order.

        Cache/memo hits are returned as fresh copies (no aliasing between
        calls); misses are simulated — in parallel when ``jobs > 1`` —
        and written back to the cache.

        ``reps`` / ``ci_width`` override the executor-level replication
        settings for this batch.  With an effective ``reps > 1`` each
        task becomes a replicated measurement (see
        :meth:`_run_replicated`); otherwise this is the single-shot path,
        byte-for-byte the pre-replication executor.
        """
        eff_reps = self.reps if reps is None else reps
        eff_ci = self.ci_width if ci_width is None else ci_width
        if eff_reps > 1:
            return self._run_replicated(list(tasks), eff_reps, eff_ci)
        return self._run_base(tasks)

    def _run_base(self, tasks: Sequence[PointTask]) -> List[Any]:
        """Single-shot execution: one simulation (or cache hit) per task."""
        salt = code_salt()
        lookup = self._lookup if self.metrics is None else self._lookup_profiled
        # Outcome notes feed the ledger (point_log), the live stream
        # (telemetry), and the trace's executor row (ambient observer).
        live_on = (self.point_log or self.telemetry is not None
                   or current_observer() is not None)
        results: List[Any] = [None] * len(tasks)
        pending: List[Tuple[int, str, PointTask]] = []
        first_for_key: Dict[str, int] = {}
        duplicates: List[Tuple[int, int]] = []
        n_hits = 0
        for i, task in enumerate(tasks):
            key = task_key(task, salt)
            if key in first_for_key:
                # Duplicate of a pending miss in this very batch: simulate
                # once, copy after — and keep it out of the hit/miss stats
                # so ``misses`` always equals the number of simulations.
                duplicates.append((i, first_for_key[key]))
                if live_on:
                    self._note_outcome(key, task, "duplicate", None)
                continue
            point = lookup(key, task.kind)
            if point is not None:
                results[i] = point
                n_hits += 1
                if live_on:
                    self._note_outcome(key, task, "hit", None)
            else:
                first_for_key[key] = i
                pending.append((i, key, task))

        if self.telemetry is not None:
            self.telemetry.emit(
                "batch", n_tasks=len(tasks), n_hits=n_hits,
                n_pending=len(pending),
            )
        if pending:
            fresh = self._simulate(
                [t for _i, _k, t in pending],
                keys=[k for _i, k, _t in pending],
            )
            for (i, key, task), point, wall_s in zip(
                pending, fresh, self._last_walls_s
            ):
                results[i] = point
                self._store(key, task.kind, point)
                if live_on:
                    self._note_outcome(key, task, "miss", wall_s)
        for i, j in duplicates:
            results[i] = dataclasses.replace(results[j])
        return results

    def _note_outcome(
        self,
        key: str,
        task: PointTask,
        outcome: str,
        wall_s: Optional[float],
    ) -> None:
        """Record one parent-side point outcome (ledger + live stream)."""
        self.point_records.append({
            "key": key,
            "kind": task.kind,
            "system": task.system.name,
            "outcome": outcome,
            "wall_s": wall_s,
            "seed": task.system.seed,
        })
        if outcome == "miss":
            return
        # Misses announce themselves from the worker (point_start /
        # point_end); hits and duplicates never reach a worker, so the
        # parent speaks for them.
        if self.telemetry is not None:
            self.telemetry.emit(
                "point_cached", key=key, method=task.kind,
                system=task.system.name, outcome=outcome,
            )
        obs = current_observer()
        tracer = obs.tracer if obs is not None else None
        if tracer is not None:
            tracer.record(0.0, "executor", "point_cached", (task.kind,))

    def run_one(self, task: PointTask) -> Point:
        """Convenience wrapper: run a single task."""
        return self.run([task])[0]

    # ----------------------------------------------------------- replication
    @staticmethod
    def _replicate_task(task: PointTask, index: int) -> PointTask:
        """``task`` reseeded for replicate ``index``.

        Replicate 0 is the task itself — same seed, same cache key — so
        warm single-shot caches feed replicated runs and vice versa.
        """
        if index == 0:
            return task
        return dataclasses.replace(
            task, system=replicate_system(task.system, index)
        )

    def _run_replicated(
        self, tasks: List[PointTask], reps: int, ci_width: Optional[float]
    ) -> List[Any]:
        """Run each task as replicated sub-runs on named RNG substreams.

        Rounds of replicates are batched *across* points (one
        :meth:`_run_base` call per round) so the worker pool stays full
        even in adaptive designs.  Raw replicate points are cached
        individually by :meth:`_run_base`; the aggregated points returned
        here (replicate 0 plus a ``replication`` summary) are recomputed
        per run and never cached, so two invocations over the same cache
        report identical summaries.
        """
        rule = StoppingRule(max_reps=reps, ci_width=ci_width)
        results: List[Any] = [None] * len(tasks)
        first_for_key: Dict[str, int] = {}
        duplicates: List[Tuple[int, int]] = []
        active: List[Tuple[int, PointTask]] = []
        salt = code_salt()
        for i, task in enumerate(tasks):
            key = task_key(task, salt)
            if key in first_for_key:
                duplicates.append((i, first_for_key[key]))
                continue
            first_for_key[key] = i
            active.append((i, task))

        samples: Dict[int, List[Any]] = {i: [] for i, _task in active}
        while active:
            batch: List[PointTask] = []
            owners: List[int] = []
            for i, task in active:
                have = len(samples[i])
                target = rule.initial_reps if have == 0 else have + 1
                for r in range(have, target):
                    batch.append(self._replicate_task(task, r))
                    owners.append(i)
            for owner, point in zip(owners, self._run_base(batch)):
                samples[owner].append(point)
            still: List[Tuple[int, PointTask]] = []
            for i, task in active:
                verdict = rule.decide(
                    [p.availability for p in samples[i]]
                )
                if verdict is None:
                    still.append((i, task))
                else:
                    results[i] = self._aggregate(task, samples[i], verdict)
            active = still
        for i, j in duplicates:
            results[i] = dataclasses.replace(results[j])
        return results

    def _aggregate(
        self, task: PointTask, points: Sequence[Any], reason: str
    ) -> Any:
        """Fold one point's replicates into replicate 0 + summary.

        On deterministic systems every replicate must reproduce replicate
        0 bit for bit; divergences are recorded in
        :attr:`disagreements`.  Stochastic systems (fault injection
        armed) skip the check — their replicates legitimately differ and
        carry genuine CIs instead.
        """
        docs = [p.to_dict() for p in points]
        n_disagreements = 0
        if not is_stochastic(task.system):
            for index, fields in find_disagreements(docs):
                n_disagreements += 1
                self.disagreements.append(Disagreement(
                    kind=task.kind,
                    system=task.system.name,
                    replicate_index=index,
                    fields=fields,
                ))
        summary = summarize_replicates(
            docs, reason, disagreements=n_disagreements
        )
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("executor.replicates").inc(len(points))
            metrics.histogram(
                "executor.replicates_per_point", _REPLICATE_BUCKETS
            ).observe(float(len(points)))
            metrics.counter(_STOP_COUNTERS[reason]).inc()
            if n_disagreements:
                metrics.counter("executor.replication.disagreements").inc(
                    n_disagreements
                )
        return dataclasses.replace(points[0], replication=summary)

    # -------------------------------------------------------------- plumbing
    def _lookup(self, key: str, kind: str) -> Optional[Point]:
        if self.memoize and key in self._memo:
            self.stats.hits += 1
            return dataclasses.replace(self._memo[key])
        if self.cache is not None:
            point = self.cache.get(key, kind)
            self.stats.evictions = self.cache.evictions - self._evictions_base
            if point is not None:
                self.stats.hits += 1
                if self.memoize:
                    self._memo[key] = dataclasses.replace(point)
                return point
        self.stats.misses += 1
        return None

    def _lookup_profiled(self, key: str, kind: str) -> Optional[Point]:
        """:meth:`_lookup` wrapped in wall-clock metrics (``metrics`` set)."""
        metrics = self.metrics
        assert metrics is not None
        evictions_before = self.stats.evictions
        t0_wall = time.perf_counter()
        point = self._lookup(key, kind)
        wall_s = time.perf_counter() - t0_wall
        if point is not None:
            metrics.counter("executor.cache.hits").inc()
            metrics.histogram(
                "executor.lookup_hit_s", DEFAULT_LATENCY_BUCKETS_S
            ).observe(wall_s)
        else:
            metrics.counter("executor.cache.misses").inc()
            metrics.histogram(
                "executor.lookup_miss_s", DEFAULT_LATENCY_BUCKETS_S
            ).observe(wall_s)
        evicted = self.stats.evictions - evictions_before
        if evicted:
            metrics.counter("executor.cache.evictions").inc(evicted)
        return point

    def _store(self, key: str, kind: str, point: Point) -> None:
        if self.memoize:
            self._memo[key] = dataclasses.replace(point)
        if self.cache is not None:
            self.cache.put(key, kind, point)

    def _simulate(
        self,
        tasks: Sequence[PointTask],
        keys: Optional[Sequence[str]] = None,
    ) -> List[Any]:
        metrics = self.metrics
        telemetry = self.telemetry
        timed = metrics is not None or telemetry is not None or self.point_log
        live_entry = telemetry is not None and keys is not None
        t_batch0_s = time.perf_counter() if timed else 0.0
        entry = partial(_sim_entry, check=self.check, timed=timed)
        pooled = self.jobs > 1 and len(tasks) > 1
        if pooled:
            pool = self._get_pool(len(tasks))
            # chunksize=1: tasks are coarse (whole simulations); dynamic
            # dispatch balances wildly uneven point costs.  pool.map keeps
            # result order == task order, preserving determinism.
            if live_entry:
                assert keys is not None
                raw = pool.map(
                    partial(_sim_entry_live, check=self.check, timed=timed),
                    list(zip(tasks, keys)),
                    chunksize=1,
                )
            else:
                raw = pool.map(entry, tasks, chunksize=1)
        else:
            if telemetry is not None and not _live.worker_armed():
                # Serial path: the parent is the (sole) worker — arm it
                # so lifecycle events and heartbeats flow the same way.
                _live.arm_worker(telemetry.queue, telemetry.heartbeat_s)
                self._armed_serial = True
            # With an ambient observer, bracket each point's event stream
            # with markers so attribution (repro.obs.attribution) can cut
            # the merged stream back into sweep points.  Markers are
            # emitted *around* simulation — they never touch it.
            obs = current_observer()
            tracer = obs.tracer if obs is not None else None
            if tracer is None and not live_entry:
                raw = [entry(t) for t in tasks]
            else:
                assert keys is not None or not live_entry
                raw = []
                for idx, t in enumerate(tasks):
                    if tracer is not None:
                        tracer.record(0.0, "executor", "point_start",
                                      _point_marker(t))
                    if live_entry:
                        assert keys is not None
                        raw.append(_sim_entry_live(
                            (t, keys[idx]), check=self.check, timed=timed
                        ))
                    else:
                        raw.append(entry(t))
                    if tracer is not None:
                        tracer.record(0.0, "executor", "point_end",
                                      (t.kind,))
        points: List[Any] = []
        busy_s = 0.0
        for point, violations, wall_s in raw:
            points.append(point)
            if violations:
                self.violations.extend(violations)
            busy_s += wall_s
        self._last_walls_s = [wall_s for _point, _violations, wall_s in raw]
        # Drain unconditionally so counts never leak into a later executor;
        # pooled points tallied in worker processes are lost by design (see
        # repro.core.accounting).
        events = drain_events()
        if metrics is not None:
            if events:
                metrics.counter("sim.events_processed").inc(events)
            batch_wall_s = time.perf_counter() - t_batch0_s
            metrics.counter("executor.batches").inc()
            metrics.counter("executor.points_simulated").inc(len(tasks))
            metrics.counter("executor.simulate_wall_s").inc(batch_wall_s)
            task_hist = metrics.histogram(
                "executor.task_wall_s", DEFAULT_LATENCY_BUCKETS_S
            )
            for _point, _violations, wall_s in raw:
                task_hist.observe(wall_s)
            # Fraction of the batch's worker-slot capacity spent simulating
            # (1.0 = perfectly packed; low values = stragglers or idle
            # workers).  Serial batches have exactly one slot.
            slots = self._pool_size if pooled else 1
            if batch_wall_s > 0:
                metrics.gauge("executor.fanout_utilization").set(
                    busy_s / (batch_wall_s * slots)
                )
        return points


# --------------------------------------------------------- default resolution
_default_executor: Optional[SweepExecutor] = None
_active_stack: List[SweepExecutor] = []


def default_executor() -> SweepExecutor:
    """The process-wide serial executor (created on first use)."""
    global _default_executor
    if _default_executor is None:
        _default_executor = SweepExecutor(jobs=1, cache=None)
    return _default_executor


def current_executor(explicit: Optional[SweepExecutor] = None) -> SweepExecutor:
    """Resolve the executor for a sweep call.

    Priority: explicit argument > innermost :func:`use_executor` context >
    process-wide serial default.
    """
    if explicit is not None:
        return explicit
    if _active_stack:
        return _active_stack[-1]
    return default_executor()


@contextmanager
def use_executor(executor: Optional[SweepExecutor]) -> Iterator[Optional[SweepExecutor]]:
    """Make ``executor`` ambient for the dynamic extent of the block.

    ``None`` is accepted (and is a no-op) so callers can write
    ``with use_executor(maybe_executor):`` unconditionally.
    """
    if executor is None:
        yield None
        return
    _active_stack.append(executor)
    try:
        yield executor
    finally:
        _active_stack.pop()
