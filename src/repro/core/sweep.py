"""Parameter-sweep drivers for the two COMB methods.

Each point runs on a fresh world, so sweeps are embarrassingly independent
and fully deterministic.  The drivers build picklable
:class:`~repro.core.executor.PointTask` records and hand them to a
:class:`~repro.core.executor.SweepExecutor` — serial by default, parallel
and/or cached when the caller (or an ambient :func:`use_executor` context)
provides one.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..config import SystemConfig
from .executor import PointTask, SweepExecutor, current_executor
from .polling import PollingConfig, run_polling
from .pww import PwwConfig, run_pww
from .results import PollingPoint, PwwPoint, Series


def log_intervals(lo: float, hi: float, per_decade: int = 3) -> List[int]:
    """Log-spaced integer interval values from ``lo`` to ``hi`` inclusive.

    Adjacent grid values that round to the same integer are deduplicated
    (order-preserving), and both endpoints always survive the dedup.
    """
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    if lo <= 0 or hi < lo:
        raise ValueError("need 0 < lo <= hi")
    n = int(round(np.log10(hi / lo) * per_decade)) + 1
    raw = np.round(np.logspace(np.log10(lo), np.log10(hi), max(n, 2))).astype(int)
    # logspace is nondecreasing and rounding preserves that, so an
    # order-preserving adjacent dedup is a full dedup — and, unlike
    # ``np.unique``, it visibly keeps the rounded endpoints raw[0] and
    # raw[-1] in place.
    vals: List[int] = []
    for v in raw:
        iv = int(v)
        if iv >= 1 and (not vals or iv != vals[-1]):
            vals.append(iv)
    return vals


def polling_tasks(
    system: SystemConfig,
    msg_bytes: int,
    intervals: Sequence[int],
    base: Optional[PollingConfig] = None,
) -> List[PointTask]:
    """Task records for a polling sweep (one per interval)."""
    base = base or PollingConfig(msg_bytes=msg_bytes)
    return [
        PointTask(
            "polling",
            system,
            dataclasses.replace(base, msg_bytes=msg_bytes, poll_interval_iters=int(p)),
        )
        for p in intervals
    ]


def pww_tasks(
    system: SystemConfig,
    msg_bytes: int,
    intervals: Sequence[int],
    base: Optional[PwwConfig] = None,
) -> List[PointTask]:
    """Task records for a PWW sweep (one per work interval)."""
    base = base or PwwConfig(msg_bytes=msg_bytes)
    return [
        PointTask(
            "pww",
            system,
            dataclasses.replace(base, msg_bytes=msg_bytes, work_interval_iters=int(w)),
        )
        for w in intervals
    ]


def polling_sweep(
    system: SystemConfig,
    msg_bytes: int,
    intervals: Sequence[int],
    base: Optional[PollingConfig] = None,
    label: Optional[str] = None,
    executor: Optional[SweepExecutor] = None,
) -> Series:
    """Run the polling method across ``intervals`` for one message size."""
    series = Series(label or f"{system.name} {msg_bytes // 1024} KB")
    ex = current_executor(executor)
    series.points.extend(ex.run(polling_tasks(system, msg_bytes, intervals, base)))
    return series


def pww_sweep(
    system: SystemConfig,
    msg_bytes: int,
    intervals: Sequence[int],
    base: Optional[PwwConfig] = None,
    label: Optional[str] = None,
    executor: Optional[SweepExecutor] = None,
) -> Series:
    """Run the PWW method across work ``intervals`` for one message size."""
    series = Series(label or f"{system.name} {msg_bytes // 1024} KB")
    ex = current_executor(executor)
    series.points.extend(ex.run(pww_tasks(system, msg_bytes, intervals, base)))
    return series
