"""Parameter-sweep drivers for the two COMB methods.

Each point runs on a fresh world, so sweeps are embarrassingly independent
and fully deterministic.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..config import SystemConfig
from .polling import PollingConfig, run_polling
from .pww import PwwConfig, run_pww
from .results import PollingPoint, PwwPoint, Series


def log_intervals(lo: float, hi: float, per_decade: int = 3) -> List[int]:
    """Log-spaced integer interval values from ``lo`` to ``hi`` inclusive."""
    if lo <= 0 or hi < lo:
        raise ValueError("need 0 < lo <= hi")
    n = int(round(np.log10(hi / lo) * per_decade)) + 1
    vals = np.unique(
        np.round(np.logspace(np.log10(lo), np.log10(hi), max(n, 2))).astype(int)
    )
    return [int(v) for v in vals if v >= 1]


def polling_sweep(
    system: SystemConfig,
    msg_bytes: int,
    intervals: Sequence[int],
    base: Optional[PollingConfig] = None,
    label: Optional[str] = None,
) -> Series:
    """Run the polling method across ``intervals`` for one message size."""
    base = base or PollingConfig(msg_bytes=msg_bytes)
    series = Series(label or f"{system.name} {msg_bytes // 1024} KB")
    for p in intervals:
        cfg = dataclasses.replace(
            base, msg_bytes=msg_bytes, poll_interval_iters=int(p)
        )
        series.points.append(run_polling(system, cfg))
    return series


def pww_sweep(
    system: SystemConfig,
    msg_bytes: int,
    intervals: Sequence[int],
    base: Optional[PwwConfig] = None,
    label: Optional[str] = None,
) -> Series:
    """Run the PWW method across work ``intervals`` for one message size."""
    base = base or PwwConfig(msg_bytes=msg_bytes)
    series = Series(label or f"{system.name} {msg_bytes // 1024} KB")
    for w in intervals:
        cfg = dataclasses.replace(
            base, msg_bytes=msg_bytes, work_interval_iters=int(w)
        )
        series.points.append(run_pww(system, cfg))
    return series
