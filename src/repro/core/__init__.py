"""COMB core: the paper's benchmark suite (polling + post-work-wait)."""

from .polling import COMB_TAG, PollingConfig, run_polling
from .pww import PwwBatch, PwwConfig, run_pww, run_pww_batches
from .results import PollingPoint, PwwPoint, Series
from .suite import (
    CombSuite,
    OffloadVerdict,
    PAPER_SIZES,
    POLL_GRID,
    WORK_GRID,
)
from .sweep import log_intervals, polling_sweep, pww_sweep
from .workloop import DRY_RUN_ITERS, dry_run_iter_time, work_time

__all__ = [
    "COMB_TAG",
    "CombSuite",
    "DRY_RUN_ITERS",
    "OffloadVerdict",
    "PAPER_SIZES",
    "POLL_GRID",
    "PollingConfig",
    "PollingPoint",
    "PwwBatch",
    "PwwConfig",
    "PwwPoint",
    "Series",
    "WORK_GRID",
    "dry_run_iter_time",
    "log_intervals",
    "polling_sweep",
    "pww_sweep",
    "run_polling",
    "run_pww",
    "run_pww_batches",
    "work_time",
]
