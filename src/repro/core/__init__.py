"""COMB core: the paper's benchmark suite (polling + post-work-wait)."""

from .executor import (
    CacheStats,
    DEFAULT_CACHE_DIR,
    PointCache,
    PointTask,
    SweepExecutor,
    current_executor,
    default_executor,
    run_task,
    task_key,
    use_executor,
)
from .polling import COMB_TAG, PollingConfig, run_polling
from .pww import PwwBatch, PwwConfig, run_pww, run_pww_batches
from .results import PollingPoint, PwwPoint, Series
from .suite import (
    CombSuite,
    OffloadVerdict,
    PAPER_SIZES,
    POLL_GRID,
    WORK_GRID,
)
from .sweep import log_intervals, polling_sweep, polling_tasks, pww_sweep, pww_tasks
from .workloop import DRY_RUN_ITERS, dry_run_iter_time, work_time

__all__ = [
    "COMB_TAG",
    "CacheStats",
    "CombSuite",
    "DEFAULT_CACHE_DIR",
    "DRY_RUN_ITERS",
    "OffloadVerdict",
    "PAPER_SIZES",
    "POLL_GRID",
    "PointCache",
    "PointTask",
    "PollingConfig",
    "PollingPoint",
    "PwwBatch",
    "PwwConfig",
    "PwwPoint",
    "Series",
    "SweepExecutor",
    "WORK_GRID",
    "current_executor",
    "default_executor",
    "dry_run_iter_time",
    "log_intervals",
    "polling_sweep",
    "polling_tasks",
    "pww_sweep",
    "pww_tasks",
    "run_polling",
    "run_pww",
    "run_pww_batches",
    "run_task",
    "task_key",
    "use_executor",
    "work_time",
]
