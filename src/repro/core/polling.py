"""The COMB Polling Method (paper §2.1, Figs 1–2).

Two processes on two nodes exchange a queue of messages ping-pong style.
The *worker* interleaves fixed work intervals with completion polls: after
every ``poll_interval`` loop iterations it tests its outstanding receives;
each completed message is answered immediately (reply sent, receive
re-posted).  The *support* process only does message passing, answering as
fast as messages arrive.  Because the worker never blocks, the method
reports an unfettered trade-off between bandwidth and CPU availability as
the poll interval varies.

Simulation note: runs of *empty* poll cycles (work + negative test) are
deterministic, so they are aggregated (:mod:`repro.core.quiescence`) into a
single CPU occupation that
ends — rounded up to the cycle boundary — when the device signals activity.
This is exact with respect to the method's semantics (a completion is
always discovered at a poll boundary) and keeps event counts proportional
to message traffic rather than poll frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..config import SystemConfig
from ..mpi.request import Request
from ..mpi.world import World, build_world
from ..sim.units import msec
from .accounting import tally_events
from .quiescence import absorb_empty_cycles
from .results import PollingPoint
from .workloop import work_time

#: Message tag used by the benchmark streams.
COMB_TAG = 11


@dataclass
class PollingConfig:
    """Parameters of one polling-method measurement."""

    #: Message payload size.
    msg_bytes: int = 100 * 1024
    #: Work-loop iterations between completion polls (the method's primary
    #: variable; the paper sweeps 10^1 … 10^8).
    poll_interval_iters: int = 10_000
    #: Messages kept in flight per direction (the paper's message queue;
    #: depth 1 degenerates to a plain ping-pong test).
    queue_depth: int = 4
    #: Minimum simulated warmup before the measurement window opens.
    warmup_s: float = msec(5)
    #: Minimum length of the measurement window.
    measure_s: float = msec(30)
    #: The window is stretched so it spans at least this many poll cycles
    #: (matters when the poll interval exceeds ``measure_s``).
    min_cycles: int = 6


class _WorkerState:
    """Mutable measurement bookkeeping shared with the driver."""

    def __init__(self) -> None:
        self.result: Optional[PollingPoint] = None


def run_polling(system: SystemConfig, cfg: PollingConfig) -> PollingPoint:
    """Run one polling-method point on a fresh world and return it."""
    if cfg.poll_interval_iters <= 0:
        raise ValueError("poll interval must be positive")
    if cfg.queue_depth < 1:
        raise ValueError("queue depth must be >= 1")
    world = build_world(system)
    state = _WorkerState()
    worker = world.engine.spawn(
        _worker(world, cfg, state), name="comb.polling.worker"
    )
    world.engine.spawn(_support(world, cfg), name="comb.polling.support")
    world.engine.run(worker)
    tally_events(world.engine.events_processed)
    assert state.result is not None
    return state.result


def _worker(
    world: World, cfg: PollingConfig, state: _WorkerState
) -> Iterator[object]:
    engine = world.engine
    system = world.system
    node = world.cluster[0]
    ctx = node.new_context("comb.worker")
    h = world.endpoint(0).bind(ctx)
    dev = h.device
    cpu = ctx.cpu

    # Tracer seam (observability): hoisted so the detached path pays one
    # ``is None`` check per poll and nothing else.
    trace = engine.trace

    iter_s = system.machine.cpu.work_iter_s
    p_iters = cfg.poll_interval_iters
    work_s = p_iters * iter_s
    # A negative test costs one (empty) progress pass.
    empty_poll_s = _empty_poll_cost(system)
    cycle_s = work_s + empty_poll_s

    # ------------------------------------------------------------- pipeline
    recv_reqs: List[Request] = []
    for _ in range(cfg.queue_depth):
        r = yield from h.irecv(src=1, nbytes=cfg.msg_bytes, tag=COMB_TAG)
        recv_reqs.append(r)
    for _ in range(cfg.queue_depth):
        yield from h.isend(1, cfg.msg_bytes, tag=COMB_TAG)

    # ----------------------------------------------------------- main loop
    iters_done = 0.0
    polls = 0
    measuring = False
    t_start_s = 0.0
    iters_start = 0.0
    polls_start = 0
    stats_start = None
    irq_start = 0
    warmup_end = engine.now + max(cfg.warmup_s, 3 * cycle_s)
    t_end_s = float("inf")

    while True:
        # One work interval then a completion test (Fig 1's inner loop +
        # poll).  Runs of empty cycles are aggregated below.
        yield ctx.compute(work_s)
        iters_done += p_iters
        done_idx = yield from h.testsome(recv_reqs)
        polls += 1
        if trace is not None:
            # Schema: (completions,) — 0 is a miss, > 0 a hit.
            trace.record(engine.now, "rank0.polling", "poll", (len(done_idx),))
        if done_idx:
            for i in done_idx:
                # Answer each arrived message and replace the receive.
                yield from h.isend(1, cfg.msg_bytes, tag=COMB_TAG)
                recv_reqs[i] = yield from h.irecv(
                    src=1, nbytes=cfg.msg_bytes, tag=COMB_TAG
                )
        elif not dev.has_work() and not any(r.done for r in recv_reqs):
            # Nothing to do until the device signals: spin through whole
            # empty poll cycles, then land exactly on a cycle boundary.
            # A horizon bounds the spin at the warmup/measurement edge so a
            # fully stalled pipeline cannot overshoot the window.
            horizon_at = t_end_s if measuring else warmup_end
            cycles = yield from absorb_empty_cycles(
                cpu, ctx, dev, cycle_s, horizon_at
            )
            if cycles:
                iters_done += cycles * p_iters
                polls += cycles
                if trace is not None:
                    # Schema: (empty_cycles,) — an aggregated run of
                    # misses ending at the cycle boundary just computed.
                    trace.record(engine.now, "rank0.polling", "poll_empty",
                                 (cycles,))

        # ------------------------------------------------- window control
        now = engine.now
        if not measuring:
            if now >= warmup_end:
                measuring = True
                t_start_s = now
                iters_start = iters_done
                polls_start = polls
                stats_start = dev.stats.snapshot()
                irq_start = node.irq.count
                t_end_s = t_start_s + max(cfg.measure_s, cfg.min_cycles * cycle_s)
        elif now >= t_end_s:
            break

    elapsed_s = engine.now - t_start_s
    iters = iters_done - iters_start
    if trace is not None:
        # Schema: (t_start_s, elapsed_s, work_total_s, polls, empty_poll_s)
        # — the measurement window in one record, so attribution can
        # decompose availability loss without re-deriving the window.
        trace.record(engine.now, "rank0.polling", "poll_window",
                     (t_start_s, elapsed_s, work_time(system, iters),
                      polls - polls_start, empty_poll_s))
    delta = dev.stats.delta(stats_start)
    payload = delta.bytes_send_done + delta.bytes_recv_done
    state.result = PollingPoint(
        system=system.name,
        msg_bytes=cfg.msg_bytes,
        poll_interval_iters=p_iters,
        availability=work_time(system, iters) / elapsed_s,
        bandwidth_Bps=payload / elapsed_s,
        elapsed_s=elapsed_s,
        iters=iters,
        polls=polls - polls_start,
        msgs=delta.msgs_send_done + delta.msgs_recv_done,
        interrupts=node.irq.count - irq_start,
    )


def _support(world: World, cfg: PollingConfig) -> Iterator[object]:
    """The support process: pure message passing, replies immediately."""
    ctx = world.cluster[1].new_context("comb.support")
    h = world.endpoint(1).bind(ctx)
    recv_reqs: List[Request] = []
    for _ in range(cfg.queue_depth):
        r = yield from h.irecv(src=0, nbytes=cfg.msg_bytes, tag=COMB_TAG)
        recv_reqs.append(r)
    for _ in range(cfg.queue_depth):
        yield from h.isend(0, cfg.msg_bytes, tag=COMB_TAG)
    while True:
        yield from h.waitany(recv_reqs)
        for i, r in enumerate(recv_reqs):
            if r.done:
                yield from h.isend(0, cfg.msg_bytes, tag=COMB_TAG)
                recv_reqs[i] = yield from h.irecv(
                    src=0, nbytes=cfg.msg_bytes, tag=COMB_TAG
                )


def _empty_poll_cost(system: SystemConfig) -> float:
    """Cost of a negative MPI_Test (one empty progress pass)."""
    from ..config import TransportKind

    if system.transport is TransportKind.GM:
        return system.gm.progress_poll_s
    if system.transport is TransportKind.PORTALS:
        return system.portals.progress_poll_s
    return system.tcp.progress_poll_s
