"""The COMB Post-Work-Wait (PWW) Method (paper §2.2, Fig 3).

Each cycle the worker: (1) posts a batch of non-blocking receives and
sends, (2) computes for a fixed *work interval* making **no** MPI calls,
(3) waits for the whole batch.  The strict post→work→wait order means the
underlying system can only overlap communication with the work phase if it
progresses messages without library intervention — i.e. if it provides
*application offload*.  Per-phase wall-clock durations are recorded; they
localize where host time goes (Figs 10–13).

Variants (paper §4.3):

* ``tests_in_work > 0`` inserts that many ``MPI_Test`` calls early in the
  work phase (Fig 17) — with a library-polled stack this single call is
  enough to launch the rendezvous data transfer and recover overlap.
* ``interleave > 1`` keeps several batches outstanding (the older PWW
  formulation the paper describes as redundant with the polling method).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from ..config import SystemConfig
from ..mpi.request import Request
from ..mpi.world import World, build_world
from .accounting import tally_events
from .quiescence import quiescent_compute
from .results import PwwPoint
from .workloop import work_time

#: Message tag used by the benchmark streams.
COMB_TAG = 12


@dataclass
class PwwConfig:
    """Parameters of one PWW measurement."""

    #: Message payload size.
    msg_bytes: int = 100 * 1024
    #: Work-loop iterations in the work phase (the method's primary
    #: variable; the paper sweeps ~10^3 … 10^8).
    work_interval_iters: int = 100_000
    #: Messages per batch per direction (1 in the paper's final method).
    batch_msgs: int = 1
    #: Batches measured (after warmup).
    batches: int = 12
    #: Batches discarded as warmup.
    warmup_batches: int = 3
    #: ``MPI_Test`` calls inserted early in the work phase (Fig 17).
    tests_in_work: int = 0
    #: Fraction of the work interval executed before the first inserted
    #: test ("early in the work phase").
    test_at_frac: float = 0.1
    #: Outstanding batches (legacy interleaved formulation; 1 = paper's).
    interleave: int = 1


@dataclass
class PwwBatch:
    """Wall-clock phase durations of one PWW cycle."""

    post_s: float
    work_s: float
    wait_s: float


class _PwwState:
    def __init__(self) -> None:
        self.result: Optional[PwwPoint] = None
        self.batches: List[PwwBatch] = []


def run_pww(system: SystemConfig, cfg: PwwConfig) -> PwwPoint:
    """Run one PWW point on a fresh world and return it."""
    if cfg.work_interval_iters < 0:
        raise ValueError("work interval must be non-negative")
    if cfg.batch_msgs < 1 or cfg.batches < 1 or cfg.interleave < 1:
        raise ValueError("batch_msgs, batches and interleave must be >= 1")
    if not (0.0 <= cfg.test_at_frac <= 1.0):
        raise ValueError("test_at_frac must be within [0, 1]")
    world = build_world(system)
    state = _PwwState()
    worker = world.engine.spawn(_worker(world, cfg, state), name="comb.pww.worker")
    world.engine.spawn(_support(world, cfg), name="comb.pww.support")
    world.engine.run(worker)
    tally_events(world.engine.events_processed)
    assert state.result is not None
    return state.result


def run_pww_batches(system: SystemConfig, cfg: PwwConfig) -> List[PwwBatch]:
    """Like :func:`run_pww` but returning the per-batch phase records."""
    world = build_world(system)
    state = _PwwState()
    worker = world.engine.spawn(_worker(world, cfg, state), name="comb.pww.worker")
    world.engine.spawn(_support(world, cfg), name="comb.pww.support")
    world.engine.run(worker)
    return state.batches


def _worker(
    world: World, cfg: PwwConfig, state: _PwwState
) -> Iterator[object]:
    engine = world.engine
    system = world.system
    node = world.cluster[0]
    ctx = node.new_context("comb.pww.worker")
    cpu = ctx.cpu
    h = world.endpoint(0).bind(ctx)
    # Tracer seam (observability): hoisted so the detached path pays one
    # ``is None`` check per batch and nothing else.
    trace = engine.trace

    iter_s = system.machine.cpu.work_iter_s
    work_dry_s = cfg.work_interval_iters * iter_s
    total_batches = cfg.warmup_batches + cfg.batches

    records: List[PwwBatch] = []
    t_meas_start_s = None
    stats_start = None
    irq_start = 0

    # Legacy interleaving: keep a backlog of posted batches; wait on the
    # oldest once `interleave` batches are outstanding.
    backlog: List[List[Request]] = []

    for b in range(total_batches):
        if b == cfg.warmup_batches:
            t_meas_start_s = engine.now
            stats_start = h.device.stats.snapshot()
            irq_start = node.irq.count

        t0 = engine.now
        reqs: List[Request] = []
        for _ in range(cfg.batch_msgs):
            r = yield from h.irecv(src=1, nbytes=cfg.msg_bytes, tag=COMB_TAG)
            reqs.append(r)
        for _ in range(cfg.batch_msgs):
            s = yield from h.isend(1, cfg.msg_bytes, tag=COMB_TAG)
            reqs.append(s)
        backlog.append(reqs)
        t1 = engine.now

        # ---------------------------------------------------- work phase
        if cfg.tests_in_work > 0 and cfg.work_interval_iters > 0:
            head = cfg.work_interval_iters * cfg.test_at_frac
            yield ctx.compute(head * iter_s)
            for _ in range(cfg.tests_in_work):
                yield from h.testsome(reqs)
            yield ctx.compute((cfg.work_interval_iters - head) * iter_s)
        else:
            # No MPI calls in the work phase: when the node is otherwise
            # silent (offload drained, no kernel work pending) the span is
            # quiescent and the clock jumps it in one step.
            yield from quiescent_compute(cpu, ctx, work_dry_s)
        t2 = engine.now

        # ---------------------------------------------------- wait phase
        if len(backlog) >= cfg.interleave:
            oldest = backlog.pop(0)
            yield from h.waitall(oldest)
        t3 = engine.now
        records.append(PwwBatch(post_s=t1 - t0, work_s=t2 - t1, wait_s=t3 - t2))
        if trace is not None:
            # Schema: (batch_index, cycle_start_s, post_s, work_s, wait_s).
            trace.record(t3, "rank0.pww", "pww_phase",
                         (b, t0, t1 - t0, t2 - t1, t3 - t2))

    # Drain any interleaved leftovers outside the measurement (the last
    # measured batch's wait already happened above when interleave == 1).
    for reqs in backlog:
        yield from h.waitall(reqs)

    measured = records[cfg.warmup_batches:]
    # With interleave == 1 the backlog drain above was a no-op, so this is
    # exactly the sum of the measured cycles; with interleave > 1 it also
    # covers the tail drain (in-flight batches the window paid for).
    elapsed_s = engine.now - t_meas_start_s
    delta = h.device.stats.delta(stats_start)
    payload = delta.bytes_send_done + delta.bytes_recv_done
    state.batches = measured
    state.result = PwwPoint(
        system=system.name,
        msg_bytes=cfg.msg_bytes,
        work_interval_iters=cfg.work_interval_iters,
        availability=(len(measured) * work_dry_s) / elapsed_s,
        bandwidth_Bps=payload / elapsed_s,
        elapsed_s=elapsed_s,
        batches=len(measured),
        post_s=float(np.mean([r.post_s for r in measured])),
        work_s=float(np.mean([r.work_s for r in measured])),
        wait_s=float(np.mean([r.wait_s for r in measured])),
        work_dry_s=work_dry_s,
        batch_msgs=cfg.batch_msgs,
        tests_in_work=cfg.tests_in_work,
        interrupts=node.irq.count - irq_start,
    )


def _support(world: World, cfg: PwwConfig) -> Iterator[object]:
    """Mirror the worker's batches with no work phase."""
    ctx = world.cluster[1].new_context("comb.pww.support")
    h = world.endpoint(1).bind(ctx)
    while True:
        reqs: List[Request] = []
        for _ in range(cfg.batch_msgs):
            r = yield from h.irecv(src=0, nbytes=cfg.msg_bytes, tag=COMB_TAG)
            reqs.append(r)
        for _ in range(cfg.batch_msgs):
            s = yield from h.isend(0, cfg.msg_bytes, tag=COMB_TAG)
            reqs.append(s)
        yield from h.waitall(reqs)
