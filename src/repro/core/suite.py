"""The COMB suite driver: both methods plus derived analyses.

:class:`CombSuite` is the high-level entry point a user of the library
reaches for first::

    from repro import CombSuite, gm_system

    suite = CombSuite(gm_system())
    point = suite.polling(msg_bytes=100 * 1024, poll_interval_iters=10_000)
    curve = suite.polling_curve(msg_bytes=100 * 1024)
    print(suite.offload_report(msg_bytes=100 * 1024))
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, cast

from ..config import SystemConfig
from .executor import PointTask, SweepExecutor, current_executor
from .polling import PollingConfig, run_polling
from .pww import PwwConfig, run_pww
from .results import PollingPoint, PwwPoint, Series
from .sweep import log_intervals, polling_sweep, pww_sweep

#: Message sizes the paper sweeps (its "10 KB … 300 KB").
PAPER_SIZES = (10 * 1024, 50 * 1024, 100 * 1024, 300 * 1024)

#: Default poll-interval grid (paper: 10^1 … 10^8 loop iterations).
POLL_GRID = (1e1, 1e8)
#: Default work-interval grid (paper: ~10^3 … 10^8).
WORK_GRID = (1e3, 1e8)


@dataclass
class OffloadVerdict:
    """Outcome of the application-offload test (paper §4.1).

    A system *provides application offload* when, given a long enough work
    interval, the PWW wait phase collapses — communication finished during
    the work phase without library calls.
    """

    system: str
    msg_bytes: int
    offloaded: bool
    #: Wait time at a short work interval (communication-bound).
    wait_short_s: float
    #: Wait time at a work interval far exceeding the transfer time.
    wait_long_s: float
    #: Work-phase CPU overhead at the long interval (Figs 12–13 gap).
    overhead_long_s: float

    def summary(self) -> str:
        """One-line human-readable verdict."""
        kind = "provides" if self.offloaded else "does NOT provide"
        return (
            f"{self.system} ({self.msg_bytes // 1024} KB): {kind} application "
            f"offload (wait {self.wait_short_s * 1e6:.0f} µs → "
            f"{self.wait_long_s * 1e6:.0f} µs as work grows; work-phase "
            f"overhead {self.overhead_long_s * 1e6:.0f} µs)"
        )


class CombSuite:
    """COMB bound to one system preset.

    An optional :class:`~repro.core.executor.SweepExecutor` parallelizes
    and/or caches every measurement the suite runs; by default points run
    serially through the ambient executor (see
    :func:`~repro.core.executor.use_executor`).
    """

    def __init__(self, system: SystemConfig,
                 executor: Optional[SweepExecutor] = None) -> None:
        self.system = system
        self.executor = executor

    def _executor(self) -> SweepExecutor:
        return current_executor(self.executor)

    # -------------------------------------------------------- single points
    def polling(self, **kwargs: Any) -> PollingPoint:
        """One polling-method point (kwargs feed :class:`PollingConfig`)."""
        task = PointTask("polling", self.system, PollingConfig(**kwargs))
        return cast(PollingPoint, self._executor().run_one(task))

    def pww(self, **kwargs: Any) -> PwwPoint:
        """One PWW point (kwargs feed :class:`PwwConfig`)."""
        task = PointTask("pww", self.system, PwwConfig(**kwargs))
        return cast(PwwPoint, self._executor().run_one(task))

    # -------------------------------------------------------------- curves
    def polling_curve(
        self,
        msg_bytes: int,
        lo: float = POLL_GRID[0],
        hi: float = POLL_GRID[1],
        per_decade: int = 2,
        base: Optional[PollingConfig] = None,
    ) -> Series:
        """Polling bandwidth/availability curve over a log interval grid."""
        return polling_sweep(
            self.system, msg_bytes, log_intervals(lo, hi, per_decade),
            base=base, executor=self.executor,
        )

    def pww_curve(
        self,
        msg_bytes: int,
        lo: float = WORK_GRID[0],
        hi: float = WORK_GRID[1],
        per_decade: int = 2,
        base: Optional[PwwConfig] = None,
    ) -> Series:
        """PWW curve over a log work-interval grid."""
        return pww_sweep(
            self.system, msg_bytes, log_intervals(lo, hi, per_decade),
            base=base, executor=self.executor,
        )

    # ------------------------------------------------------------ analyses
    def offload_verdict(
        self,
        msg_bytes: int = 100 * 1024,
        short_iters: int = 10_000,
        long_iters: int = 10_000_000,
        wait_epsilon_s: float = 200e-6,
    ) -> OffloadVerdict:
        """Run the §4.1 application-offload test.

        Compares the PWW wait phase at a short and a very long work
        interval: offloaded systems drain the wait; library-polled systems
        keep paying the full transfer there.
        """
        short = self.pww(msg_bytes=msg_bytes, work_interval_iters=short_iters)
        long = self.pww(msg_bytes=msg_bytes, work_interval_iters=long_iters)
        return OffloadVerdict(
            system=self.system.name,
            msg_bytes=msg_bytes,
            offloaded=long.wait_s < max(wait_epsilon_s, 0.2 * short.wait_s),
            wait_short_s=short.wait_s,
            wait_long_s=long.wait_s,
            overhead_long_s=long.overhead_s,
        )

    def offload_report(self, msg_bytes: int = 100 * 1024) -> str:
        """Human-readable offload verdict."""
        return self.offload_verdict(msg_bytes=msg_bytes).summary()
