"""The calibrated work loop and its dry-run measurement.

COMB's unit of "computation" is an iteration of an empty delay loop.  The
*dry run* phase times the loop with no communication at all; that figure is
the numerator of the availability metric:

    availability = time(work without messaging)
                   / time(work plus MPI calls while messaging)
"""

from __future__ import annotations

from typing import Dict, Iterator

from ..config import SystemConfig
from ..hardware.cluster import Cluster
from ..sim.engine import Engine
from .quiescence import quiescent_compute

#: Iterations used by the honest dry-run measurement.
DRY_RUN_ITERS = 1_000_000


def dry_run_iter_time(system: SystemConfig) -> float:
    """Measure seconds per work-loop iteration on an otherwise idle node.

    This *runs* the loop through the simulated CPU rather than reading the
    configured constant, so scheduler or SMP effects (if any are configured)
    are captured — mirroring COMB's real dry-run phase.
    """
    engine = Engine()
    cluster = Cluster(engine, system, n_nodes=2)
    ctx = cluster[0].new_context("dryrun")
    iter_s = system.machine.cpu.work_iter_s
    result: Dict[str, float] = {}

    def loop() -> Iterator[object]:
        t0 = engine.now
        # The dry run is quiescence by construction — an idle node, one
        # context, nothing in flight — so the clock jumps the whole loop.
        yield from quiescent_compute(ctx.cpu, ctx, DRY_RUN_ITERS * iter_s)
        result["elapsed"] = engine.now - t0

    proc = engine.spawn(loop(), name="dryrun")
    engine.run(proc)
    return result["elapsed"] / DRY_RUN_ITERS


def work_time(system: SystemConfig, iters: float) -> float:
    """Dry (no-communication) duration of ``iters`` loop iterations."""
    return iters * system.machine.cpu.work_iter_s
