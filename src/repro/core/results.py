"""Result records produced by the COMB methods."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from ..sim.units import to_mbps


@dataclass
class PollingPoint:
    """One polling-method measurement (fixed system, size, poll interval)."""

    system: str
    msg_bytes: int
    poll_interval_iters: int
    #: CPU availability: time(work without messaging) / wall time.
    availability: float
    #: Aggregate payload bandwidth observed at the worker (both directions).
    bandwidth_Bps: float
    #: Wall-clock length of the measurement window (simulated seconds).
    elapsed_s: float
    #: Work-loop iterations executed inside the window.
    iters: float
    #: Poll (MPI_Test) boundaries inside the window.
    polls: int
    #: Messages completed inside the window (sends + receives).
    msgs: int
    #: Worker-side interrupt count delta (0 for OS-bypass transports).
    interrupts: int = 0
    #: Replication summary (``repro.stats.summarize_replicates`` shape)
    #: when this point aggregates replicated sub-runs; ``None`` for
    #: single-shot points, and omitted from ``to_dict`` so seed exports
    #: stay byte-identical.
    replication: Optional[Dict[str, Any]] = None

    @property
    def bandwidth_MBps(self) -> float:
        """Bandwidth in the paper's MB/s."""
        return to_mbps(self.bandwidth_Bps)

    def to_dict(self) -> dict:
        """Plain-dict form (CSV/JSON export)."""
        d = asdict(self)
        if d.get("replication") is None:
            d.pop("replication", None)
        d["bandwidth_MBps"] = self.bandwidth_MBps
        return d


@dataclass
class PwwPoint:
    """One post-work-wait measurement (fixed system, size, work interval)."""

    system: str
    msg_bytes: int
    work_interval_iters: int
    availability: float
    bandwidth_Bps: float
    elapsed_s: float
    batches: int
    #: Mean wall-clock duration of the non-blocking post phase, per batch.
    post_s: float
    #: Mean wall-clock duration of the work phase, per batch ("work with
    #: message handling", Figs 12–13).
    work_s: float
    #: Mean wall-clock duration of the wait phase, per batch.
    wait_s: float
    #: Work-phase duration with no communication at all ("work only").
    work_dry_s: float
    #: Messages per batch per direction.
    batch_msgs: int = 1
    #: MPI_Test calls inserted in the work phase (Fig 17 variant).
    tests_in_work: int = 0
    interrupts: int = 0
    #: Replication summary; see :class:`PollingPoint.replication`.
    replication: Optional[Dict[str, Any]] = None

    @property
    def bandwidth_MBps(self) -> float:
        """Bandwidth in the paper's MB/s."""
        return to_mbps(self.bandwidth_Bps)

    @property
    def post_per_msg_s(self) -> float:
        """Post-phase time per message posted (2 × batch per batch)."""
        return self.post_s / (2 * self.batch_msgs)

    @property
    def overhead_s(self) -> float:
        """Work-phase stretch caused by communication (Figs 12–13 gap)."""
        return self.work_s - self.work_dry_s

    def to_dict(self) -> dict:
        """Plain-dict form (CSV/JSON export)."""
        d = asdict(self)
        if d.get("replication") is None:
            d.pop("replication", None)
        d["bandwidth_MBps"] = self.bandwidth_MBps
        d["post_per_msg_s"] = self.post_per_msg_s
        d["overhead_s"] = self.overhead_s
        return d


@dataclass
class Series:
    """A labelled sequence of measurement points (one curve in a figure)."""

    label: str
    points: List[object] = field(default_factory=list)

    def xs(self, attr: str) -> List[float]:
        """Extract ``attr`` across points."""
        return [getattr(p, attr) for p in self.points]

    def __iter__(self) -> Iterator[object]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)
