"""Quiescence helpers: skip simulated time that provably contains nothing.

Discrete-event runs of the COMB methods spend most of their simulated time
*quiescent*: a worker grinding through poll cycles that all miss, or a work
interval on a node whose device has gone silent.  Simulating those spans
event-by-event makes the event count proportional to poll frequency rather
than message traffic.  The primitives here collapse such spans:

* :func:`absorb_empty_cycles` — the polling method's aggregation (paper
  §2.1): spin through whole empty poll cycles in one CPU occupation, then
  land exactly on a cycle boundary.  Extracted from ``core/polling.py`` so
  any poll-shaped driver can reuse it.
* :func:`quiescent_compute` — a drop-in for ``ctx.compute(seconds)`` that
  advances the clock analytically via :meth:`Engine.fast_forward` when the
  context is provably the only activity in the world, and falls back to
  the real compute path (same floats, same events) otherwise.

Both are exact with respect to the methods' semantics; both are gated by
the golden-drift bit-identity tests.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.cpu import CPU, CpuContext
    from ..transport.base import TransportDevice


def absorb_empty_cycles(
    cpu: "CPU",
    ctx: "CpuContext",
    dev: "TransportDevice",
    cycle_s: float,
    horizon_at: float,
) -> Iterator[object]:
    """Spin ``ctx`` through whole empty poll cycles until the device
    signals activity or ``horizon_at`` is reached, then land exactly on a
    poll-cycle boundary.  Returns the number of cycles absorbed (>= 1 when
    any spinning happened, 0 if the horizon had already passed).

    A cycle is ``work + negative test``; a completion is always discovered
    at a poll boundary, so rounding the spun time *up* to the next boundary
    is exact with respect to the polling method's semantics.  The horizon
    bounds the spin at the warmup/measurement edge so a fully stalled
    pipeline cannot overshoot the window.

    Use as ``cycles = yield from absorb_empty_cycles(...)``.
    """
    engine = cpu.engine
    remaining = horizon_at - engine.now
    if remaining <= 0:
        return 0
    wake = dev.wakeup()
    stop_ev = engine.any_of([wake, engine.timeout(remaining)])
    u0 = cpu.context_time(ctx)
    yield cpu.spin_until(ctx, stop_ev)
    spun = cpu.context_time(ctx) - u0
    cycles = math.floor(spun / cycle_s) + 1
    remainder = cycles * cycle_s - spun
    if remainder > 0:
        yield ctx.compute(remainder)
    return cycles


def quiescent_compute(
    cpu: "CPU", ctx: "CpuContext", seconds: float
) -> Iterator[object]:
    """Occupy ``ctx`` for ``seconds`` of user time, fast-forwarding the
    clock when the span is provably quiescent.

    The span is quiescent when this context is the only runnable activity
    (its CPU is fully idle) and no heap event precedes the end of the
    span — then nothing can preempt or interleave, the compute's only
    observable effect is ``now`` and the user-time counters advancing, and
    :meth:`Engine.fast_forward` performs the identical float arithmetic
    (``now + seconds``) without a heap round-trip.  Any pending activity
    falls back to ``ctx.compute`` — same floats, same events, bit-identical
    timing.

    Use as ``yield from quiescent_compute(cpu, ctx, seconds)``.
    """
    engine = cpu.engine
    parked = cpu._preempted
    now0 = engine._now
    if (
        seconds > 0.0
        and cpu._running is None
        and cpu._kernel_job is None
        and not cpu._ready
        and not cpu._kernel_queue
        and (parked is None or parked.ctx is ctx)
        and engine.fast_forward(now0 + seconds)
    ):
        # Replicate the timer path's accounting arithmetic: elapsed is the
        # difference of absolute instants, not the requested duration (the
        # two can differ by a ulp).
        elapsed_s = engine._now - now0
        ctx.user_time_s += elapsed_s
        cpu.user_time_s += elapsed_s
        return
    yield ctx.compute(seconds)
