"""Allreduce pattern: the implicit-solver iteration skeleton.

Each iteration works for the configured interval, then enters a global
reduction — the dot products and convergence checks that bound every
Krylov solve.  There is nothing to post ahead, so the cycle's post phase
is empty and the whole collective lands in the wait segment; overlap
comes only from inside the collective (progress during the tree/exchange
rounds), which is what makes the allreduce scaling curve the sharpest
contrast between library-polled and offloaded stacks.
"""

from __future__ import annotations

from typing import Iterator

from ..core.quiescence import quiescent_compute
from ..mpi.collectives import (
    allreduce,
    allreduce_msgs,
    allreduce_rd,
    allreduce_rd_msgs,
)
from .config import PatternConfig


def expected_allreduce_msgs(algorithm: str, nranks: int) -> int:
    """Analytic total message count of one allreduce invocation."""
    if algorithm == "rd":
        return allreduce_rd_msgs(nranks)
    return allreduce_msgs(nranks)


class AllreducePlan:
    """Per-rank work + allreduce iteration driver."""

    def __init__(self, cfg: PatternConfig, rank: int):
        self.nbytes = cfg.msg_bytes
        self.collective = allreduce_rd if cfg.algorithm == "rd" else allreduce

    def iteration(
        self, h, ctx, cpu, work_dry_s: float
    ) -> Iterator[object]:
        """One work → allreduce cycle; returns phase durations."""
        engine = cpu.engine
        t0 = engine.now
        yield from quiescent_compute(cpu, ctx, work_dry_s)
        t2 = engine.now
        yield from self.collective(h, self.nbytes)
        t3 = engine.now
        return (0.0, t2 - t0, t3 - t2)
