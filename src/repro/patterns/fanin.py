"""Fan-in pattern: the polling method with many support peers.

The paper measures one worker against one support process; real
applications talk to several neighbours at once.  This pattern runs the
polling method with ``n_peers`` support processes (one per extra node),
all streaming messages at the single worker.  It answers: how do the
worker's CPU availability and aggregate bandwidth scale as communication
partners multiply?

For kernel transports the answer compounds badly — every peer's packets
interrupt the same worker CPU — while OS-bypass stacks only saturate the
worker's host bus.

Formerly :mod:`repro.ext.multirank` (now a deprecation shim over this
module); the port adds an explicit :class:`~repro.hardware.topology.
Topology` seam so fan-in runs on the fat-tree too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import SystemConfig
from ..core.polling import COMB_TAG, PollingConfig, _empty_poll_cost
from ..core.results import PollingPoint
from ..core.workloop import work_time
from ..hardware.topology import Topology
from ..mpi.world import World, build_world


@dataclass
class FanInPoint:
    """One multi-peer polling measurement."""

    point: PollingPoint
    n_peers: int

    @property
    def per_peer_bandwidth_Bps(self) -> float:
        """Aggregate bandwidth divided by peer count."""
        return self.point.bandwidth_Bps / self.n_peers


def run_fanin_polling(
    system: SystemConfig,
    cfg: PollingConfig,
    n_peers: int,
    topology: "Topology | None" = None,
) -> FanInPoint:
    """Polling method with ``n_peers`` support nodes feeding rank 0.

    ``topology`` selects the fabric; ``None`` keeps the paper's crossbar
    switch, whose port count caps the world at ``ports - 1`` peers.
    """
    if n_peers < 1:
        raise ValueError("need at least one peer")
    if topology is None and n_peers + 1 > system.machine.switch.ports:
        raise ValueError(
            f"{n_peers} peers + worker exceed the "
            f"{system.machine.switch.ports}-port switch"
        )
    world = build_world(system, n_nodes=n_peers + 1, topology=topology)
    state: dict = {}
    worker = world.engine.spawn(
        _fanin_worker(world, cfg, n_peers, state), name="fanin.worker"
    )
    for peer in range(1, n_peers + 1):
        world.engine.spawn(
            _fanin_support(world, cfg, peer), name=f"fanin.support{peer}"
        )
    world.engine.run(worker)
    return FanInPoint(point=state["result"], n_peers=n_peers)


def _fanin_worker(world: World, cfg: PollingConfig, n_peers: int, state: dict):
    engine = world.engine
    system = world.system
    node = world.cluster[0]
    ctx = node.new_context("fanin.worker")
    h = world.endpoint(0).bind(ctx)
    dev = h.device
    cpu = ctx.cpu

    iter_s = system.machine.cpu.work_iter_s
    p_iters = cfg.poll_interval_iters
    work_s = p_iters * iter_s
    cycle_s = work_s + _empty_poll_cost(system)

    # One pipeline per peer.
    recv_reqs = {}
    for peer in range(1, n_peers + 1):
        reqs = []
        for _ in range(cfg.queue_depth):
            r = yield from h.irecv(peer, cfg.msg_bytes, tag=COMB_TAG)
            reqs.append(r)
        recv_reqs[peer] = reqs
        for _ in range(cfg.queue_depth):
            yield from h.isend(peer, cfg.msg_bytes, tag=COMB_TAG)

    iters_done = 0.0
    measuring = False
    t_start_s = iters_start = 0.0
    stats_start = None
    irq_start = 0
    warmup_end = engine.now + max(cfg.warmup_s, 3 * cycle_s)
    t_end_s = float("inf")
    flat = [(peer, i) for peer, reqs in recv_reqs.items()
            for i in range(len(reqs))]

    while True:
        yield ctx.compute(work_s)
        iters_done += p_iters
        all_reqs = [recv_reqs[p][i] for p, i in flat]
        done_idx = yield from h.testsome(all_reqs)
        if done_idx:
            for k in done_idx:
                peer, i = flat[k]
                yield from h.isend(peer, cfg.msg_bytes, tag=COMB_TAG)
                recv_reqs[peer][i] = yield from h.irecv(
                    peer, cfg.msg_bytes, tag=COMB_TAG
                )
        elif not dev.has_work() and not any(r.done for r in all_reqs):
            horizon_at = t_end_s if measuring else warmup_end
            remaining = horizon_at - engine.now
            if remaining > 0:
                wake = dev.wakeup()
                stop_ev = engine.any_of([wake, engine.timeout(remaining)])
                u0 = cpu.context_time(ctx)
                yield cpu.spin_until(ctx, stop_ev)
                spun = cpu.context_time(ctx) - u0
                cycles = math.floor(spun / cycle_s) + 1
                leftover = cycles * cycle_s - spun
                if leftover > 0:
                    yield ctx.compute(leftover)
                iters_done += cycles * p_iters

        now = engine.now
        if not measuring:
            if now >= warmup_end:
                measuring = True
                t_start_s, iters_start = now, iters_done
                stats_start = dev.stats.snapshot()
                irq_start = node.irq.count
                t_end_s = t_start_s + max(cfg.measure_s, cfg.min_cycles * cycle_s)
        elif now >= t_end_s:
            break

    elapsed_s = engine.now - t_start_s
    iters = iters_done - iters_start
    delta = dev.stats.delta(stats_start)
    state["result"] = PollingPoint(
        system=system.name,
        msg_bytes=cfg.msg_bytes,
        poll_interval_iters=p_iters,
        availability=work_time(system, iters) / elapsed_s,
        bandwidth_Bps=(delta.bytes_send_done + delta.bytes_recv_done) / elapsed_s,
        elapsed_s=elapsed_s,
        iters=iters,
        polls=0,
        msgs=delta.msgs_send_done + delta.msgs_recv_done,
        interrupts=node.irq.count - irq_start,
    )


def _fanin_support(world: World, cfg: PollingConfig, rank: int):
    ctx = world.cluster[rank].new_context(f"fanin.support{rank}")
    h = world.endpoint(rank).bind(ctx)
    recv_reqs = []
    for _ in range(cfg.queue_depth):
        r = yield from h.irecv(0, cfg.msg_bytes, tag=COMB_TAG)
        recv_reqs.append(r)
    for _ in range(cfg.queue_depth):
        yield from h.isend(0, cfg.msg_bytes, tag=COMB_TAG)
    while True:
        yield from h.waitany(recv_reqs)
        for i, r in enumerate(recv_reqs):
            if r.done:
                yield from h.isend(0, cfg.msg_bytes, tag=COMB_TAG)
                recv_reqs[i] = yield from h.irecv(
                    0, cfg.msg_bytes, tag=COMB_TAG
                )
