"""Halo (ghost-cell) exchange: the AMG2023/stencil communication skeleton.

Every iteration each rank posts a non-blocking receive and send per
stencil neighbour (2·dims at the interior, fewer on faces/edges), works
for the configured interval with no MPI calls, then waits the whole
batch — the PWW discipline applied to a structured neighbourhood.  A
library-polled transport stalls every neighbour's rendezvous until the
wait phase; an offloaded one drains them under the work interval.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..core.quiescence import quiescent_compute
from ..mpi.request import Request
from .config import PATTERN_TAG, PatternConfig, balanced_grid, grid_neighbors


class HaloPlan:
    """Per-rank halo-exchange iteration driver."""

    def __init__(self, cfg: PatternConfig, rank: int):
        dims = 3 if cfg.pattern == "halo3d" else 2
        self.shape = tuple(cfg.grid) if cfg.grid else balanced_grid(
            cfg.ranks, dims
        )
        self.neighbors = grid_neighbors(rank, self.shape)
        #: Ghost payload per neighbour: a wider ghost layer moves
        #: proportionally more boundary data.
        self.nbytes = cfg.msg_bytes * cfg.ghost_width

    def iteration(
        self, h, ctx, cpu, work_dry_s: float
    ) -> Iterator[object]:
        """One post → work → wait cycle; returns phase durations."""
        engine = cpu.engine
        t0 = engine.now
        reqs: List[Request] = []
        for peer in self.neighbors:
            r = yield from h.irecv(peer, self.nbytes, tag=PATTERN_TAG)
            reqs.append(r)
        for peer in self.neighbors:
            s = yield from h.isend(peer, self.nbytes, tag=PATTERN_TAG)
            reqs.append(s)
        t1 = engine.now
        yield from quiescent_compute(cpu, ctx, work_dry_s)
        t2 = engine.now
        yield from h.waitall(reqs)
        t3 = engine.now
        return (t1 - t0, t2 - t1, t3 - t2)
