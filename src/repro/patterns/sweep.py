"""Kripke-style KBA sweep: wavefront dependencies on a 2D process grid.

Koch-Baker-Alcouffe transport sweeps order work along a diagonal
wavefront: rank ``(i, j)`` cannot start its block until its upstream
neighbours ``(i-1, j)`` and ``(i, j-1)`` deliver their boundary angular
fluxes; after computing it forwards its own boundary downstream.  The
phase records therefore read differently from halo's: the *work* segment
includes the upstream pipeline-fill stall (the wavefront's structural
idleness), and the *wait* segment is the downstream send drain.  Corner
ranks see the widest availability spread — exactly the per-rank
min/median/max the aggregate metrics expose.
"""

from __future__ import annotations

from typing import Iterator, List

from ..core.quiescence import quiescent_compute
from ..mpi.request import Request
from .config import (
    PATTERN_TAG,
    PatternConfig,
    balanced_grid,
    grid_coords,
    grid_rank,
)


class SweepPlan:
    """Per-rank KBA-sweep iteration driver (sweep corner: rank 0)."""

    def __init__(self, cfg: PatternConfig, rank: int):
        self.shape = tuple(cfg.grid) if cfg.grid else balanced_grid(
            cfg.ranks, 2
        )
        coords = grid_coords(rank, self.shape)
        self.upstream: List[int] = []
        self.downstream: List[int] = []
        for ax in range(len(self.shape)):
            if coords[ax] > 0:
                up = list(coords)
                up[ax] -= 1
                self.upstream.append(grid_rank(up, self.shape))
            if coords[ax] < self.shape[ax] - 1:
                down = list(coords)
                down[ax] += 1
                self.downstream.append(grid_rank(down, self.shape))
        self.upstream.sort()
        self.downstream.sort()
        self.nbytes = cfg.msg_bytes

    def iteration(
        self, h, ctx, cpu, work_dry_s: float
    ) -> Iterator[object]:
        """One wavefront step; returns phase durations."""
        engine = cpu.engine
        t0 = engine.now
        rreqs: List[Request] = []
        for peer in self.upstream:
            r = yield from h.irecv(peer, self.nbytes, tag=PATTERN_TAG)
            rreqs.append(r)
        t1 = engine.now
        if rreqs:
            yield from h.waitall(rreqs)
        yield from quiescent_compute(cpu, ctx, work_dry_s)
        t2 = engine.now
        sreqs: List[Request] = []
        for peer in self.downstream:
            s = yield from h.isend(peer, self.nbytes, tag=PATTERN_TAG)
            sreqs.append(s)
        if sreqs:
            yield from h.waitall(sreqs)
        t3 = engine.now
        return (t1 - t0, t2 - t1, t3 - t2)
