"""Application communication patterns as first-class N-rank workloads.

The COMB methods measure overlap between *one* worker and *one* support
process; real applications exchange with many neighbours in structured
patterns.  This package runs the paper's availability metric on the
communication skeletons of the Benchpark/Caliper application suite
(AMG2023-style stencils, Kripke-style sweeps, solver allreduces), each on
an N-rank world built from a :class:`~repro.hardware.topology.Topology`:

* **halo2d / halo3d** — nearest-neighbour ghost exchange on a balanced
  process grid (post all neighbour sends/receives, work, wait);
* **sweep** — a Kripke/KBA wavefront: each rank waits on its upstream
  corner, computes, then forwards downstream;
* **allreduce** — work followed by a global reduction (binomial tree or
  recursive doubling, built on :mod:`repro.mpi.collectives`).

Every pattern reports the paper's overlap metrics per rank plus
aggregates across ranks, flows through the sweep executor/cache, the
scenario runner, the CLI (``comb pattern``), and the attribution
pipeline (each rank emits the standard ``pww_phase`` trace events).
"""

from .config import (
    PATTERN_KINDS,
    PATTERN_TAG,
    PatternConfig,
    balanced_grid,
    grid_neighbors,
    halo_pairs,
)
from .results import PatternPoint, RankSample
from .runner import run_pattern
from .fanin import FanInPoint, run_fanin_polling

__all__ = [
    "FanInPoint",
    "PATTERN_KINDS",
    "PATTERN_TAG",
    "PatternConfig",
    "PatternPoint",
    "RankSample",
    "balanced_grid",
    "grid_neighbors",
    "halo_pairs",
    "run_fanin_polling",
    "run_pattern",
]
