"""Result records for pattern measurements.

:class:`PatternPoint` carries per-rank samples as parallel primitive
lists (not nested dataclasses) so the executor's content-addressed cache
can reconstruct it from its JSON record with ``PatternPoint(**doc)`` and
stay bit-identical to a fresh simulation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..sim.units import to_mbps


@dataclass
class RankSample:
    """One rank's view of a pattern run (assembly-time convenience)."""

    rank: int
    elapsed_s: float
    availability: float
    payload_bytes: int
    msgs_sent: int
    interrupts: int


def _median(values: List[float]) -> float:
    """Median without numpy (keeps the record layer dependency-free)."""
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass
class PatternPoint:
    """One pattern measurement across all ranks."""

    system: str
    pattern: str
    ranks: int
    topology: str
    msg_bytes: int
    work_interval_iters: int
    #: Aggregate availability: the median across ranks (robust to the
    #: wavefront's structurally idle corner ranks).
    availability: float
    #: Aggregate payload bandwidth (all ranks, both directions) over the
    #: slowest rank's window.
    bandwidth_Bps: float
    #: The slowest rank's measured window (simulated seconds).
    elapsed_s: float
    #: Measured iterations per rank.
    iterations: int
    #: Per-rank availability, indexed by rank.
    availability_per_rank: List[float] = field(default_factory=list)
    #: Per-rank measured window, indexed by rank.
    elapsed_per_rank: List[float] = field(default_factory=list)
    #: Messages sent inside the window, summed over ranks.
    msgs: int = 0
    #: Interrupt count delta, summed over ranks.
    interrupts: int = 0
    #: Allreduce algorithm (empty for non-collective patterns).
    algorithm: str = ""
    #: Replication summary (``repro.stats.summarize_replicates`` shape)
    #: when this point aggregates replicated sub-runs; ``None`` for
    #: single-shot points, and omitted from ``to_dict`` so seed exports
    #: stay byte-identical.
    replication: Optional[Dict[str, Any]] = None

    @property
    def bandwidth_MBps(self) -> float:
        """Bandwidth in the paper's MB/s."""
        return to_mbps(self.bandwidth_Bps)

    @property
    def availability_min(self) -> float:
        """Worst rank's availability."""
        return min(self.availability_per_rank)

    @property
    def availability_max(self) -> float:
        """Best rank's availability."""
        return max(self.availability_per_rank)

    @property
    def availability_median(self) -> float:
        """Median rank availability (== :attr:`availability`)."""
        return _median(self.availability_per_rank)

    def to_dict(self) -> Dict:
        """Plain-dict form (CSV/JSON export)."""
        d = asdict(self)
        if d.get("replication") is None:
            d.pop("replication", None)
        d["bandwidth_MBps"] = self.bandwidth_MBps
        d["availability_min"] = self.availability_min
        d["availability_max"] = self.availability_max
        return d
