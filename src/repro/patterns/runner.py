"""Pattern runner: N rank processes on a topology, measured PWW-style.

Protocol (per rank): ``warmup_iterations`` untimed iterations, a
dissemination barrier, a per-rank measurement snapshot, ``iterations``
measured iterations, a per-rank closing snapshot.  Each measured
iteration emits the standard ``pww_phase`` trace event from source
``rank{r}.pattern`` when a tracer is attached, so the PR 5 span/
attribution machinery decomposes multi-rank stalls unchanged.

The paper's 8-port SAN switch caps a physical crossbar at 8 hosts;
larger crossbar worlds model an idealized single-stage fabric by
widening the switch to the rank count (the fat-tree is the physical
story at scale).  Two-rank worlds are untouched — the differential tests
pin them bit-identically against the recorded goldens.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator

from ..config import SystemConfig
from ..core.accounting import tally_events
from ..hardware.topology import make_topology
from ..mpi.collectives import barrier_all
from ..mpi.world import World, build_world
from .allreduce import AllreducePlan
from .config import PatternConfig, validate_config
from .halo import HaloPlan
from .results import PatternPoint, RankSample, _median
from .sweep import SweepPlan

_PLANS = {
    "halo2d": HaloPlan,
    "halo3d": HaloPlan,
    "sweep": SweepPlan,
    "allreduce": AllreducePlan,
}


def _pattern_system(system: SystemConfig, cfg: PatternConfig) -> SystemConfig:
    """Widen the crossbar switch when the rank count exceeds its ports."""
    ports = system.machine.switch.ports
    if cfg.topology == "crossbar" and cfg.ranks > ports:
        machine = dataclasses.replace(
            system.machine,
            switch=dataclasses.replace(system.machine.switch,
                                       ports=cfg.ranks),
        )
        return dataclasses.replace(system, machine=machine)
    return system


def build_pattern_world(system: SystemConfig, cfg: PatternConfig) -> World:
    """A fresh world shaped for ``cfg`` (topology + rank count)."""
    topology = make_topology(cfg.topology, cfg.arity)
    return build_world(_pattern_system(system, cfg), n_nodes=cfg.ranks,
                       topology=topology)


def run_pattern(system: SystemConfig, cfg: PatternConfig) -> PatternPoint:
    """Run one pattern point on a fresh world and return it."""
    validate_config(cfg)
    world = build_pattern_world(system, cfg)
    samples: Dict[int, RankSample] = {}
    procs = [
        world.engine.spawn(
            _rank_proc(world, cfg, rank, samples),
            name=f"pattern.rank{rank}",
        )
        for rank in range(cfg.ranks)
    ]
    world.engine.run(world.engine.all_of(procs))
    tally_events(world.engine.events_processed)
    return _assemble(system, cfg, samples)


def _rank_proc(
    world: World, cfg: PatternConfig, rank: int, samples: Dict[int, RankSample]
) -> Iterator[object]:
    engine = world.engine
    node = world.cluster[rank]
    ctx = node.new_context(f"pattern.rank{rank}")
    cpu = ctx.cpu
    h = world.endpoint(rank).bind(ctx)
    trace = engine.trace
    plan = _PLANS[cfg.pattern](cfg, rank)

    iter_s = world.system.machine.cpu.work_iter_s
    work_dry_s = cfg.work_interval_iters * iter_s

    for _ in range(cfg.warmup_iterations):
        yield from plan.iteration(h, ctx, cpu, work_dry_s)
    yield from barrier_all(h)

    t_start_s = engine.now
    stats_start = h.device.stats.snapshot()
    irq_start = node.irq.count

    total = cfg.warmup_iterations + cfg.iterations
    for b in range(cfg.warmup_iterations, total):
        t0 = engine.now
        post_s, work_s, wait_s = yield from plan.iteration(
            h, ctx, cpu, work_dry_s
        )
        if trace is not None:
            # Schema: (batch_index, cycle_start_s, post_s, work_s, wait_s)
            # — identical to the PWW driver's, so attribution reuses it.
            trace.record(engine.now, f"rank{rank}.pattern", "pww_phase",
                         (b, t0, post_s, work_s, wait_s))

    elapsed_s = engine.now - t_start_s
    delta = h.device.stats.delta(stats_start)
    samples[rank] = RankSample(
        rank=rank,
        elapsed_s=elapsed_s,
        availability=(cfg.iterations * work_dry_s) / elapsed_s,
        payload_bytes=delta.bytes_send_done + delta.bytes_recv_done,
        msgs_sent=delta.msgs_send_done,
        interrupts=node.irq.count - irq_start,
    )


def _assemble(
    system: SystemConfig, cfg: PatternConfig, samples: Dict[int, RankSample]
) -> PatternPoint:
    ordered = [samples[r] for r in range(cfg.ranks)]
    elapsed_s = max(s.elapsed_s for s in ordered)
    payload = sum(s.payload_bytes for s in ordered)
    per_rank = [s.availability for s in ordered]
    return PatternPoint(
        system=system.name,
        pattern=cfg.pattern,
        ranks=cfg.ranks,
        topology=cfg.topology,
        msg_bytes=cfg.msg_bytes,
        work_interval_iters=cfg.work_interval_iters,
        availability=_median(per_rank),
        bandwidth_Bps=payload / elapsed_s,
        elapsed_s=elapsed_s,
        iterations=cfg.iterations,
        availability_per_rank=per_rank,
        elapsed_per_rank=[s.elapsed_s for s in ordered],
        msgs=sum(s.msgs_sent for s in ordered),
        interrupts=sum(s.interrupts for s in ordered),
        algorithm=cfg.algorithm if cfg.pattern == "allreduce" else "",
    )
