"""Pattern configuration and process-grid geometry helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

#: Message tag used by the pattern workloads (polling uses 11, PWW 12).
PATTERN_TAG = 13

#: Known pattern kinds (the ``PatternConfig.pattern`` vocabulary).
PATTERN_KINDS = ("halo2d", "halo3d", "sweep", "allreduce")

#: Known allreduce algorithms.
ALLREDUCE_ALGORITHMS = ("binomial", "rd")


@dataclass
class PatternConfig:
    """Parameters of one pattern measurement.

    The measurement protocol mirrors the paper's PWW method, generalized
    to N ranks: every rank runs ``warmup_iterations`` untimed iterations,
    synchronizes on a dissemination barrier, then runs ``iterations``
    measured iterations of post → work → wait (the pattern defines what
    is posted and awaited).  Availability per rank is the dry work time
    divided by the rank's measured wall time.
    """

    #: Which pattern: ``halo2d`` / ``halo3d`` / ``sweep`` / ``allreduce``.
    pattern: str = "halo2d"
    #: World size (one rank per node).
    ranks: int = 4
    #: Per-neighbour ghost payload (halo/sweep) or reduction buffer size.
    msg_bytes: int = 100 * 1024
    #: Work-loop iterations in the work phase (the paper's variable).
    work_interval_iters: int = 100_000
    #: Measured iterations (after warmup).
    iterations: int = 6
    #: Iterations discarded as warmup.
    warmup_iterations: int = 2
    #: Network fabric: ``crossbar`` or ``fattree``.
    topology: str = "crossbar"
    #: Fat-tree switch radix (0 = the system's switch port count).
    arity: int = 0
    #: Halo ghost-layer width: scales the per-neighbour payload.
    ghost_width: int = 1
    #: Allreduce algorithm: ``binomial`` or ``rd`` (recursive doubling).
    algorithm: str = "binomial"
    #: Explicit process grid (halo/sweep); empty = balanced factorization
    #: of ``ranks``.  The product must equal ``ranks``.
    grid: Tuple[int, ...] = field(default_factory=tuple)


def validate_config(cfg: PatternConfig) -> None:
    """Raise ``ValueError`` on an unrunnable configuration."""
    if cfg.pattern not in PATTERN_KINDS:
        raise ValueError(
            f"unknown pattern {cfg.pattern!r}; have {sorted(PATTERN_KINDS)}"
        )
    if cfg.ranks < 2:
        raise ValueError("a pattern needs at least two ranks")
    if cfg.msg_bytes < 1:
        raise ValueError("msg_bytes must be >= 1")
    if cfg.work_interval_iters < 0:
        raise ValueError("work interval must be non-negative")
    if cfg.iterations < 1:
        raise ValueError("iterations must be >= 1")
    if cfg.warmup_iterations < 0:
        raise ValueError("warmup_iterations must be non-negative")
    if cfg.ghost_width < 1:
        raise ValueError("ghost_width must be >= 1")
    if cfg.algorithm not in ALLREDUCE_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {cfg.algorithm!r}; "
            f"have {sorted(ALLREDUCE_ALGORITHMS)}"
        )
    if cfg.grid:
        prod = 1
        for d in cfg.grid:
            if d < 1:
                raise ValueError(f"grid dimensions must be >= 1: {cfg.grid}")
            prod *= d
        if prod != cfg.ranks:
            raise ValueError(
                f"grid {tuple(cfg.grid)} holds {prod} ranks, not {cfg.ranks}"
            )


def _prime_factors(n: int) -> List[int]:
    """Prime factorization, largest factors first."""
    out: List[int] = []
    f = 2
    while f * f <= n:
        while n % f == 0:
            out.append(f)
            n //= f
        f += 1
    if n > 1:
        out.append(n)
    return sorted(out, reverse=True)


def balanced_grid(ranks: int, dims: int) -> Tuple[int, ...]:
    """A near-cubic ``dims``-dimensional process grid for ``ranks``.

    Deterministic ``MPI_Dims_create``-style factorization: prime factors
    (largest first) multiply onto the currently-smallest dimension, and
    the result is sorted descending.  ``balanced_grid(12, 2) == (4, 3)``.
    """
    if ranks < 1 or dims < 1:
        raise ValueError("ranks and dims must be >= 1")
    shape = [1] * dims
    for f in _prime_factors(ranks):
        shape[shape.index(min(shape))] *= f
    return tuple(sorted(shape, reverse=True))


def grid_coords(rank: int, shape: Sequence[int]) -> Tuple[int, ...]:
    """Row-major coordinates of ``rank`` in ``shape``."""
    coords = []
    for d in reversed(shape):
        coords.append(rank % d)
        rank //= d
    return tuple(reversed(coords))


def grid_rank(coords: Sequence[int], shape: Sequence[int]) -> int:
    """Row-major rank of ``coords`` in ``shape``."""
    rank = 0
    for c, d in zip(coords, shape):
        rank = rank * d + c
    return rank


def grid_neighbors(rank: int, shape: Sequence[int]) -> List[int]:
    """Stencil neighbours of ``rank``: ±1 along every axis, non-periodic.

    Sorted ascending, so posting order is deterministic across ranks.
    """
    coords = grid_coords(rank, shape)
    out: List[int] = []
    for ax, d in enumerate(shape):
        for step in (-1, 1):
            c = coords[ax] + step
            if 0 <= c < d:
                nb = list(coords)
                nb[ax] = c
                out.append(grid_rank(nb, shape))
    return sorted(out)


def halo_pairs(shape: Sequence[int]) -> int:
    """Neighbour pairs of a non-periodic stencil grid.

    Along axis ``ax`` there are ``(shape[ax] - 1) * prod(other axes)``
    adjacent pairs; a halo iteration moves exactly two messages per pair
    (one each way), which the property battery pins against device
    counters.
    """
    total = 1
    for d in shape:
        total *= d
    pairs = 0
    for ax, d in enumerate(shape):
        pairs += (d - 1) * (total // d)
    return pairs
