"""Invariant monitors: each one watches a class of impossible states.

A monitor consumes the simulation's trace-record stream (dispatched by
:class:`~repro.verify.sanitizer.Sanitizer`) plus synthesized matching-queue
events, and appends a :class:`Violation` for every invariant breach it
observes.  End-of-run structural checks live in :meth:`finalize`; checks
that only hold once all traffic has drained (nothing in flight, every
request waited) run only when the caller declares the run *quiescent*.

Violations are plain frozen dataclasses of primitives, so they survive a
trip through a :mod:`multiprocessing` pool unchanged — the parallel sweep
executor ships them back from checked workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

#: Trace-record kinds counted as intentional packet removals; duplicates
#: observed after any of these are recovery retransmissions (go-back-N),
#: not corruption.
_DROP_KINDS = ("wire_drop", "fault_drop")


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach.

    Attributes
    ----------
    monitor:
        Name of the monitor that raised it (``"conservation"``, …).
    kind:
        Short machine-matchable tag (``"packet_duplicated"``, …).
    time:
        Simulation time of the observation (end-of-run time for
        finalize-stage checks).
    detail:
        Human-readable context.
    """

    monitor: str
    kind: str
    time: float
    detail: str


class InvariantMonitor:
    """Base class: violation bookkeeping + the two hook points."""

    name = "invariant"

    def __init__(self) -> None:
        self.violations: List[Violation] = []

    def flag(self, time: float, kind: str, detail: str = "") -> None:
        """Record one violation."""
        self.violations.append(Violation(self.name, kind, time, detail))

    # ------------------------------------------------------------------ hooks
    def on_record(self, rec) -> None:
        """Consume one :class:`~repro.sim.trace.TraceRecord`."""

    def finalize(self, world: Any, quiescent: bool) -> None:
        """Structural end-of-run checks against ``world``'s device state."""


def _devices(world: Any) -> List[Any]:
    """The world's transport devices, rank order."""
    return [ep.device for ep in world.endpoints]


class ConservationMonitor(InvariantMonitor):
    """Message conservation: no request vanishes, no packet duplicates.

    * Every posted request is eventually completed or cancelled (checked
      at quiescent finalize — mid-run worlds legitimately stop with
      requests in flight).
    * No DATA packet is delivered to a NIC twice — unless a drop has been
      observed on the run, in which case duplicates are go-back-N recovery
      retransmissions and are excused.
    * Every DATA packet transmitted is eventually delivered (quiescent
      finalize).  This catches silent truncation: GM has no reliability
      layer, so a vanished middle fragment still lets the transport
      "complete" the message.
    """

    name = "conservation"

    def __init__(self) -> None:
        super().__init__()
        self._pending: Dict[int, str] = {}
        self._completed: Set[int] = set()
        self._seen_pkts: Set[Tuple[str, int, int]] = set()
        self._tx_pkts: Dict[int, Set[int]] = {}
        self._rx_pkts: Dict[int, Set[int]] = {}
        self._drops = 0

    def on_record(self, rec) -> None:
        kind = rec.kind
        if kind == "req_post":
            req_id, rkind, peer, tag, nbytes = rec.detail
            self._pending[req_id] = (
                f"{rkind} peer={peer} tag={tag} {nbytes}B posted at {rec.time:.9f}"
            )
        elif kind == "req_complete":
            req_id = rec.detail[0]
            self._pending.pop(req_id, None)
            self._completed.add(req_id)
        elif kind == "q_remove":
            # MPI_Cancel withdrew the receive: conservation is satisfied.
            self._pending.pop(rec.detail.req_id, None)
        elif kind == "packet_tx":
            pkind, msg_id, index = rec.detail
            if pkind == "data":
                self._tx_pkts.setdefault(msg_id, set()).add(index)
        elif kind == "nic_rx":
            pkind, msg_id, index = rec.detail
            if pkind != "data":
                return
            self._rx_pkts.setdefault(msg_id, set()).add(index)
            key = (rec.source, msg_id, index)
            if key in self._seen_pkts:
                if self._drops == 0:
                    self.flag(
                        rec.time, "packet_duplicated",
                        f"{rec.source} received msg {msg_id} packet {index} twice",
                    )
            else:
                self._seen_pkts.add(key)
        elif kind in _DROP_KINDS:
            self._drops += 1

    def finalize(self, world: Any, quiescent: bool) -> None:
        if not quiescent:
            return
        now = world.engine.now
        for req_id, info in sorted(self._pending.items()):
            self.flag(now, "request_never_completed", f"request #{req_id}: {info}")
        for msg_id, txed in sorted(self._tx_pkts.items()):
            missing = txed - self._rx_pkts.get(msg_id, set())
            if missing:
                self.flag(
                    now, "packet_lost",
                    f"msg {msg_id}: packet(s) {sorted(missing)} transmitted "
                    "but never delivered",
                )


class CausalityMonitor(InvariantMonitor):
    """Timestamps are monotone; nothing is scheduled in the past."""

    name = "causality"

    def __init__(self) -> None:
        super().__init__()
        self._last_by_source: Dict[str, float] = {}

    def on_record(self, rec) -> None:
        if rec.kind == "schedule_past":
            self.flag(
                rec.time, "scheduled_in_past",
                f"callback enqueued {-rec.detail[0]:.3g}s before now",
            )
            return
        last = self._last_by_source.get(rec.source)
        if last is not None and rec.time < last:
            self.flag(
                rec.time, "time_regression",
                f"{rec.source}: record at {rec.time:.9f} after one at {last:.9f}",
            )
        self._last_by_source[rec.source] = rec.time

    def on_kernel_regression(self, when: float, last: float) -> None:
        """Called by the sanitizer's tracer when the engine clock steps
        backwards between processed events."""
        self.flag(
            when, "clock_backwards",
            f"engine clock moved {last:.9f} -> {when:.9f}",
        )


class TokenMonitor(InvariantMonitor):
    """GM eager-token (bounce-buffer credit) accounting.

    Live: a per-destination token count must stay within ``[0, initial]``.
    Quiescent: for every sender→receiver pair, available tokens plus every
    legitimate resting place of a credit must equal the initial allotment —
    credits are conserved, never minted or leaked.  Resting places: the
    receiver's unreturned batch counter, eager payloads still buffered on
    the receiver (unexpected queue, admission pipeline, un-drained CQ),
    and token returns parked in the sender's own CQ (GM is library-polled,
    so the final ACK of a run is never drained).
    """

    name = "tokens"

    def on_record(self, rec) -> None:
        if rec.kind != "gm_tokens":
            return
        dest_node, count, initial = rec.detail
        if count < 0:
            self.flag(
                rec.time, "negative_tokens",
                f"{rec.source}: {count} tokens for node {dest_node}",
            )
        elif count > initial:
            self.flag(
                rec.time, "token_overflow",
                f"{rec.source}: {count} tokens for node {dest_node} "
                f"(allotment {initial})",
            )

    def finalize(self, world: Any, quiescent: bool) -> None:
        from ..transport.gm import EagerArrival, GmDevice

        if not quiescent:
            return
        now = world.engine.now
        devs = _devices(world)
        by_node = {dev.node.node_id: dev for dev in devs}
        for dev in devs:
            if not isinstance(dev, GmDevice):
                continue
            initial = dev.params.eager_tokens
            my_node = dev.node.node_id
            for dest_node, count in sorted(dev._eager_tokens.items()):
                receiver = by_node.get(dest_node)
                pending = held = 0
                if isinstance(receiver, GmDevice):
                    pending = receiver._tokens_to_return.get(my_node, 0)
                    buffered = list(receiver.unexpected.snapshot())
                    buffered.extend(receiver._admitted)
                    buffered.extend(
                        e[1] for e in receiver.cq if e[0] == "eager_arrived"
                    )
                    held = sum(
                        1
                        for r in buffered
                        if isinstance(r, EagerArrival)
                        and receiver.node_of(r.envelope.src_rank) == my_node
                    )
                # Token returns that arrived after the sender's last poll.
                parked = sum(
                    e[2] for e in dev.cq
                    if e[0] == "tokens" and e[1] == dest_node
                )
                total = count + pending + held + parked
                if total != initial:
                    self.flag(
                        now, "token_leak",
                        f"rank{dev.rank}->node{dest_node}: {count} available "
                        f"+ {pending} unreturned + {held} held + {parked} "
                        f"parked = {total}, allotment {initial}",
                    )
            for dest_node, backlog in sorted(dev._eager_backlog.items()):
                if backlog:
                    self.flag(
                        now, "stuck_backlog",
                        f"rank{dev.rank}: {len(backlog)} eager send(s) to "
                        f"node {dest_node} still waiting for tokens",
                    )


class MatchingMonitor(InvariantMonitor):
    """Matching-list invariants (posted/unexpected queues, Portals lists).

    Live: no receive is posted twice, nothing matches out of thin air, a
    completed request never matches, no unexpected record is added twice,
    and no Portals GET is issued without a preceding RTS.  Quiescent: all
    matching state has drained — no stashed out-of-order arrivals, no
    half-assembled messages, no unanswered rendezvous handshakes.
    """

    name = "matching"

    def __init__(self) -> None:
        super().__init__()
        self._posted: Set[Tuple[str, int]] = set()
        self._unexpected: Set[Tuple[str, int]] = set()
        self._rts_seen: Set[Tuple[str, int]] = set()

    def on_record(self, rec) -> None:
        kind = rec.kind
        if kind == "q_post":
            key = (rec.source, rec.detail.req_id)
            if key in self._posted:
                self.flag(
                    rec.time, "double_post",
                    f"{rec.source}: request #{rec.detail.req_id} posted twice",
                )
            self._posted.add(key)
        elif kind == "q_match":
            req = rec.detail
            key = (rec.source, req.req_id)
            if key not in self._posted:
                self.flag(
                    rec.time, "match_without_post",
                    f"{rec.source}: request #{req.req_id} matched but never posted",
                )
            self._posted.discard(key)
            if req.done:
                self.flag(
                    rec.time, "matched_completed_request",
                    f"{rec.source}: request #{req.req_id} was already complete",
                )
        elif kind == "q_remove":
            self._posted.discard((rec.source, rec.detail.req_id))
        elif kind == "q_unex_add":
            key = (rec.source, rec.detail.msg_id)
            if key in self._unexpected:
                self.flag(
                    rec.time, "duplicate_unexpected",
                    f"{rec.source}: message {rec.detail.msg_id} added twice",
                )
            self._unexpected.add(key)
        elif kind == "q_unex_match":
            key = (rec.source, rec.detail.msg_id)
            if key not in self._unexpected:
                self.flag(
                    rec.time, "unexpected_match_without_add",
                    f"{rec.source}: message {rec.detail.msg_id} never arrived",
                )
            self._unexpected.discard(key)
        elif kind == "rts_rx":
            self._rts_seen.add((rec.source, rec.detail[0]))
        elif kind == "get_issued":
            if (rec.source, rec.detail[0]) not in self._rts_seen:
                self.flag(
                    rec.time, "get_without_rts",
                    f"{rec.source}: GET for message {rec.detail[0]} "
                    "without a matching RTS",
                )

    def finalize(self, world: Any, quiescent: bool) -> None:
        if not quiescent:
            return
        now = world.engine.now
        for dev in _devices(world):
            tag = f"rank{dev.rank}"
            admission = getattr(dev, "admission", None)
            if admission is not None and admission.stashed:
                self.flag(
                    now, "admission_stash_leak",
                    f"{tag}: {admission.stashed} arrival(s) stashed forever "
                    "(missing predecessor)",
                )
            for attr in ("posted", "k_posted"):
                q = getattr(dev, attr, None)
                if q is not None and len(q):
                    self.flag(
                        now, "posted_receive_leak",
                        f"{tag}: {len(q)} receive(s) still posted",
                    )
            for attr in ("unexpected", "k_unexpected"):
                q = getattr(dev, attr, None)
                if q is not None and len(q):
                    self.flag(
                        now, "unconsumed_unexpected",
                        f"{tag}: {len(q)} unexpected message(s) never received",
                    )
            asm = getattr(dev, "_asm", None)
            if asm:
                self.flag(
                    now, "incomplete_assembly",
                    f"{tag}: message(s) {sorted(asm)} half-assembled",
                )
            for attr in ("_pending_cts", "_pending_get"):
                pend = getattr(dev, attr, None)
                if pend:
                    self.flag(
                        now, "unanswered_rts",
                        f"{tag}: rendezvous message(s) {sorted(pend)} "
                        "never answered",
                    )


class LifecycleMonitor(InvariantMonitor):
    """``MPI_Request`` lifecycle state machine.

    Legal: posted → (matched →) complete, or posted → cancelled.  Flags
    completion of unknown/cancelled/already-complete requests and — the
    corruption class of a spurious completion — a receive that completes
    while still sitting in a posted queue.
    """

    name = "lifecycle"

    _POSTED = "posted"
    _MATCHED = "matched"
    _CANCELLED = "cancelled"
    _COMPLETE = "complete"

    def __init__(self) -> None:
        super().__init__()
        self._state: Dict[int, str] = {}
        self._in_posted_q: Set[int] = set()

    def on_record(self, rec) -> None:
        kind = rec.kind
        if kind == "req_post":
            self._state[rec.detail[0]] = self._POSTED
        elif kind == "q_post":
            self._in_posted_q.add(rec.detail.req_id)
        elif kind == "q_match":
            req_id = rec.detail.req_id
            self._in_posted_q.discard(req_id)
            self._state[req_id] = self._MATCHED
        elif kind == "q_remove":
            req_id = rec.detail.req_id
            self._in_posted_q.discard(req_id)
            self._state[req_id] = self._CANCELLED
        elif kind == "req_complete":
            req_id = rec.detail[0]
            state = self._state.get(req_id)
            if state is None:
                self.flag(
                    rec.time, "complete_without_post",
                    f"request #{req_id} completed but was never posted",
                )
            elif state == self._COMPLETE:
                self.flag(
                    rec.time, "double_completion",
                    f"request #{req_id} completed twice",
                )
            elif state == self._CANCELLED:
                self.flag(
                    rec.time, "completed_after_cancel",
                    f"request #{req_id} completed after MPI_Cancel",
                )
            if req_id in self._in_posted_q:
                self.flag(
                    rec.time, "completed_while_posted",
                    f"request #{req_id} completed while still in a posted "
                    "queue (never matched)",
                )
            self._state[req_id] = self._COMPLETE


def default_monitors() -> List[InvariantMonitor]:
    """Fresh instances of every built-in monitor."""
    return [
        ConservationMonitor(),
        CausalityMonitor(),
        TokenMonitor(),
        MatchingMonitor(),
        LifecycleMonitor(),
    ]
