"""Ambient sanitizer resolution.

Mirrors :func:`repro.core.executor.use_executor`: library code (most
importantly :func:`repro.mpi.world.build_world`) never takes a sanitizer
argument — drivers make one ambient for the dynamic extent of a run and
every world built inside attaches itself automatically.  With no active
sanitizer the lookup is a single list check, so the default path stays
free of checking overhead.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only
    from .sanitizer import Sanitizer

_active_stack: List["Sanitizer"] = []


def current_sanitizer() -> Optional["Sanitizer"]:
    """The innermost ambient sanitizer, or ``None`` (checking disabled)."""
    return _active_stack[-1] if _active_stack else None


@contextmanager
def use_sanitizer(
    sanitizer: Optional["Sanitizer"],
) -> Iterator[Optional["Sanitizer"]]:
    """Make ``sanitizer`` ambient for the dynamic extent of the block.

    ``None`` is accepted (and is a no-op) so callers can write
    ``with use_sanitizer(maybe_sanitizer):`` unconditionally.
    """
    if sanitizer is None:
        yield None
        return
    _active_stack.append(sanitizer)
    try:
        yield sanitizer
    finally:
        _active_stack.pop()
