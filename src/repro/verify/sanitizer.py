"""The sanitizer: routes trace records into invariant monitors.

:class:`Sanitizer` owns a set of monitors and a :class:`SanitizerTracer`
— a storage-free :class:`~repro.sim.trace.Tracer` subclass that forwards
every record to the monitors instead of accumulating it, so checked runs
stay O(1) in memory with respect to trace volume.  Worlds built while the
sanitizer is ambient (see :mod:`repro.verify.context`) attach themselves:
the world's tracer seam carries engine/NIC/link/MPI instrumentation, and
matching queues get lightweight observers that synthesize ``q_*`` records.

The sanitizer never influences the simulation: all hooks are passive
reads of state the simulator computes anyway, which is what keeps checked
output bit-identical to unchecked output.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..sim.trace import Tracer, TraceRecord
from .monitors import CausalityMonitor, InvariantMonitor, Violation, default_monitors


class SanitizerTracer(Tracer):
    """Dispatch-only tracer: forwards records, stores nothing.

    Also performs the cheapest causality check inline: the engine calls
    :meth:`record_kernel` for *every* processed event, and the virtual
    clock must never step backwards between them.
    """

    def __init__(self, sanitizer: "Sanitizer") -> None:
        super().__init__()
        self._sanitizer = sanitizer
        self._last_kernel_t = float("-inf")

    def record(self, time: float, source: str, kind: str, detail: Any = None) -> None:
        self._sanitizer.dispatch(TraceRecord(time, source, kind, detail))

    def record_kernel(self, time: float, event: Any) -> None:
        if time < self._last_kernel_t:
            self._sanitizer.on_clock_backwards(time, self._last_kernel_t)
        self._last_kernel_t = time


class Sanitizer:
    """Runtime invariant checker for simulation runs.

    Parameters
    ----------
    monitors:
        Monitor instances to run (default: one of each built-in).
    quiescent:
        Declare that runs under this sanitizer drain completely (every
        request waited, nothing in flight at the end).  Enables the
        stricter finalize-stage conservation/accounting checks; leave
        ``False`` for benchmark runs, which legitimately stop mid-flight.
    """

    def __init__(
        self,
        monitors: Optional[List[InvariantMonitor]] = None,
        quiescent: bool = False,
    ) -> None:
        self.monitors = default_monitors() if monitors is None else list(monitors)
        self.quiescent = quiescent
        self.tracer = SanitizerTracer(self)
        self.worlds: List[Any] = []
        self._causality = next(
            (m for m in self.monitors if isinstance(m, CausalityMonitor)), None
        )
        self._finalized = False

    # ------------------------------------------------------------ attachment
    def install(self, world: Any) -> None:
        """Attach monitors and queue observers to a freshly built world.

        Called automatically by :func:`repro.mpi.world.build_world` when
        this sanitizer is ambient and provided the world's tracer.
        """
        self.worlds.append(world)
        engine = world.engine
        for ep in world.endpoints:
            dev = ep.device
            for attr in ("posted", "k_posted"):
                q = getattr(dev, attr, None)
                if q is not None:
                    q.observer = self._queue_observer(
                        engine, f"rank{dev.rank}.{attr}"
                    )
            for attr in ("unexpected", "k_unexpected"):
                q = getattr(dev, attr, None)
                if q is not None:
                    q.observer = self._queue_observer(
                        engine, f"rank{dev.rank}.{attr}", unexpected=True
                    )

    def _queue_observer(
        self, engine: Any, source: str, unexpected: bool = False
    ) -> Callable[[str, Any], None]:
        prefix = "q_unex_" if unexpected else "q_"
        def observe(op: str, obj: Any) -> None:
            self.dispatch(TraceRecord(engine.now, source, prefix + op, obj))
        return observe

    # -------------------------------------------------------------- dispatch
    def dispatch(self, rec: TraceRecord) -> None:
        """Feed one record to every monitor."""
        for m in self.monitors:
            m.on_record(rec)

    def on_clock_backwards(self, when: float, last: float) -> None:
        """Kernel-clock regression hook (from :class:`SanitizerTracer`)."""
        if self._causality is not None:
            self._causality.on_kernel_regression(when, last)

    # --------------------------------------------------------------- results
    def finalize(self) -> List[Violation]:
        """Run end-of-run checks on every attached world; return all
        violations collected so far (idempotent)."""
        if not self._finalized:
            self._finalized = True
            for world in self.worlds:
                for m in self.monitors:
                    m.finalize(world, self.quiescent)
        return self.violations

    @property
    def violations(self) -> List[Violation]:
        """All violations across monitors, in monitor order."""
        out: List[Violation] = []
        for m in self.monitors:
            out.extend(m.violations)
        return out

    def counts(self) -> Dict[str, int]:
        """Violation count per monitor name (zero entries included)."""
        return {m.name: len(m.violations) for m in self.monitors}

    def summary(self) -> str:
        """One-line human summary, e.g. for the CLI."""
        total = sum(len(m.violations) for m in self.monitors)
        if total == 0:
            return "sanitizer: all invariants held (0 violations)"
        per = ", ".join(
            f"{name}={n}" for name, n in self.counts().items() if n
        )
        return f"sanitizer: {total} violation(s) [{per}]"
