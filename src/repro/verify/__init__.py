"""Simulation sanitizer: runtime invariant checking + fault injection.

COMB's figures are only as trustworthy as the simulator's modeling of MPI
progress semantics, so this package watches a running simulation for
states that can never legally occur — lost or duplicated messages, clocks
running backwards, negative eager-token counts, corrupted matching lists,
illegal ``MPI_Request`` transitions — and records each one as a
:class:`~repro.verify.monitors.Violation`.

The sanitizer hooks into the existing :class:`~repro.sim.trace.Tracer`
seams, so it is *observation-only*: enabling it never changes simulated
results (enforced by ``tests/test_verify_golden_drift.py``), and when no
sanitizer is active every hook collapses to a single ``is not None``
check.

Usage::

    from repro.verify import Sanitizer, use_sanitizer

    san = Sanitizer()
    with use_sanitizer(san):
        point = run_polling(system, cfg)     # worlds auto-attach
    violations = san.finalize()              # [] on a healthy run

Deterministic fault injection (:class:`~repro.verify.faults.FaultInjector`)
corrupts a run on purpose — packet drop/duplicate/time-warp, NIC stall,
deferred interrupts, spurious completions — driven off named RNG
substreams so every failure reproduces from a single seed.  The test
suite uses it to prove each monitor actually detects its corruption
class.
"""

from .context import current_sanitizer, use_sanitizer
from .faults import FaultInjector, FaultPlan
from .monitors import (
    CausalityMonitor,
    ConservationMonitor,
    InvariantMonitor,
    LifecycleMonitor,
    MatchingMonitor,
    TokenMonitor,
    Violation,
    default_monitors,
)
from .sanitizer import Sanitizer, SanitizerTracer

__all__ = [
    "CausalityMonitor",
    "ConservationMonitor",
    "FaultInjector",
    "FaultPlan",
    "InvariantMonitor",
    "LifecycleMonitor",
    "MatchingMonitor",
    "Sanitizer",
    "SanitizerTracer",
    "TokenMonitor",
    "Violation",
    "current_sanitizer",
    "default_monitors",
    "use_sanitizer",
]
