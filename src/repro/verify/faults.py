"""Deterministic fault injection: corrupt a run on purpose.

A :class:`FaultInjector` wraps a built world's delivery/interrupt/transmit
seams with tampering shims.  Every stochastic choice draws from a named
substream of :class:`~repro.sim.rng.RngRegistry` keyed on the plan's
single ``seed``, so a given (world, plan) pair injects *exactly* the same
faults on every run — a failing sanitizer report reproduces from its seed
alone (see CONTRIBUTING.md, "Testing & verification").

Fault classes and the monitor each one is designed to trip:

==========================  ============================================
``drop_data``               conservation (``request_never_completed``)
``duplicate_data``          conservation (``packet_duplicated``)
``timewarp``                causality (``scheduled_in_past`` /
                            ``clock_backwards``)
``drop_ack``                tokens (``token_leak``, GM credit returns)
``duplicate_ack``           tokens (``token_overflow``)
``nic_stall_node``          conservation (sender side never drains)
``defer_irq_node``          matching (``unanswered_rts``) — Portals
                            kernel handlers silently lost
``spurious_completion_at``  lifecycle (``completed_while_posted``)
==========================  ============================================

Injection happens *after* the wire (at NIC delivery), so the network
model's own accounting stays truthful; each injected fault also emits a
``fault_*`` trace record for debugging and so the conservation monitor
can distinguish injected drops from corruption-free runs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sim.events import PRIORITY_NORMAL, Event
from ..sim.rng import RngRegistry
from ..transport.packets import Packet, PacketKind


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject.

    Rates are per-eligible-packet probabilities in ``[0, 1]``; a rate of
    ``1.0`` with ``max_per_class=1`` deterministically corrupts the first
    eligible packet.  All randomness derives from ``seed``.
    """

    seed: int = 0
    #: Drop an inbound DATA packet at NIC delivery.
    drop_data: float = 0.0
    #: Deliver an inbound *middle* DATA packet twice (first/last packets
    #: carry protocol framing whose duplication the transports reject
    #: outright rather than mis-process).
    duplicate_data: float = 0.0
    #: Drop an inbound ACK (GM: an eager-token return vanishes).
    drop_ack: float = 0.0
    #: Deliver an inbound ACK twice (GM: eager tokens minted from thin air).
    duplicate_ack: float = 0.0
    #: Re-schedule an inbound DATA packet's delivery *in the past*.
    timewarp: float = 0.0
    #: How far in the past a time-warped delivery lands.
    timewarp_s: float = 1e-6
    #: Cap on injections per fault class (``None``: unlimited).
    max_per_class: Optional[int] = None
    #: Swallow this node's NIC transmit jobs ...
    nic_stall_node: Optional[int] = None
    #: ... after this many successful submissions.
    nic_stall_after: int = 0
    #: Silently lose raised interrupts on this node (kernel handler never
    #: runs — a wedged interrupt line).
    defer_irq_node: Optional[int] = None
    #: Only lose handlers whose label starts with this (\"\": all).
    defer_irq_label: str = ""
    #: Probability of losing each eligible interrupt.
    defer_irq_rate: float = 1.0
    #: At this simulation time, mark one still-posted receive complete
    #: without any matching message (a lost-update corruption).
    spurious_completion_at: Optional[float] = None


class FaultInjector:
    """Installs a :class:`FaultPlan`'s tampering shims on one world."""

    def __init__(self, world: Any, plan: FaultPlan) -> None:
        self.world = world
        self.plan = plan
        self.rng = RngRegistry(plan.seed)
        #: Injections performed, per fault class.
        self.injected: "Counter[str]" = Counter()
        self._installed = False

    # ------------------------------------------------------------- install
    def install(self) -> "FaultInjector":
        """Wrap the world's seams; idempotent, returns self."""
        if self._installed:
            return self
        self._installed = True
        plan = self.plan
        cluster = self.world.cluster
        if any((plan.drop_data, plan.duplicate_data, plan.drop_ack,
                plan.duplicate_ack, plan.timewarp)):
            for node in cluster.nodes:
                link = cluster.switch.out_link(node.node_id)
                link.deliver = self._tamper_delivery(link.deliver)
        if plan.nic_stall_node is not None:
            self._stall_nic(cluster[plan.nic_stall_node].nic)
        if plan.defer_irq_node is not None:
            self._defer_irq(cluster[plan.defer_irq_node].irq)
        if plan.spurious_completion_at is not None:
            delay_s = max(0.0, plan.spurious_completion_at - self.world.engine.now)
            self.world.engine.schedule_callback(delay_s, self._spurious_complete)
        return self

    # ------------------------------------------------------------ internals
    def _roll(self, name: str, rate: float) -> bool:
        """Decide one injection from the class's named substream."""
        if rate <= 0.0:
            return False
        cap = self.plan.max_per_class
        if cap is not None and self.injected[name] >= cap:
            return False
        return bool(self.rng.stream(f"fault.{name}").random() < rate)

    def _note(self, name: str, pkt: Optional[Packet] = None) -> None:
        self.injected[name] += 1
        tracer = self.world.tracer
        if tracer is not None:
            detail = (
                (pkt.kind.value, pkt.msg_id, pkt.index) if pkt is not None else ()
            )
            tracer.record(
                self.world.engine.now, "fault", f"fault_{name}", detail
            )

    def _tamper_delivery(
        self, deliver: Callable[[Packet], None]
    ) -> Callable[[Packet], None]:
        plan = self.plan

        def tampered(pkt: Packet) -> None:
            if pkt.kind is PacketKind.DATA:
                if self._roll("drop", plan.drop_data):
                    self._note("drop", pkt)
                    return
                if (not pkt.is_first and not pkt.is_last
                        and self._roll("dup", plan.duplicate_data)):
                    self._note("dup", pkt)
                    deliver(pkt)
                    deliver(pkt)
                    return
                if self._roll("timewarp", plan.timewarp):
                    self._note("timewarp", pkt)
                    self._deliver_in_past(deliver, pkt)
                    return
            elif pkt.kind is PacketKind.ACK:
                if self._roll("drop_ack", plan.drop_ack):
                    self._note("drop_ack", pkt)
                    return
                if self._roll("dup_ack", plan.duplicate_ack):
                    self._note("dup_ack", pkt)
                    deliver(pkt)
                    deliver(pkt)
                    return
            deliver(pkt)

        return tampered

    def _deliver_in_past(
        self, deliver: Callable[[Packet], None], pkt: Packet
    ) -> None:
        """Schedule delivery *before* now — the corruption a sanitized
        engine must catch (``scheduled_in_past`` + ``clock_backwards``)."""
        engine = self.world.engine
        ev = Event(engine)
        ev._ok = True
        ev._value = pkt
        ev.callbacks.append(lambda e: deliver(e.value))
        engine._enqueue(ev, PRIORITY_NORMAL, -abs(self.plan.timewarp_s))

    def _stall_nic(self, nic: Any) -> None:
        submit = nic.submit
        allowed = self.plan.nic_stall_after
        seen = [0]

        def stalled(job: Any) -> None:
            if seen[0] >= allowed:
                # Stalled: the job is accepted and silently never serviced.
                self._note("nic_stall")
                return
            seen[0] += 1
            submit(job)

        nic.submit = stalled

    def _defer_irq(self, irq: Any) -> None:
        raise_irq = irq.raise_irq
        plan = self.plan

        def deferred(
            handler_cost_s: float,
            fn: Optional[Callable[[], None]] = None,
            label: str = "",
        ) -> Event:
            eligible = (not plan.defer_irq_label
                        or label.startswith(plan.defer_irq_label))
            if eligible and self._roll("defer_irq", plan.defer_irq_rate):
                self._note("defer_irq")
                return Event(self.world.engine)  # never fires: handler lost
            return raise_irq(handler_cost_s, fn, label)

        irq.raise_irq = deferred

    def _spurious_complete(self, retries: int = 64) -> None:
        """Complete one still-posted receive that never matched anything.

        If no receive is posted at the scheduled instant, re-checks a
        bounded number of times (the posted queue is transiently empty
        between exchanges) rather than silently injecting nothing.
        """
        candidates = []
        for ep in self.world.endpoints:
            for attr in ("posted", "k_posted"):
                q = getattr(ep.device, attr, None)
                if q is not None:
                    candidates.extend(h for _s, _t, h in q.snapshot())
        if not candidates:
            if retries > 0:
                self.world.engine.schedule_callback(
                    abs(self.plan.timewarp_s),
                    lambda: self._spurious_complete(retries - 1),
                )
            return
        pick = int(self.rng.stream("fault.spurious").integers(len(candidates)))
        self._note("spurious_completion")
        candidates[pick].complete()
