"""The MPI subset COMB drives.

Application code in this simulator is written as generator processes; every
MPI call is a sub-generator invoked with ``yield from`` so its CPU costs
land on the calling process::

    h = endpoint.bind(ctx)
    req = yield from h.irecv(src=1, nbytes=100 * 1024, tag=0)
    yield from h.wait(req)

Supported calls: ``isend``, ``irecv``, ``send``, ``recv``, ``test``,
``testany``, ``testsome``, ``wait``, ``waitany``, ``waitall``, plus a
``wait_blocking`` variant (yields the CPU instead of busy-waiting — the
select-style behaviour netperf assumes, §5).

Wait semantics match real MPICH: busy-wait loops that invoke the device's
progress engine.  Busy-waiting is simulated exactly but efficiently — the
CPU stays occupied (:meth:`repro.hardware.cpu.CPU.spin_until`) until the
device signals, without simulating each poll iteration.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..hardware.cpu import CpuContext
from ..sim.engine import Engine
from ..transport.base import Device
from .matching import ANY_SOURCE, ANY_TAG
from .request import Request, RequestKind
from .status import Status

__all__ = ["ANY_SOURCE", "ANY_TAG", "Endpoint", "MpiHandle", "Status"]


class Endpoint:
    """One MPI rank: a device plus identity."""

    # world_size is MPI's own name for the communicator's rank count — a
    # count of ranks, not a byte quantity; keep the standard term.
    def __init__(self, engine: Engine, device: Device, rank: int,
                 world_size: int):  # comb-lint: disable=UNIT001
        self.engine = engine
        self.device = device
        self.rank = rank
        self.world_size = world_size

    @property
    def node(self):
        """The node this rank runs on."""
        return self.device.node

    def bind(self, ctx: CpuContext) -> "MpiHandle":
        """Bind the endpoint to a CPU context (one per calling process)."""
        return MpiHandle(self, ctx)


class MpiHandle:
    """Endpoint bound to the calling process's CPU context."""

    def __init__(self, endpoint: Endpoint, ctx: CpuContext):
        self.endpoint = endpoint
        self.ctx = ctx
        self.device = endpoint.device
        self.engine = endpoint.engine
        self.rank = endpoint.rank

    # ------------------------------------------------------------ posting
    def isend(self, dest: int, nbytes: int, tag: int = 0):
        """Post a non-blocking send; returns the :class:`Request`."""
        self._check_rank(dest)
        req = Request(self.engine, RequestKind.SEND, dest, tag, nbytes,
                      device=self.device)
        yield from self.device.isend(self.ctx, req)
        return req

    def irecv(self, src: int = ANY_SOURCE, nbytes: int = 0, tag: int = ANY_TAG):
        """Post a non-blocking receive; returns the :class:`Request`."""
        if src != ANY_SOURCE:
            self._check_rank(src)
        req = Request(self.engine, RequestKind.RECV, src, tag, nbytes,
                      device=self.device)
        yield from self.device.irecv(self.ctx, req)
        return req

    # ------------------------------------------------------------- testing
    def test(self, req: Request):
        """``MPI_Test``: one progress pass, then report completion."""
        yield from self.device.progress(self.ctx)
        return req.done

    def testany(self, reqs: Sequence[Request]):
        """One progress pass; index of some completed request or ``None``."""
        yield from self.device.progress(self.ctx)
        for i, r in enumerate(reqs):
            if r.done:
                return i
        return None

    def testsome(self, reqs: Sequence[Request]):
        """One progress pass; list of indices of completed requests."""
        yield from self.device.progress(self.ctx)
        return [i for i, r in enumerate(reqs) if r.done]

    def iprobe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        """``MPI_Iprobe``: one progress pass, then report (without
        consuming) the oldest matchable unexpected message's
        :class:`Status`, or ``None``."""
        yield from self.device.progress(self.ctx)
        env = self.device.peek_unexpected(src, tag)
        if env is None:
            return None
        return Status(source=env.src_rank, tag=env.tag, nbytes=env.nbytes)

    def probe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        """``MPI_Probe``: busy-wait until a matchable message is pending."""
        result = {}

        def check() -> bool:
            env = self.device.peek_unexpected(src, tag)
            if env is not None:
                result["env"] = env
                return True
            return False

        yield from self._wait_until(check)
        env = result["env"]
        return Status(source=env.src_rank, tag=env.tag, nbytes=env.nbytes)

    def cancel(self, req: Request):
        """``MPI_Cancel`` for a posted receive: withdraw it if it has not
        matched yet.  Returns ``True`` when the cancellation took."""
        yield from self.device.progress(self.ctx)
        if req.done:
            return False
        return self.device.cancel_recv(req)

    # ------------------------------------------------------------- waiting
    def wait(self, req: Request):
        """``MPI_Wait``: busy-wait (with progress) until ``req`` completes."""
        yield from self._wait_until(lambda: req.done)

    def waitall(self, reqs: Sequence[Request]):
        """``MPI_Waitall`` over ``reqs``."""
        yield from self._wait_until(lambda: all(r.done for r in reqs))

    def waitany(self, reqs: Sequence[Request]):
        """``MPI_Waitany``: index of the first request observed complete."""
        yield from self._wait_until(lambda: any(r.done for r in reqs))
        for i, r in enumerate(reqs):
            if r.done:
                return i
        raise AssertionError("unreachable: waitany predicate held")

    def waitsome(self, reqs: Sequence[Request]):
        """``MPI_Waitsome``: block until at least one completes; return
        the indices of all completed requests."""
        yield from self._wait_until(lambda: any(r.done for r in reqs))
        return [i for i, r in enumerate(reqs) if r.done]

    def wait_blocking(self, reqs: Sequence[Request]):
        """Non-conforming *blocking* wait: yields the CPU until all
        complete (select semantics; used by the netperf baseline)."""
        pending = [r for r in reqs if not r.done]
        if not pending:
            return
        yield self.engine.all_of([r.completion_event() for r in pending])

    # ------------------------------------------------------------- blocking
    def send(self, dest: int, nbytes: int, tag: int = 0):
        """``MPI_Send``: isend + wait."""
        req = yield from self.isend(dest, nbytes, tag)
        yield from self.wait(req)
        return req

    def recv(self, src: int = ANY_SOURCE, nbytes: int = 0, tag: int = ANY_TAG):
        """``MPI_Recv``: irecv + wait."""
        req = yield from self.irecv(src, nbytes, tag)
        yield from self.wait(req)
        return req

    def sendrecv(
        self,
        dest: int,
        send_nbytes: int,
        src: int,
        recv_nbytes: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ):
        """``MPI_Sendrecv``: simultaneous exchange (deadlock-free)."""
        rreq = yield from self.irecv(src, recv_nbytes, recvtag)
        sreq = yield from self.isend(dest, send_nbytes, sendtag)
        yield from self.waitall([rreq, sreq])
        return Status.from_request(rreq)

    def barrier(self, tag: int = -7777):
        """``MPI_Barrier``: zero-byte exchange for 2 ranks, dissemination
        barrier (:func:`repro.mpi.collectives.barrier_all`) for larger
        worlds."""
        if self.endpoint.world_size != 2:
            from .collectives import barrier_all

            yield from barrier_all(self)
            return
        peer = 1 - self.rank
        rreq = yield from self.irecv(peer, 0, tag)
        sreq = yield from self.isend(peer, 0, tag)
        yield from self.waitall([rreq, sreq])

    # ------------------------------------------------------------ internals
    def _wait_until(self, predicate):
        """Busy-wait with progress until ``predicate()`` holds.

        Faithful to MPICH-style spinning: the CPU is occupied the whole
        time (kernel work still preempts), and the device's progress engine
        runs whenever it has work — which is how GM's rendezvous handshake
        gets driven during ``MPI_Wait``.
        """
        dev = self.device
        cpu = self.ctx.cpu
        while not predicate():
            if dev.has_work():
                yield from dev.progress(self.ctx)
                continue
            ev = dev.wakeup()
            if dev.has_work() or predicate():
                continue
            yield cpu.spin_until(self.ctx, ev)

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.endpoint.world_size):
            raise ValueError(
                f"rank {rank} out of range for world of "
                f"{self.endpoint.world_size}"
            )
