"""Collective operations over the point-to-point subset.

The paper's testbed is two nodes, but its future work (§7: "benchmark
several of the DOE ASCI machines") implies scale; the simulator's switch
takes up to eight.  These collectives are the classic log-P algorithms
MPICH used in the era, built purely on ``isend``/``irecv`` so every byte
still flows through the modelled transports:

* ``bcast`` — binomial tree;
* ``reduce`` / ``allreduce`` — binomial reduce (+ broadcast);
* ``gather`` — direct to root;
* ``alltoall`` — pairwise exchange (maximally stresses the switch's
  output-port serialization);
* ``barrier_all`` — dissemination barrier.

Payloads are sizes, not values (the simulator moves bytes, not data), so
"reduce" models the communication pattern plus a configurable per-byte
combine cost on the CPU.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.units import mbps
from .api import MpiHandle

#: Tag space reserved for collectives (one tag per operation round).
_COLL_TAG_BASE = 1 << 20

#: CPU combine rate for reductions (bytes/second) — a P6-era vector sum.
REDUCE_COMBINE_BANDWIDTH_BPS = mbps(400)


def _tree_children(rank: int, root: int, size: int) -> List[int]:
    """Children of ``rank`` in a binomial tree rooted at ``root``."""
    vrank = (rank - root) % size
    children = []
    mask = 1
    while mask < size:
        if vrank & (mask - 1) == 0 and vrank | mask != vrank:
            child = vrank | mask
            if child < size:
                children.append((child + root) % size)
        mask <<= 1
    return children


def _tree_parent(rank: int, root: int, size: int) -> Optional[int]:
    """Parent of ``rank`` in the binomial tree, ``None`` for the root."""
    vrank = (rank - root) % size
    if vrank == 0:
        return None
    # Clear the lowest set bit.
    parent_v = vrank & (vrank - 1)
    return (parent_v + root) % size


def bcast(h: MpiHandle, nbytes: int, root: int = 0, tag: int = _COLL_TAG_BASE):
    """Binomial-tree broadcast of ``nbytes`` from ``root``.

    Children are served largest-subtree first (reversed order): each send
    serializes on the sender's NIC, so the deepest subtree must get the
    data earliest for the log-P critical path to hold.
    """
    size = h.endpoint.world_size
    parent = _tree_parent(h.rank, root, size)
    if parent is not None:
        yield from h.recv(parent, nbytes, tag)
    for child in reversed(_tree_children(h.rank, root, size)):
        yield from h.send(child, nbytes, tag)


def reduce(
    h: MpiHandle,
    nbytes: int,
    root: int = 0,
    tag: int = _COLL_TAG_BASE + 1,
    combine_Bps: float = REDUCE_COMBINE_BANDWIDTH_BPS,
):
    """Binomial-tree reduction of ``nbytes`` to ``root``.

    Each received contribution costs a CPU combine pass over the buffer.
    """
    size = h.endpoint.world_size
    children = _tree_children(h.rank, root, size)
    # Receive deepest-first (reverse of send order in bcast).
    for child in reversed(children):
        yield from h.recv(child, nbytes, tag)
        yield h.ctx.compute(nbytes / combine_Bps)
    parent = _tree_parent(h.rank, root, size)
    if parent is not None:
        yield from h.send(parent, nbytes, tag)


def allreduce(
    h: MpiHandle,
    nbytes: int,
    tag: int = _COLL_TAG_BASE + 2,
    combine_Bps: float = REDUCE_COMBINE_BANDWIDTH_BPS,
):
    """Reduce-to-0 then broadcast (the era's MPICH default)."""
    yield from reduce(h, nbytes, root=0, tag=tag, combine_Bps=combine_Bps)
    yield from bcast(h, nbytes, root=0, tag=tag + 1)


def gather(h: MpiHandle, nbytes: int, root: int = 0,
           tag: int = _COLL_TAG_BASE + 4):
    """Direct gather: every rank sends ``nbytes`` to ``root``."""
    size = h.endpoint.world_size
    if h.rank == root:
        reqs = []
        for src in range(size):
            if src == root:
                continue
            r = yield from h.irecv(src, nbytes, tag)
            reqs.append(r)
        yield from h.waitall(reqs)
    else:
        yield from h.send(root, nbytes, tag)


def alltoall(h: MpiHandle, nbytes: int, tag: int = _COLL_TAG_BASE + 5):
    """Pairwise all-to-all: ``size - 1`` exchange rounds.

    Round ``r`` pairs each rank with ``rank XOR-free partner
    (rank + r) % size`` — every output port of the switch carries traffic
    in every round.
    """
    size = h.endpoint.world_size
    reqs = []
    for r in range(1, size):
        dst = (h.rank + r) % size
        src = (h.rank - r) % size
        rr = yield from h.irecv(src, nbytes, tag + r)
        sr = yield from h.isend(dst, nbytes, tag + r)
        reqs.extend((rr, sr))
    yield from h.waitall(reqs)


def barrier_all(h: MpiHandle, tag: int = _COLL_TAG_BASE + 100):
    """Dissemination barrier (log2 rounds, any world size)."""
    size = h.endpoint.world_size
    round_no = 0
    dist = 1
    while dist < size:
        dst = (h.rank + dist) % size
        src = (h.rank - dist) % size
        rr = yield from h.irecv(src, 0, tag + round_no)
        sr = yield from h.isend(dst, 0, tag + round_no)
        yield from h.waitall([rr, sr])
        dist <<= 1
        round_no += 1
