"""Collective operations over the point-to-point subset.

The paper's testbed is two nodes, but its future work (§7: "benchmark
several of the DOE ASCI machines") implies scale; the simulator's switch
takes up to eight.  These collectives are the classic log-P algorithms
MPICH used in the era, built purely on ``isend``/``irecv`` so every byte
still flows through the modelled transports:

* ``bcast`` — binomial tree;
* ``reduce`` / ``allreduce`` — binomial reduce (+ broadcast);
* ``gather`` — direct to root;
* ``alltoall`` — pairwise exchange (maximally stresses the switch's
  output-port serialization);
* ``barrier_all`` — dissemination barrier.

Payloads are sizes, not values (the simulator moves bytes, not data), so
"reduce" models the communication pattern plus a configurable per-byte
combine cost on the CPU.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..sim.units import mbps
from .api import MpiHandle

#: Tag space reserved for collectives (one tag per operation round).
_COLL_TAG_BASE = 1 << 20

#: CPU combine rate for reductions (bytes/second) — a P6-era vector sum.
REDUCE_COMBINE_BANDWIDTH_BPS = mbps(400)


def _tree_children(rank: int, root: int, nranks: int) -> List[int]:
    """Children of ``rank`` in a binomial tree rooted at ``root``."""
    vrank = (rank - root) % nranks
    children = []
    mask = 1
    while mask < nranks:
        if vrank & (mask - 1) == 0 and vrank | mask != vrank:
            child = vrank | mask
            if child < nranks:
                children.append((child + root) % nranks)
        mask <<= 1
    return children


def _tree_parent(rank: int, root: int, nranks: int) -> Optional[int]:
    """Parent of ``rank`` in the binomial tree, ``None`` for the root."""
    vrank = (rank - root) % nranks
    if vrank == 0:
        return None
    # Clear the lowest set bit.
    parent_v = vrank & (vrank - 1)
    return (parent_v + root) % nranks


def bcast(h: MpiHandle, nbytes: int, root: int = 0, tag: int = _COLL_TAG_BASE):
    """Binomial-tree broadcast of ``nbytes`` from ``root``.

    Children are served largest-subtree first (reversed order): each send
    serializes on the sender's NIC, so the deepest subtree must get the
    data earliest for the log-P critical path to hold.
    """
    nranks = h.endpoint.world_size
    parent = _tree_parent(h.rank, root, nranks)
    if parent is not None:
        yield from h.recv(parent, nbytes, tag)
    for child in reversed(_tree_children(h.rank, root, nranks)):
        yield from h.send(child, nbytes, tag)


def reduce(
    h: MpiHandle,
    nbytes: int,
    root: int = 0,
    tag: int = _COLL_TAG_BASE + 1,
    combine_Bps: float = REDUCE_COMBINE_BANDWIDTH_BPS,
):
    """Binomial-tree reduction of ``nbytes`` to ``root``.

    Each received contribution costs a CPU combine pass over the buffer.
    """
    nranks = h.endpoint.world_size
    children = _tree_children(h.rank, root, nranks)
    # Receive deepest-first (reverse of send order in bcast).
    for child in reversed(children):
        yield from h.recv(child, nbytes, tag)
        yield h.ctx.compute(nbytes / combine_Bps)
    parent = _tree_parent(h.rank, root, nranks)
    if parent is not None:
        yield from h.send(parent, nbytes, tag)


def allreduce(
    h: MpiHandle,
    nbytes: int,
    tag: int = _COLL_TAG_BASE + 2,
    combine_Bps: float = REDUCE_COMBINE_BANDWIDTH_BPS,
):
    """Reduce-to-0 then broadcast (the era's MPICH default)."""
    yield from reduce(h, nbytes, root=0, tag=tag, combine_Bps=combine_Bps)
    yield from bcast(h, nbytes, root=0, tag=tag + 1)


def allreduce_rd(
    h: MpiHandle,
    nbytes: int,
    tag: int = _COLL_TAG_BASE + 8,
    combine_Bps: float = REDUCE_COMBINE_BANDWIDTH_BPS,
):
    """Recursive-doubling allreduce (MPICH's later power-of-two default).

    Non-power-of-two worlds use the classic pre/post fold: the first
    ``2 * rem`` ranks pair up — evens fold their contribution into their
    odd neighbour and sit out the exchange; after ``log2`` pairwise
    exchange rounds over the surviving power-of-two group, each odd
    neighbour hands the result back.  Every exchange round is a
    full-duplex sendrecv, so the critical path is ``log2(pow2)`` wire
    round-trips instead of the binomial tree's up-and-down traversal.
    """
    nranks = h.endpoint.world_size
    pow2 = 1 << (nranks.bit_length() - 1)
    rem = nranks - pow2

    # Pre-fold: evens of the first 2*rem ranks donate and retire.
    if h.rank < 2 * rem:
        if h.rank % 2 == 0:
            yield from h.send(h.rank + 1, nbytes, tag)
            newrank = -1
        else:
            yield from h.recv(h.rank - 1, nbytes, tag)
            yield h.ctx.compute(nbytes / combine_Bps)
            newrank = h.rank // 2
    else:
        newrank = h.rank - rem

    # Exchange rounds over the power-of-two group.
    if newrank >= 0:
        mask = 1
        round_no = 1
        while mask < pow2:
            partner_new = newrank ^ mask
            partner = (
                partner_new * 2 + 1 if partner_new < rem
                else partner_new + rem
            )
            rr = yield from h.irecv(partner, nbytes, tag + round_no)
            sr = yield from h.isend(partner, nbytes, tag + round_no)
            yield from h.waitall([rr, sr])
            yield h.ctx.compute(nbytes / combine_Bps)
            mask <<= 1
            round_no += 1

    # Post-fold: odd partners return the finished result.
    if h.rank < 2 * rem:
        back = tag + pow2.bit_length()
        if h.rank % 2 == 0:
            yield from h.recv(h.rank + 1, nbytes, back)
        else:
            yield from h.send(h.rank - 1, nbytes, back)


#: Analytic total message counts per collective invocation (every rank's
#: sends summed) — the oracle the property battery pins runs against.
def bcast_msgs(nranks: int) -> int:
    """Messages a binomial-tree bcast moves: one per non-root rank."""
    return nranks - 1


def allreduce_msgs(nranks: int) -> int:
    """Messages of the binomial reduce + bcast composition."""
    return 2 * (nranks - 1)


def allreduce_rd_msgs(nranks: int) -> int:
    """Messages of recursive doubling: pre/post folds + exchange rounds."""
    pow2 = 1 << (nranks.bit_length() - 1)
    rem = nranks - pow2
    return 2 * rem + pow2 * int(math.log2(pow2))


def gather(h: MpiHandle, nbytes: int, root: int = 0,
           tag: int = _COLL_TAG_BASE + 4):
    """Direct gather: every rank sends ``nbytes`` to ``root``."""
    nranks = h.endpoint.world_size
    if h.rank == root:
        reqs = []
        for src in range(nranks):
            if src == root:
                continue
            r = yield from h.irecv(src, nbytes, tag)
            reqs.append(r)
        yield from h.waitall(reqs)
    else:
        yield from h.send(root, nbytes, tag)


def alltoall(h: MpiHandle, nbytes: int, tag: int = _COLL_TAG_BASE + 5):
    """Pairwise all-to-all: ``nranks - 1`` exchange rounds.

    Round ``r`` pairs each rank with ``rank XOR-free partner
    (rank + r) % nranks`` — every output port of the switch carries traffic
    in every round.
    """
    nranks = h.endpoint.world_size
    reqs = []
    for r in range(1, nranks):
        dst = (h.rank + r) % nranks
        src = (h.rank - r) % nranks
        rr = yield from h.irecv(src, nbytes, tag + r)
        sr = yield from h.isend(dst, nbytes, tag + r)
        reqs.extend((rr, sr))
    yield from h.waitall(reqs)


def barrier_all(h: MpiHandle, tag: int = _COLL_TAG_BASE + 100):
    """Dissemination barrier (log2 rounds, any world nranks)."""
    nranks = h.endpoint.world_size
    round_no = 0
    dist = 1
    while dist < nranks:
        dst = (h.rank + dist) % nranks
        src = (h.rank - dist) % nranks
        rr = yield from h.irecv(src, 0, tag + round_no)
        sr = yield from h.isend(dst, 0, tag + round_no)
        yield from h.waitall([rr, sr])
        dist <<= 1
        round_no += 1
