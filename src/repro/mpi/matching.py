"""Envelope matching: posted-receive and unexpected-message queues.

The same matching logic runs in two very different places depending on the
transport — inside the MPI library's progress pass (GM) or inside the
kernel's packet handler (Portals) — so it lives here, context-free.

MPI's *non-overtaking* rule requires that messages from the same source be
matchable in the order they were sent.  Packets can physically overtake on
our NICs (control packets use a priority lane), so an :class:`Admission`
stage re-orders arrival records by the sender's sequence number before
matching.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..transport.packets import Envelope

#: Wildcard source for receives (``MPI_ANY_SOURCE``).
ANY_SOURCE = -1
#: Wildcard tag for receives (``MPI_ANY_TAG``).
ANY_TAG = -1


def envelopes_match(want_src: int, want_tag: int, env: Envelope) -> bool:
    """Does a posted receive (``want_src``, ``want_tag``) accept ``env``?"""
    return (want_src in (ANY_SOURCE, env.src_rank)) and (
        want_tag in (ANY_TAG, env.tag)
    )


class PostedQueue:
    """Receives posted and not yet matched, in post order.

    ``observer``, when set, is called as ``observer(op, handle)`` for each
    mutation (``op`` one of ``"post"``/``"match"``/``"remove"``) — the
    sanitizer's seam for matching-list invariants.  It is ``None`` by
    default, so uninstrumented runs pay one ``is not None`` test per op.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[int, int, Any]] = []
        self.observer: Optional[Callable[[str, Any], None]] = None

    def __len__(self) -> int:
        return len(self._entries)

    def post(self, src: int, tag: int, handle: Any) -> None:
        """Append a posted receive."""
        self._entries.append((src, tag, handle))
        if self.observer is not None:
            self.observer("post", handle)

    def match(self, env: Envelope) -> Optional[Any]:
        """Pop and return the first posted receive accepting ``env``."""
        for i, (src, tag, handle) in enumerate(self._entries):
            if envelopes_match(src, tag, env):
                del self._entries[i]
                if self.observer is not None:
                    self.observer("match", handle)
                return handle
        return None

    def remove(self, handle: Any) -> bool:
        """Withdraw a posted receive (``MPI_Cancel``); True if found."""
        for i, (_src, _tag, h) in enumerate(self._entries):
            if h is handle:
                del self._entries[i]
                if self.observer is not None:
                    self.observer("remove", handle)
                return True
        return False

    def snapshot(self) -> List[Tuple[int, int, Any]]:
        """Copy of the queue, oldest first (for tests/diagnostics)."""
        return list(self._entries)


class UnexpectedQueue:
    """Messages that arrived before a matching receive was posted.

    Like :class:`PostedQueue`, an optional ``observer`` sees each mutation
    (``"add"``/``"match"`` with the arrival record).
    """

    def __init__(self) -> None:
        self._records: List[Any] = []
        self.observer: Optional[Callable[[str, Any], None]] = None

    def __len__(self) -> int:
        return len(self._records)

    def add(self, record: Any) -> None:
        """Append an arrival record (records expose ``.envelope``)."""
        self._records.append(record)
        if self.observer is not None:
            self.observer("add", record)

    def match(self, src: int, tag: int) -> Optional[Any]:
        """Pop and return the oldest record a receive (src, tag) accepts."""
        for i, rec in enumerate(self._records):
            if envelopes_match(src, tag, rec.envelope):
                del self._records[i]
                if self.observer is not None:
                    self.observer("match", rec)
                return rec
        return None

    def peek(self, src: int, tag: int) -> Optional[Any]:
        """Like :meth:`match` but without consuming (``MPI_Probe``)."""
        for rec in self._records:
            if envelopes_match(src, tag, rec.envelope):
                return rec
        return None

    def snapshot(self) -> List[Any]:
        """Copy of the queue, oldest first."""
        return list(self._records)


class Admission:
    """Re-orders per-source arrival records into send order.

    ``offer`` either admits the record immediately (calling ``sink``) —
    possibly unblocking stashed successors — or stashes it until its
    predecessors arrive.
    """

    def __init__(self, sink: Callable[[Any], None]):
        self._sink = sink
        self._expected: Dict[int, int] = {}
        self._stash: Dict[int, Dict[int, Any]] = {}

    def offer(self, record: Any) -> None:
        """Submit a record whose ``.envelope.seq`` orders it per source."""
        env: Envelope = record.envelope
        src = env.src_rank
        expected = self._expected.get(src, 0)
        if env.seq == expected:
            self._sink(record)
            expected += 1
            stash = self._stash.get(src)
            while stash and expected in stash:
                self._sink(stash.pop(expected))
                expected += 1
            self._expected[src] = expected
        elif env.seq > expected:
            self._stash.setdefault(src, {})[env.seq] = record
        else:  # pragma: no cover - defensive
            raise RuntimeError(
                f"duplicate arrival seq {env.seq} from rank {src}"
            )

    @property
    def stashed(self) -> int:
        """Number of records waiting for predecessors."""
        return sum(len(s) for s in self._stash.values())
