"""MPI status objects."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .request import Request


@dataclass(frozen=True)
class Status:
    """Completion metadata of a receive (``MPI_Status``).

    ``source`` and ``tag`` are the *matched* values (wildcards resolved);
    ``nbytes`` is the message size.
    """

    source: int
    tag: int
    nbytes: int

    @classmethod
    def from_request(cls, req: Request) -> "Status":
        """Build from a completed request."""
        if not req.done:
            raise ValueError("request has not completed")
        return cls(
            source=req.match_src if req.match_src is not None else req.peer,
            tag=req.match_tag if req.match_tag is not None else req.tag,
            nbytes=req.nbytes,
        )
