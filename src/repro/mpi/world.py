"""World builder: hardware + transports + MPI endpoints, ready to run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..config import SystemConfig, TransportKind
from ..hardware.cluster import Cluster
from ..sim.engine import Engine
from ..sim.trace import Tracer
from ..transport.base import Device
from ..transport.gm import GmDevice
from ..transport.portals import PortalsDevice, TcpDevice
from .api import Endpoint

_DEVICE_CLASSES = {
    TransportKind.GM: GmDevice,
    TransportKind.PORTALS: PortalsDevice,
    TransportKind.TCP: TcpDevice,
}

#: Custom device classes keyed by ``SystemConfig.name`` — lets extensions
#: (e.g. :mod:`repro.ext.whatif`) run the unmodified benchmark drivers on
#: transports beyond the built-in three.
CUSTOM_DEVICES: dict = {}


def register_device(system_name: str, device_cls) -> None:
    """Route worlds built for ``system_name`` to ``device_cls``."""
    CUSTOM_DEVICES[system_name] = device_cls


def make_device(engine: Engine, node, rank: int, system: SystemConfig) -> Device:
    """Instantiate the device class for ``system`` (custom name wins)."""
    cls = CUSTOM_DEVICES.get(system.name)
    if cls is None:
        try:
            cls = _DEVICE_CLASSES[system.transport]
        except KeyError:  # pragma: no cover - enum covers all kinds
            raise ValueError(f"unknown transport {system.transport}") from None
    return cls(engine, node, rank, system)


@dataclass
class World:
    """A built simulation: engine, hardware, and one endpoint per node."""

    engine: Engine
    system: SystemConfig
    cluster: Cluster
    endpoints: List[Endpoint]
    tracer: Optional[Tracer] = None

    def endpoint(self, rank: int) -> Endpoint:
        """The endpoint for ``rank``."""
        return self.endpoints[rank]

    @property
    def size(self) -> int:
        """Number of ranks."""
        return len(self.endpoints)


def build_world(
    system: SystemConfig,
    n_nodes: int = 2,
    tracer: Optional[Tracer] = None,
) -> World:
    """Build a fresh deterministic world: rank *i* lives on node *i*.

    If no explicit ``tracer`` is given and a sanitizer is ambient (see
    :func:`repro.verify.use_sanitizer`), its dispatch-only tracer is
    attached and the sanitizer is installed on the built world, so runs
    inside a ``use_sanitizer`` block are invariant-checked transparently.
    """
    sanitizer = None
    if tracer is None:
        from ..verify.context import current_sanitizer

        sanitizer = current_sanitizer()
        if sanitizer is not None:
            tracer = sanitizer.tracer
    engine = Engine(trace=tracer)
    cluster = Cluster(engine, system, n_nodes=n_nodes, tracer=tracer)
    devices = [
        make_device(engine, cluster[i], i, system) for i in range(n_nodes)
    ]
    routes = {rank: rank for rank in range(n_nodes)}
    for dev in devices:
        dev.routes = dict(routes)
    endpoints = [
        Endpoint(engine, dev, rank, n_nodes) for rank, dev in enumerate(devices)
    ]
    world = World(engine, system, cluster, endpoints, tracer)
    if sanitizer is not None:
        sanitizer.install(world)
    return world
