"""World builder: hardware + transports + MPI endpoints, ready to run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..config import SystemConfig, TransportKind
from ..hardware.cluster import Cluster
from ..sim.engine import Engine
from ..sim.trace import Tracer
from ..transport.base import Device
from ..transport.gm import GmDevice
from ..transport.portals import PortalsDevice, TcpDevice
from .api import Endpoint

_DEVICE_CLASSES = {
    TransportKind.GM: GmDevice,
    TransportKind.PORTALS: PortalsDevice,
    TransportKind.TCP: TcpDevice,
}

#: Custom device classes keyed by ``SystemConfig.name`` — lets extensions
#: (e.g. :mod:`repro.ext.whatif`) run the unmodified benchmark drivers on
#: transports beyond the built-in three.
CUSTOM_DEVICES: dict = {}


def register_device(system_name: str, device_cls) -> None:
    """Route worlds built for ``system_name`` to ``device_cls``."""
    CUSTOM_DEVICES[system_name] = device_cls


def make_device(engine: Engine, node, rank: int, system: SystemConfig) -> Device:
    """Instantiate the device class for ``system`` (custom name wins)."""
    cls = CUSTOM_DEVICES.get(system.name)
    if cls is None:
        try:
            cls = _DEVICE_CLASSES[system.transport]
        except KeyError:  # pragma: no cover - enum covers all kinds
            raise ValueError(f"unknown transport {system.transport}") from None
    return cls(engine, node, rank, system)


@dataclass
class World:
    """A built simulation: engine, hardware, and one endpoint per node."""

    engine: Engine
    system: SystemConfig
    cluster: Cluster
    endpoints: List[Endpoint]
    tracer: Optional[Tracer] = None

    def endpoint(self, rank: int) -> Endpoint:
        """The endpoint for ``rank``."""
        return self.endpoints[rank]

    @property
    def size(self) -> int:
        """Number of ranks."""
        return len(self.endpoints)


def build_world(
    system: SystemConfig,
    n_nodes: int = 2,
    tracer: Optional[Tracer] = None,
    topology=None,
) -> World:
    """Build a fresh deterministic world: rank *i* lives on node *i*.

    ``topology`` selects the network fabric (a
    :class:`~repro.hardware.topology.Topology`; ``None`` is the paper's
    crossbar switch, bit-identical to the seed two-node wiring).

    If no explicit ``tracer`` is given, ambient attachments are resolved:
    a sanitizer (see :func:`repro.verify.use_sanitizer`) and/or an
    observer (see :func:`repro.obs.use_observer`).  Each contributes its
    tracer to the engine's trace seam — both at once share it through a
    :class:`~repro.sim.trace.MultiTracer` — and is installed on the built
    world (sanitizer first, so the observer chains its queue hooks after
    the sanitizer's rather than replacing them).
    """
    attachments: list = []
    if tracer is None:
        from ..obs.context import current_observer
        from ..verify.context import current_sanitizer

        for ambient in (current_sanitizer(), current_observer()):
            if ambient is not None:
                attachments.append(ambient)
        if len(attachments) == 1:
            tracer = attachments[0].tracer
        elif attachments:
            from ..sim.trace import MultiTracer

            tracer = MultiTracer([a.tracer for a in attachments])
    engine = Engine(trace=tracer)
    # Live-telemetry seam: expose the engine's clock/event counters to
    # this process's heartbeat thread.  One module-global read when no
    # telemetry is armed; never influences the simulation.
    from ..obs.live import attach_engine_probe

    attach_engine_probe(engine)
    cluster = Cluster(engine, system, n_nodes=n_nodes, tracer=tracer,
                      topology=topology)
    devices = [
        make_device(engine, cluster[i], i, system) for i in range(n_nodes)
    ]
    routes = {rank: rank for rank in range(n_nodes)}
    for dev in devices:
        dev.routes = dict(routes)
    endpoints = [
        Endpoint(engine, dev, rank, n_nodes) for rank, dev in enumerate(devices)
    ]
    world = World(engine, system, cluster, endpoints, tracer)
    for ambient in attachments:
        ambient.install(world)
    return world
