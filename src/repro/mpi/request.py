"""MPI request objects.

A :class:`Request` is the handle returned by ``isend``/``irecv``.  Its
lifecycle is: *pending* → *complete*.  Who flips it to complete is the whole
point of COMB: the MPI library during a progress pass (GM-style,
``ProgressModel.LIBRARY_POLLED``) or the kernel independently of the
application (Portals-style, ``ProgressModel.OFFLOADED``).
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Optional

from ..sim.engine import Engine
from ..sim.events import Event


class RequestKind(Enum):
    """Send or receive side of a point-to-point operation."""

    SEND = "send"
    RECV = "recv"


_req_ids = itertools.count(1)


class Request:
    """A non-blocking operation handle.

    Attributes
    ----------
    kind, peer, tag, nbytes:
        The operation's envelope (``peer`` is the destination for sends and
        the — possibly wildcard — source for receives).
    done:
        ``True`` once the operation is locally complete.
    completion_time:
        Simulation time at which completion was marked.
    posted_time:
        Simulation time at which the operation was posted.
    """

    __slots__ = (
        "engine", "kind", "peer", "tag", "nbytes", "req_id", "msg_id",
        "done", "completion_time", "posted_time", "_event", "_device",
        "match_src", "match_tag",
    )

    def __init__(
        self,
        engine: Engine,
        kind: RequestKind,
        peer: int,
        tag: int,
        nbytes: int,
        device=None,
    ):
        self.engine = engine
        self.kind = kind
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        self.req_id = next(_req_ids)
        #: Wire-level message id (sends: assigned at post; receives: the
        #: matched message's id once known).
        self.msg_id: Optional[int] = None
        self.done = False
        self.completion_time: Optional[float] = None
        self.posted_time: float = engine.now
        self._event: Optional[Event] = None
        self._device = device
        #: For receives: actual source/tag after matching (resolves
        #: wildcards); ``None`` until complete.
        self.match_src: Optional[int] = None
        self.match_tag: Optional[int] = None
        trace = engine.trace
        if trace is not None:
            trace.record(engine.now, "mpi.req", "req_post",
                         (self.req_id, kind.value, peer, tag, nbytes))

    def complete(self, src: Optional[int] = None, tag: Optional[int] = None) -> None:
        """Mark locally complete; fires the completion event and the owning
        device's wakeup signal."""
        trace = self.engine.trace
        if trace is not None:
            # Emitted before the double-completion guard so an attached
            # sanitizer can log the illegal transition the guard rejects.
            trace.record(self.engine.now, "mpi.req", "req_complete",
                         (self.req_id, self.kind.value))
            if self.msg_id is not None:
                # Schema: (req_id, msg_id, kind) — ties the MPI request to
                # its wire-level message so span stitching (repro.obs.spans)
                # can anchor request endpoints on packet timelines.
                trace.record(self.engine.now, "mpi.req", "msg_bind",
                             (self.req_id, self.msg_id, self.kind.value))
        if self.done:
            raise RuntimeError(f"request {self.req_id} completed twice")
        self.done = True
        self.completion_time = self.engine.now
        if src is not None:
            self.match_src = src
        if tag is not None:
            self.match_tag = tag
        if self._event is not None and not self._event.triggered:
            self._event.succeed(self)
        if self._device is not None:
            self._device.record_completion(self)

    @property
    def status(self):
        """:class:`~repro.mpi.status.Status` of a completed request."""
        from .status import Status

        return Status.from_request(self)

    def completion_event(self) -> Event:
        """Event fired at completion (already-triggered if done)."""
        if self._event is None:
            self._event = Event(self.engine)
            if self.done:
                self._event.succeed(self)
        return self._event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return (
            f"<Request #{self.req_id} {self.kind.value} peer={self.peer} "
            f"tag={self.tag} {self.nbytes}B {state}>"
        )
