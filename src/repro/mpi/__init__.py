"""MPI subset: requests, matching, endpoints, collectives, world building."""

from .api import ANY_SOURCE, ANY_TAG, Endpoint, MpiHandle
from .status import Status
from .matching import Admission, PostedQueue, UnexpectedQueue, envelopes_match
from .request import Request, RequestKind
from .collectives import (
    allreduce,
    allreduce_msgs,
    allreduce_rd,
    allreduce_rd_msgs,
    alltoall,
    barrier_all,
    bcast,
    bcast_msgs,
    gather,
    reduce,
)
from .world import World, build_world, make_device

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Admission",
    "allreduce",
    "allreduce_msgs",
    "allreduce_rd",
    "allreduce_rd_msgs",
    "alltoall",
    "barrier_all",
    "bcast",
    "bcast_msgs",
    "gather",
    "reduce",
    "Endpoint",
    "MpiHandle",
    "PostedQueue",
    "Request",
    "Status",
    "RequestKind",
    "UnexpectedQueue",
    "World",
    "build_world",
    "envelopes_match",
    "make_device",
]
