"""Statistical machinery for replicated experiment design.

COMB's seed figures are single-shot point estimates; "MPI Benchmarking
Revisited" (Hunold & Carpen-Amarie) argues benchmark claims need planned
repetitions and variance-aware stopping.  This package supplies the
pieces the :class:`~repro.core.executor.SweepExecutor` composes into a
measurement instrument:

* :class:`StreamingMoments` — Welford single-pass mean/variance/extrema
  accumulation, with a parallel merge.
* :func:`bootstrap_ci` — seeded percentile-bootstrap confidence interval
  of the sample median.  Samples are sorted before resampling, so the
  interval is invariant under replicate permutation and bit-identical
  for a fixed seed.
* :class:`StoppingRule` — run a minimum replicate batch, stop as soon as
  the CI width meets the tolerance, never exceed the hard cap.
* :func:`replicate_seed` / :func:`replicate_system` — named RNG
  substream derivation per replicate.  Replicate 0 *is* the root stream,
  so single-shot runs and replicate 0 share cache keys and bits.
* :func:`find_disagreements` / :func:`summarize_replicates` — bit-level
  cross-replicate comparison and the JSON-ready replication summary
  attached to aggregated result points.

Everything here is deterministic: same samples, same seed, same output.
"""

from .bootstrap import (
    DEFAULT_CONFIDENCE,
    DEFAULT_RESAMPLES,
    STATS_SEED,
    bootstrap_ci,
    interval_width,
    sample_median,
)
from .moments import StreamingMoments
from .replicate import (
    REPLICATION_SCHEMA_VERSION,
    Disagreement,
    find_disagreements,
    is_stochastic,
    replicate_seed,
    replicate_system,
    replication_interval,
    summarize_replicates,
)
from .stopping import (
    DEFAULT_MIN_REPS,
    STOP_CI_WIDTH,
    STOP_FIXED,
    STOP_MAX_REPS,
    StoppingRule,
)

__all__ = [
    "DEFAULT_CONFIDENCE",
    "DEFAULT_MIN_REPS",
    "DEFAULT_RESAMPLES",
    "Disagreement",
    "REPLICATION_SCHEMA_VERSION",
    "STATS_SEED",
    "STOP_CI_WIDTH",
    "STOP_FIXED",
    "STOP_MAX_REPS",
    "StoppingRule",
    "StreamingMoments",
    "bootstrap_ci",
    "find_disagreements",
    "interval_width",
    "is_stochastic",
    "replicate_seed",
    "replicate_system",
    "replication_interval",
    "sample_median",
    "summarize_replicates",
]
