"""Streaming moment accumulation (Welford's online algorithm).

One accumulator per metric: constant memory however many replicates the
stopping rule ends up requesting, and numerically stable where the naive
sum-of-squares form cancels catastrophically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable


@dataclass
class StreamingMoments:
    """Single-pass mean / variance / extrema over a stream of floats."""

    n: int = 0
    mean: float = 0.0
    #: Sum of squared deviations from the running mean (Welford's M2).
    m2: float = 0.0
    min_value: float = math.inf
    max_value: float = -math.inf

    def push(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (value - self.mean)
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def extend(self, values: Iterable[float]) -> "StreamingMoments":
        """Fold a batch of samples; returns ``self`` for chaining."""
        for value in values:
            self.push(value)
        return self

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Combine two accumulators (Chan et al. parallel update)."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self.mean = other.mean
            self.m2 = other.m2
            self.min_value = other.min_value
            self.max_value = other.max_value
            return self
        total = self.n + other.n
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.n * other.n / total
        self.mean += delta * other.n / total
        self.n = total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        return self

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self.n < 2:
            return 0.0
        return self.m2 / (self.n - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready snapshot (empty accumulators report zero extrema)."""
        return {
            "n": float(self.n),
            "mean": self.mean if self.n else 0.0,
            "std": self.std,
            "min": self.min_value if self.n else 0.0,
            "max": self.max_value if self.n else 0.0,
        }
