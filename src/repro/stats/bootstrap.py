"""Seeded percentile-bootstrap confidence intervals of the median.

The median (not the mean) is the location estimate throughout the suite
— replicate distributions from a discrete-event simulator under fault
injection are not symmetric, and the regression sentinel
(:mod:`repro.obs.compare`) already judges medians.

Two invariances are load-bearing and enforced by property tests:

* **Permutation**: samples are sorted before resampling, so replicate
  arrival order (which the adaptive stopping rule perturbs) cannot move
  the interval.
* **Reproducibility**: the resampling RNG is seeded (``seed`` argument,
  default :data:`STATS_SEED`), so two invocations over the same samples
  return bit-identical intervals.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

#: Bootstrap resamples per interval.
DEFAULT_RESAMPLES = 800
#: Two-sided confidence level.
DEFAULT_CONFIDENCE = 0.95
#: Fixed RNG seed: replication summaries must be reproducible.
STATS_SEED = 20260808


def sample_median(values: Sequence[float]) -> float:
    """Median of the samples (midpoint of the two central order stats)."""
    if not values:
        raise ValueError("sample_median needs at least one sample")
    return float(np.median(np.asarray(list(values), dtype=float)))


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = STATS_SEED,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI of the median over ``values``.

    Constant samples (including a single sample) short-circuit to the
    exact zero-width interval — no RNG draw, so deterministic replicate
    sets always yield bit-identical degenerate intervals.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("bootstrap_ci needs at least one sample")
    if ordered[0] == ordered[-1]:
        return ordered[0], ordered[-1]
    arr = np.asarray(ordered, dtype=float)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, arr.size, size=(resamples, arr.size))
    medians = np.median(arr[indices], axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(medians, (alpha, 1.0 - alpha))
    return float(lo), float(hi)


def interval_width(
    values: Sequence[float],
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = STATS_SEED,
) -> float:
    """Width of the bootstrap CI (the stopping rule's decision input)."""
    lo, hi = bootstrap_ci(values, confidence=confidence,
                          resamples=resamples, seed=seed)
    return hi - lo
