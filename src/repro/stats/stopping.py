"""Variance-aware stopping rule with a hard replicate cap.

The executor runs an initial replicate batch, then asks
:meth:`StoppingRule.decide` after every completed replicate: stop when
the bootstrap CI of the stopping metric is narrow enough, or when the
hard cap is reached.  With no tolerance configured the design is *fixed*
— exactly ``max_reps`` replicates, one decision.

The rule is monotone in the tolerance: widening ``ci_width`` can only
stop a sequence at the same replicate count or earlier, never later
(property-tested in ``tests/test_stats_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .bootstrap import (
    DEFAULT_CONFIDENCE,
    DEFAULT_RESAMPLES,
    STATS_SEED,
    interval_width,
)

#: Smallest adaptive batch: a CI over fewer samples is not a CI.
DEFAULT_MIN_REPS = 3

#: Stopping reasons, recorded per point in the replication summary.
STOP_CI_WIDTH = "ci_width"
STOP_MAX_REPS = "max_reps"
STOP_FIXED = "fixed"


@dataclass(frozen=True)
class StoppingRule:
    """When to stop replicating one sweep point.

    Parameters
    ----------
    max_reps:
        Hard replicate cap (and the whole design when ``ci_width`` is
        ``None``).
    ci_width:
        Stop once the bootstrap CI of the stopping metric is at most
        this wide.  ``None`` disables adaptivity (fixed design).
    min_reps:
        Replicates to run before the first adaptive decision (clamped
        to ``max_reps``).
    """

    max_reps: int
    ci_width: Optional[float] = None
    min_reps: int = DEFAULT_MIN_REPS
    confidence: float = DEFAULT_CONFIDENCE
    resamples: int = DEFAULT_RESAMPLES
    seed: int = STATS_SEED

    def __post_init__(self) -> None:
        if self.max_reps < 1:
            raise ValueError(f"max_reps must be >= 1, got {self.max_reps}")
        if self.min_reps < 2:
            raise ValueError(f"min_reps must be >= 2, got {self.min_reps}")
        if self.ci_width is not None and self.ci_width < 0.0:
            raise ValueError(f"ci_width must be >= 0, got {self.ci_width}")

    @property
    def initial_reps(self) -> int:
        """Replicates to schedule before the first decision."""
        if self.ci_width is None:
            return self.max_reps
        return min(self.min_reps, self.max_reps)

    def decide(self, values: Sequence[float]) -> Optional[str]:
        """Stop verdict over the stopping-metric samples so far.

        Returns ``None`` (keep replicating) or one of
        :data:`STOP_CI_WIDTH` / :data:`STOP_MAX_REPS` /
        :data:`STOP_FIXED`.
        """
        n = len(values)
        if self.ci_width is None:
            return STOP_FIXED if n >= self.max_reps else None
        if n >= self.initial_reps:
            width = interval_width(values, confidence=self.confidence,
                                   resamples=self.resamples, seed=self.seed)
            if width <= self.ci_width:
                return STOP_CI_WIDTH
        return STOP_MAX_REPS if n >= self.max_reps else None
