"""Replicate seeding, disagreement detection, and replication summaries.

**Substream seeding.** Replicate ``r`` of a sweep point runs on the same
system with its root seed swapped for a named substream —
``sha256("{seed}:replicate:{r}")`` — mirroring how
:class:`~repro.sim.rng.RngRegistry` derives per-component streams from
the root seed.  Replicate 0 keeps the root seed untouched: it *is* the
single-shot run, shares its cache key, and makes ``reps=1`` bit-identical
to the seed behavior.

**Disagreement ⇒ determinism bug.** The simulator is fully deterministic
unless fault injection is armed (``machine.fault.data_loss_rate > 0``,
the suite's only stochastic knob — see :func:`is_stochastic`).  On a
deterministic system, every replicate must therefore reproduce replicate
0 bit for bit despite the different seed; any divergence means hidden
state escaped the sanitizer and the lint rules — a determinism bug, not
noise — and is flagged as a :class:`Disagreement`.  On a stochastic
system replicates legitimately differ and the check is skipped.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import SystemConfig
from .bootstrap import (
    DEFAULT_CONFIDENCE,
    DEFAULT_RESAMPLES,
    STATS_SEED,
    bootstrap_ci,
    sample_median,
)
from .moments import StreamingMoments

#: Bump when the replication-summary dict shape changes.
REPLICATION_SCHEMA_VERSION = 1


def replicate_seed(root_seed: int, index: int) -> int:
    """Root seed for replicate ``index`` of a run seeded ``root_seed``.

    Index 0 returns ``root_seed`` unchanged — replicate 0 is the
    single-shot run, cache key included.
    """
    if index < 0:
        raise ValueError(f"replicate index must be >= 0, got {index}")
    if index == 0:
        return root_seed
    digest = hashlib.sha256(
        f"{root_seed}:replicate:{index}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "little")


def replicate_system(system: SystemConfig, index: int) -> SystemConfig:
    """``system`` reseeded for replicate ``index`` (0: unchanged)."""
    if index == 0:
        return system
    return dataclasses.replace(
        system, seed=replicate_seed(system.seed, index)
    )


def is_stochastic(system: SystemConfig) -> bool:
    """Whether replicates of ``system`` may legitimately diverge."""
    return system.machine.fault.data_loss_rate > 0.0


@dataclass(frozen=True)
class Disagreement:
    """One replicate that diverged from replicate 0 on a deterministic
    system — a sanitizer escape, reported like an invariant violation."""

    kind: str
    system: str
    replicate_index: int
    fields: Tuple[str, ...]

    @property
    def detail(self) -> str:
        return (
            f"{self.kind}/{self.system}: replicate {self.replicate_index} "
            f"diverged from replicate 0 on deterministic inputs "
            f"(fields: {', '.join(self.fields)}) — determinism bug"
        )


def find_disagreements(
    replicates: Sequence[Mapping[str, Any]],
) -> List[Tuple[int, Tuple[str, ...]]]:
    """Bit-level comparison of each replicate dict against replicate 0.

    Returns ``(replicate_index, differing_field_names)`` pairs; empty
    when every replicate reproduces replicate 0 exactly.  Compares every
    field — including per-rank lists and counters — with exact equality.
    """
    if not replicates:
        return []
    base = replicates[0]
    out: List[Tuple[int, Tuple[str, ...]]] = []
    for index, rep in enumerate(replicates[1:], start=1):
        differing = tuple(
            name for name in base
            if name not in rep or rep[name] != base[name]
        ) + tuple(name for name in rep if name not in base)
        if differing:
            out.append((index, differing))
    return out


def _scalar_names(doc: Mapping[str, Any]) -> List[str]:
    """Numeric (non-bool) field names of one replicate dict, in order."""
    return [
        name for name, value in doc.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    ]


def summarize_replicates(
    replicates: Sequence[Mapping[str, Any]],
    stopping_reason: str,
    disagreements: int = 0,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = STATS_SEED,
) -> Dict[str, Any]:
    """JSON-ready replication summary over per-replicate result dicts.

    Every numeric field (including derived properties the point's
    ``to_dict`` exports, e.g. ``bandwidth_MBps``) gets streaming moments
    plus a seeded bootstrap CI of its median, so any figure's y-axis can
    render bands.  Non-scalar fields (labels, per-rank lists) are
    skipped.
    """
    if not replicates:
        raise ValueError("summarize_replicates needs at least one replicate")
    metrics: Dict[str, Dict[str, float]] = {}
    for name in _scalar_names(replicates[0]):
        values: List[float] = []
        for doc in replicates:
            value = doc.get(name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values.append(float(value))
        if len(values) != len(replicates):
            continue  # not a scalar on every replicate: skip
        moments = StreamingMoments().extend(values)
        ci_low, ci_high = bootstrap_ci(values, confidence=confidence,
                                       resamples=resamples, seed=seed)
        summary = moments.to_dict()
        summary["median"] = sample_median(values)
        summary["ci_low"] = ci_low
        summary["ci_high"] = ci_high
        metrics[name] = summary
    return {
        "schema": REPLICATION_SCHEMA_VERSION,
        "reps": len(replicates),
        "confidence": confidence,
        "stopping_reason": stopping_reason,
        "disagreements": disagreements,
        "metrics": metrics,
    }


def replication_interval(
    summary: Optional[Mapping[str, Any]], metric: str
) -> Optional[Tuple[float, float]]:
    """``(ci_low, ci_high)`` for ``metric`` out of a replication summary
    dict, or ``None`` when the summary or the metric is absent."""
    if not summary:
        return None
    metrics = summary.get("metrics")
    if not isinstance(metrics, Mapping):
        return None
    entry = metrics.get(metric)
    if not isinstance(entry, Mapping):
        return None
    lo = entry.get("ci_low")
    hi = entry.get("ci_high")
    if isinstance(lo, (int, float)) and isinstance(hi, (int, float)):
        return float(lo), float(hi)
    return None
