"""``comb`` command-line interface.

Subcommands::

    comb polling --system GM --size 100 --interval 10000
    comb pww     --system Portals --size 100 --interval 100000
    comb pattern halo --ranks 8 --topology fattree
    comb offload [--system GM]
    comb netperf --system GM --mode busywait
    comb figures [--ids fig08 fig11] [--per-decade 2] [--out results/]
    comb report  [--per-decade 2]
    comb bench   [--no-cache] [--profile fig04] [--compare]
    comb history [--figure fig08] [--last 5] [--format json]
    comb top     results/stream.ndjson [--once]

``comb pattern`` runs an application communication pattern (halo2d,
halo3d, sweep, allreduce — ``halo`` is an alias for halo2d) across
``--ranks`` ranks on a ``--topology`` (crossbar or fattree) and prints
per-rank plus aggregate (min/median/max) CPU availability.

All sizes are in the paper's KB (KiB); intervals are work-loop iterations.

The sweep-heavy subcommands (``figures``, ``report``) accept ``--jobs N``
to fan points out over a process pool and use an on-disk point cache under
``.comb_cache/`` by default (``--no-cache`` disables it, ``--cache-dir``
relocates it).  Results are bit-identical for every combination of flags.

``--check`` (on ``polling``, ``pww``, ``figures``, ``report``) runs the
simulation sanitizer — runtime invariant checks over every simulated
point (see :mod:`repro.verify`).  Output values are unchanged; the exit
status is 1 if any invariant was violated.  Cached points are returned
as-is (they were checked, or checkable, when first simulated).

``--metrics`` (on ``figures``, ``report``) attaches the observability
layer (:mod:`repro.obs`): simulation metrics (phase breakdowns, poll
hit/miss, queue depths) plus wall-clock executor profiles (cache lookup
latency, fan-out utilization) land in a ``metrics.json`` sidecar next to
the results.  Figure values are bit-identical with or without it.  Note:
with ``--jobs > 1`` points simulate in worker processes, whose simulation
events stay there — sim metrics cover in-process points; executor stage
profiles always cover everything.

``comb trace <figure|polling|pww>`` runs one figure or one point with
the full tracer attached (forced serial, uncached, so every event is
captured) and exports a Chrome ``trace_event`` JSON (loads in
``about:tracing`` / Perfetto), a CSV timeline, and the metrics sidecar.
With ``--attribution`` the event stream is additionally stitched into
causal spans (:mod:`repro.obs.spans`) and each sweep point's wait time /
availability loss is decomposed into named causes
(:mod:`repro.obs.attribution`), printed as a table and exported as
``<target>.attribution.json``.

``comb bench`` times one pass over the benchmark grid and appends a
``BENCH_<n>.json`` record to the performance-trajectory directory
(``results/bench`` by default): total and per-figure wall time, executor
cache stats, the engine's dispatched-event count (the simulator's own
cost model), and whether the compiled core (:mod:`repro.compiled`) was
active.  ``--profile FIGID`` additionally embeds a cProfile
top-cumulative table over one figure so hot-path claims stay backed by
recorded evidence.

``comb compare`` doubles as the statistical regression sentinel: with
two run paths (``metrics.json`` / ``BENCH_*.json`` files or directories
of them) it bootstraps confidence intervals over median differences and
exits 1 on significant regressions; with one BENCH history directory it
judges the newest record against all older ones, skipping cleanly while
the history is too short (see :mod:`repro.obs.compare`).  ``--format
json`` emits the verdict machine-readably (per-metric CIs, the
regression list, and the exit-status rationale).

Live telemetry (``figures``, ``report``): ``--progress`` renders a live
status line with per-worker heartbeats and a cache-aware ETA;
``--progress-stream PATH|FD`` additionally writes every telemetry event
as schema-versioned NDJSON, which ``comb top <path>`` can attach to from
another terminal mid-run.  Detached (neither flag), the executor takes
the exact pre-telemetry code path — results are bit-identical either
way (telemetry is observation-only wall-clock metadata).

Every executor-driven run also appends point outcomes and a closing
summary to the persistent run ledger (``results/ledger/ledger.jsonl``;
``--no-ledger`` opts out, ``--ledger-dir`` relocates it).  ``comb
history`` filters and aggregates that ledger (outcome counts, mean miss
wall, per-figure wall trend), and ``comb compare`` accepts a ledger
file as a run-history source.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import export_figures, format_report, render, run_all, run_figure
from .baselines import run_netperf
from .config import PRESETS, get_system
from .core import (
    CombSuite,
    PointCache,
    PollingConfig,
    PwwConfig,
    SweepExecutor,
    run_polling,
    run_pww,
)
from .core.executor import DEFAULT_CACHE_DIR
from .patterns import PATTERN_KINDS

#: ``comb pattern`` / ``comb trace`` accept ``halo`` for halo2d.
_PATTERN_ALIASES = {"halo": "halo2d", **{k: k for k in PATTERN_KINDS}}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for sweep points (default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk point cache",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help=f"point-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="attach the observability layer and write a metrics.json "
        "sidecar next to the results (values are unchanged)",
    )
    parser.add_argument(
        "--reps", type=_positive_int, default=1, metavar="N",
        help="replicates per sweep point on named RNG substreams "
        "(default: 1, the bit-identical single-shot path); aggregated "
        "points carry median/CI replication summaries and figures "
        "render CI bands",
    )
    parser.add_argument(
        "--ci-width", type=float, default=None, metavar="W",
        help="adaptive stopping: stop replicating a point once its "
        "availability bootstrap CI is at most this wide (cap: --reps); "
        "default: fixed --reps design",
    )
    _add_progress_flags(parser)
    _add_ledger_flags(parser)
    _add_check_flag(parser)


def _add_progress_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--progress", action="store_true",
        help="live TTY progress line (point counts, workers, ETA, "
        "stall flags) on stderr while the sweep runs",
    )
    parser.add_argument(
        "--progress-stream", default=None, metavar="PATH|FD",
        help="stream live telemetry as NDJSON (one schema-versioned "
        "JSON object per line) to a file path or a numeric fd; "
        "`comb top PATH` attaches to a running sweep through it",
    )


def _add_ledger_flags(parser: argparse.ArgumentParser) -> None:
    from .obs.ledger import DEFAULT_LEDGER_DIR

    parser.add_argument(
        "--no-ledger", action="store_true",
        help="skip appending this run to the persistent run ledger",
    )
    parser.add_argument(
        "--ledger-dir", default=str(DEFAULT_LEDGER_DIR), metavar="DIR",
        help=f"run-ledger directory (default: {DEFAULT_LEDGER_DIR})",
    )


def _add_check_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--check", action="store_true",
        help="run the simulation sanitizer (runtime invariant checks); "
        "output is unchanged, exit status is 1 on any violation",
    )


def _make_executor(args: argparse.Namespace, metrics=None, telemetry=None,
                   point_log: bool = False) -> SweepExecutor:
    cache = None if args.no_cache else PointCache(args.cache_dir)
    return SweepExecutor(jobs=args.jobs, cache=cache, check=args.check,
                         metrics=metrics, reps=getattr(args, "reps", 1),
                         ci_width=getattr(args, "ci_width", None),
                         telemetry=telemetry, point_log=point_log)


class _LiveSweep:
    """Per-invocation live-telemetry + run-ledger plumbing.

    Owns the telemetry channel, the hub with its consumers (NDJSON
    stream writer for ``--progress-stream``, TTY renderer for
    ``--progress``), and the run ledger (on by default; ``--no-ledger``
    opts out).  Unwritable targets surface as a one-line message in
    :attr:`error` — the PR 5 convention — never a traceback.
    """

    def __init__(self, args: argparse.Namespace, cmd: str) -> None:
        import time as _time
        import uuid
        from pathlib import Path

        self.run_id = uuid.uuid4().hex[:12]
        self.cmd = cmd
        self.jobs = getattr(args, "jobs", 1)
        self.channel = None
        self.hub = None
        self.stream_writer = None
        self.ledger = None
        self.error: Optional[str] = None
        self._t0_wall = _time.perf_counter()
        stream_target = getattr(args, "progress_stream", None)
        want_live = bool(getattr(args, "progress", False) or stream_target)
        if stream_target:
            from .obs.live_consumers import StreamWriter

            try:
                self.stream_writer = StreamWriter(stream_target)
            except OSError as exc:
                self.error = (f"error: cannot open progress stream "
                              f"{stream_target}: {exc}")
                return
        if not getattr(args, "no_ledger", False) \
                and hasattr(args, "ledger_dir"):
            from .obs.ledger import RunLedger

            ledger_dir = Path(args.ledger_dir)
            try:
                self.ledger = RunLedger(ledger_dir, self.run_id, cmd)
            except OSError as exc:
                self.error = (f"error: cannot open run ledger under "
                              f"{ledger_dir}: {exc}")
                return
        if want_live:
            from .obs.live import TelemetryChannel
            from .obs.live_consumers import ProgressRenderer, TelemetryHub

            self.channel = TelemetryChannel()
            consumers = []
            if self.stream_writer is not None:
                consumers.append(self.stream_writer)
            if getattr(args, "progress", False):
                consumers.append(ProgressRenderer())
            self.hub = TelemetryHub(self.channel, consumers)
            self.hub.start(self.run_id, cmd, self.jobs)

    @property
    def point_log(self) -> bool:
        return self.ledger is not None

    def finish(self, executor: SweepExecutor, reports=None,
               claims_ok: Optional[bool] = None) -> None:
        """Close the hub/stream and append this run to the ledger."""
        import time as _time
        from datetime import datetime, timezone

        if self.hub is not None:
            self.hub.close()
        if self.stream_writer is not None:
            self.stream_writer.close()
        if self.ledger is not None:
            from . import compiled

            for point in executor.point_records:
                self.ledger.record_point(
                    key=point["key"], kind=point["kind"],
                    system=point["system"], outcome=point["outcome"],
                    wall_s=point["wall_s"], seed=point["seed"],
                )
            figures = None
            if reports is not None:
                figures = {r.figure.fig_id: round(r.wall_s, 4)
                           for r in reports}
                if claims_ok is None:
                    claims_ok = all(r.ok for r in reports)
            self.ledger.record_run(
                wall_s=round(_time.perf_counter() - self._t0_wall, 4),
                timestamp=datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
                compiled=compiled.active(),
                reps=executor.reps,
                cache=executor.stats.to_dict(),
                figures=figures,
                claims_ok=claims_ok,
            )
            self.ledger.close()


def _maybe_observer(args: argparse.Namespace):
    """A fresh :class:`~repro.obs.Observer` when ``--metrics`` is set,
    else ``None`` (``use_observer(None)`` is a no-op)."""
    if not getattr(args, "metrics", False):
        return None
    from .obs import Observer

    return Observer()


def _write_metrics_sidecar(observer, executor: SweepExecutor, out_dir) -> int:
    """Write the ``metrics.json`` sidecar; return 0, or 1 on I/O failure
    (one-line diagnostic instead of a traceback)."""
    from pathlib import Path

    from .obs import write_metrics

    doc = observer.to_dict()
    doc["executor"] = executor.stats.to_dict()
    target = Path(out_dir) / "metrics.json"
    try:
        path = write_metrics(doc.pop("metrics"), target, extra=doc)
    except OSError as exc:
        print(f"error: cannot write metrics sidecar {target}: {exc}",
              file=sys.stderr)
        return 1
    print(f"wrote {path}")
    return 0


def _report_violations(violations) -> int:
    """Print a sanitizer verdict; return the process exit code."""
    if not violations:
        print("sanitizer: all invariants held (0 violations)")
        return 0
    print(f"sanitizer: {len(violations)} violation(s)", file=sys.stderr)
    for v in violations:
        print(f"  [{v.monitor}/{v.kind}] t={v.time:.9f} {v.detail}",
              file=sys.stderr)
    return 1


def _report_disagreements(disagreements) -> int:
    """Print replica-disagreement diagnostics; return the exit code.

    Silent when empty: single-shot runs and clean replicated runs never
    see this output.
    """
    if not disagreements:
        return 0
    print(f"replication: {len(disagreements)} replica disagreement(s) — "
          "bit-level divergence across RNG substreams on deterministic "
          "inputs (determinism bug)", file=sys.stderr)
    for d in disagreements:
        print(f"  {d.detail}", file=sys.stderr)
    return 1


def _add_system(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--system", default="GM", choices=sorted(PRESETS),
        help="system preset to simulate",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="comb",
        description="COMB MPI-overlap benchmark suite on a simulated cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("polling", help="one polling-method measurement")
    _add_system(p)
    p.add_argument("--size", type=float, default=100, help="message size (KB)")
    p.add_argument("--interval", type=int, default=10_000,
                   help="poll interval (loop iterations)")
    p.add_argument("--queue-depth", type=int, default=4)
    _add_check_flag(p)

    p = sub.add_parser("pww", help="one post-work-wait measurement")
    _add_system(p)
    p.add_argument("--size", type=float, default=100, help="message size (KB)")
    p.add_argument("--interval", type=int, default=100_000,
                   help="work interval (loop iterations)")
    p.add_argument("--tests-in-work", type=int, default=0,
                   help="MPI_Test calls inserted early in the work phase")
    _add_check_flag(p)

    p = sub.add_parser(
        "pattern",
        help="application communication pattern across N ranks "
        "(halo/sweep/allreduce on a crossbar or fat-tree)",
    )
    p.add_argument("pattern", choices=sorted(_PATTERN_ALIASES),
                   help="pattern kind (halo = halo2d)")
    _add_system(p)
    p.add_argument("--ranks", type=_positive_int, default=4,
                   help="rank count (one rank per node; default: 4)")
    p.add_argument("--size", type=float, default=100,
                   help="message size per neighbor/round (KB)")
    p.add_argument("--interval", type=int, default=100_000,
                   help="work interval per iteration (loop iterations)")
    p.add_argument("--iterations", type=_positive_int, default=6,
                   help="measured iterations (default: 6)")
    p.add_argument("--warmup", type=int, default=2,
                   help="untimed warmup iterations (default: 2)")
    p.add_argument("--topology", default="crossbar",
                   choices=("crossbar", "fattree"),
                   help="network fabric (default: crossbar)")
    p.add_argument("--arity", type=int, default=0,
                   help="fat-tree arity k (0: the switch's port count)")
    p.add_argument("--ghost-width", type=int, default=1,
                   help="halo ghost-layer width (scales the payload)")
    p.add_argument("--algorithm", default="binomial",
                   choices=("binomial", "rd"),
                   help="allreduce algorithm (default: binomial tree)")
    p.add_argument("--grid", type=int, nargs="*", default=None,
                   help="explicit process grid (default: balanced factors)")
    _add_check_flag(p)

    p = sub.add_parser("offload", help="application-offload verdict (§4.1)")
    _add_system(p)
    p.add_argument("--size", type=float, default=100, help="message size (KB)")

    p = sub.add_parser("netperf", help="netperf-style availability (§5)")
    _add_system(p)
    p.add_argument("--size", type=float, default=100, help="message size (KB)")
    p.add_argument("--mode", default="busywait",
                   choices=("blocking", "busywait"))

    p = sub.add_parser("figures", help="regenerate paper figures")
    p.add_argument("--ids", nargs="*", default=None,
                   help="figure ids (default: all of fig04..fig17)")
    p.add_argument("--per-decade", type=int, default=2)
    p.add_argument("--out", default=None,
                   help="directory for CSV/JSON export")
    p.add_argument("--no-plots", action="store_true")
    _add_executor_flags(p)

    p = sub.add_parser("report", help="full reproduction report with claims")
    p.add_argument("--per-decade", type=int, default=2)
    _add_executor_flags(p)

    p = sub.add_parser(
        "bench",
        help="time the benchmark grid; append a BENCH_<n>.json trajectory "
        "record (wall times, cache stats, engine event counts)",
    )
    p.add_argument("--ids", nargs="*", default=None,
                   help="subset of figure ids (default: all)")
    p.add_argument("--per-decade", type=int, default=1,
                   help="grid resolution (default: 1, the coarse grid)")
    p.add_argument("--out-dir", default=None,
                   help="trajectory directory (default: results/bench)")
    p.add_argument("--profile", default=None, metavar="FIGID",
                   help="additionally cProfile one figure (serial, "
                   "uncached) and embed the top cumulative-time rows "
                   "in the record")
    p.add_argument("--compare", action="store_true",
                   help="after recording, judge the new record against the "
                   "trajectory's older records (regression sentinel)")
    p.add_argument("--fail-on-regression", action="store_true",
                   help="with --compare: exit nonzero when the new record "
                   "regresses significantly")
    p.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                   help="worker processes for sweep points "
                   "(default: 1, serial — the recommended bench mode: "
                   "pooled points strand their event counts in workers)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk point cache (cold timings)")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help=f"point-cache directory (default: {DEFAULT_CACHE_DIR})")
    _add_ledger_flags(p)

    p = sub.add_parser(
        "compare",
        help="system comparison table (no args), or the statistical "
        "regression sentinel over run profiles (run paths)",
    )
    p.add_argument("runs", nargs="*", default=[],
                   help="0 args: system table; 1 arg: BENCH history dir "
                   "(newest record vs all older); 2 args: baseline run "
                   "vs candidate run (file or directory each)")
    p.add_argument("--systems", nargs="*", default=None,
                   help="preset names (default: all, plus the offload NIC)")
    p.add_argument("--size", type=float, default=100,
                   help="message size (KB)")
    p.add_argument("--min-rel", type=float, default=None, metavar="FRAC",
                   help="minimum relative slowdown to call a regression "
                   "(default: 0.05)")
    p.add_argument("--min-records", type=int, default=None, metavar="N",
                   help="baseline samples required per metric (default: 2)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="verdict output format (json: machine-readable "
                   "regressions, CIs, and exit-status rationale)")

    p = sub.add_parser(
        "history",
        help="query the persistent run ledger (filters, aggregates, "
        "per-figure wall-time trend)",
    )
    p.add_argument("--figure", default=None, metavar="FIGID",
                   help="restrict to runs/points touching this figure")
    p.add_argument("--system", default=None,
                   help="restrict point records to this system preset")
    p.add_argument("--kind", default=None,
                   choices=("polling", "pww", "pattern"),
                   help="restrict point records to this method kind")
    p.add_argument("--last", type=int, default=None, metavar="N",
                   help="only the newest N runs")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (default: text)")
    _add_ledger_flags(p)

    p = sub.add_parser(
        "top",
        help="attach to a running sweep via its --progress-stream file "
        "and render live point/worker state",
    )
    p.add_argument("stream", help="the sweep's --progress-stream file")
    p.add_argument("--once", action="store_true",
                   help="render one snapshot and exit (no refresh loop)")
    p.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="refresh period in seconds (default: 1.0)")

    p = sub.add_parser(
        "scenario", help="run a declarative JSON experiment spec"
    )
    p.add_argument("spec", help="path to the scenario JSON document")
    p.add_argument("--out", default=None,
                   help="write the full result document as JSON here")
    _add_ledger_flags(p)

    p = sub.add_parser(
        "profile",
        help="kernel-time breakdown of a polling run (per node, by label)",
    )
    _add_system(p)
    p.add_argument("--size", type=float, default=100, help="message size (KB)")
    p.add_argument("--interval", type=int, default=1_000,
                   help="poll interval (loop iterations)")

    p = sub.add_parser(
        "trace",
        help="run a figure or single point with the observability layer "
        "attached; export Chrome trace JSON + CSV timeline + metrics",
    )
    p.add_argument("target",
                   help="figure id (fig04..fig17), 'polling', 'pww', or a "
                   "pattern kind (halo/halo2d/halo3d/sweep/allreduce)")
    _add_system(p)
    p.add_argument("--size", type=float, default=100,
                   help="message size (KB; point targets)")
    p.add_argument("--interval", type=int, default=None,
                   help="poll/work interval in loop iterations "
                   "(point targets; default: the method's default)")
    p.add_argument("--ranks", type=_positive_int, default=4,
                   help="rank count (pattern targets; default: 4)")
    p.add_argument("--topology", default="crossbar",
                   choices=("crossbar", "fattree"),
                   help="network fabric (pattern targets)")
    p.add_argument("--per-decade", type=int, default=1,
                   help="grid resolution (figure targets; default: 1)")
    p.add_argument("--out", default="results/trace",
                   help="export directory (default: results/trace)")
    p.add_argument("--ring-capacity", type=_positive_int, default=65536,
                   help="per-kind event ring size (newest events survive)")
    p.add_argument("--kernel", action="store_true",
                   help="also record the per-event kernel stream (very "
                   "noisy; inflates the trace by orders of magnitude)")
    p.add_argument("--attribution", action="store_true",
                   help="stitch events into causal spans and print a "
                   "per-point critical-path decomposition of wait time / "
                   "availability loss; also writes <target>.attribution.json")

    p = sub.add_parser(
        "lint",
        help="static determinism/units/cache-key checks (comb-lint)",
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files/directories to lint (default: src)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="output format (sarif: SARIF "
                   "2.1.0 for GitHub code scanning)")
    p.add_argument("--baseline", default="tools/lint_baseline.json",
                   help="grandfathered-violation baseline file")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore the baseline file (report everything)")
    p.add_argument("--write-baseline", action="store_true",
                   help="rewrite the baseline to grandfather every "
                   "current violation (DET/CACHE rules excluded)")
    p.add_argument("--select", nargs="*", default=None, metavar="RULE",
                   help="restrict to these rule ids")
    p.add_argument("--jobs", type=int, default=1,
                   help="fan file-rule evaluation out over N spawn-pool "
                   "workers (results identical to --jobs 1)")
    p.add_argument("--exclude", nargs="*", default=None, metavar="DIR",
                   help="directory names to skip during discovery "
                   "(e.g. lint_fixtures when linting tests/)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    return parser


def _maybe_sanitizer(check: bool):
    """A fresh ambient sanitizer when ``check`` is set, else ``None``
    (``use_sanitizer(None)`` is a no-op)."""
    if not check:
        return None
    from .verify import Sanitizer

    return Sanitizer()


def _run_lint(args: argparse.Namespace) -> int:
    """``comb lint``: run the static analyzer and gate on new violations."""
    from .lint import (
        Baseline,
        NEVER_BASELINE_PREFIXES,
        format_json,
        format_rule_list,
        format_sarif,
        format_text,
        lint_paths,
    )

    if args.list_rules:
        print(format_rule_list())
        return 0
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        baseline = Baseline.load(args.baseline)
        forbidden = baseline.forbidden_entries()
        if forbidden:
            rules = sorted({str(e.get("rule")) for e in forbidden})
            print(
                f"error: baseline {args.baseline} grandfathers "
                f"{'/'.join(rules)} violations; the "
                f"{'/'.join(NEVER_BASELINE_PREFIXES)} rule families must "
                "be fixed, never baselined",
                file=sys.stderr,
            )
            return 2
    select = set(args.select) if args.select else None
    exclude = set(args.exclude) if args.exclude else None
    report = lint_paths(args.paths, baseline=baseline, select=select,
                        jobs=max(args.jobs, 1), exclude=exclude)
    if args.write_baseline:
        keep = [
            v for v in report.all_found()
            if not v.rule.startswith(NEVER_BASELINE_PREFIXES)
        ]
        Baseline.from_violations(keep).save(args.baseline)
        dropped = len(report.all_found()) - len(keep)
        print(f"wrote {len(keep)} baseline entrie(s) to {args.baseline}"
              + (f" ({dropped} DET/CACHE violation(s) NOT grandfathered — "
                 "fix them)" if dropped else ""))
        return 1 if dropped else 0
    if args.format == "json":
        print(format_json(report))
    elif args.format == "sarif":
        print(format_sarif(report))
    else:
        print(format_text(report))
    return report.exit_code


def _run_trace(args: argparse.Namespace) -> int:
    """``comb trace``: one observed run, three export files."""
    from pathlib import Path

    from .analysis.figures import ALL_FIGURES
    from .obs import (
        Observer,
        use_observer,
        write_chrome_trace,
        write_csv_timeline,
        write_metrics,
    )

    observer = Observer(ring_capacity=args.ring_capacity, kernel=args.kernel)
    target = args.target
    executor_stats = None
    if target == "polling":
        system = get_system(args.system)
        with use_observer(observer):
            run_polling(system, PollingConfig(
                msg_bytes=int(args.size * 1024),
                poll_interval_iters=args.interval or 10_000,
            ))
        label = f"comb polling {system.name}"
    elif target == "pww":
        system = get_system(args.system)
        with use_observer(observer):
            run_pww(system, PwwConfig(
                msg_bytes=int(args.size * 1024),
                work_interval_iters=(
                    args.interval if args.interval is not None else 100_000
                ),
            ))
        label = f"comb pww {system.name}"
    elif target in _PATTERN_ALIASES:
        from .core.executor import PointTask, _point_marker
        from .patterns import PatternConfig, run_pattern

        system = get_system(args.system)
        cfg = PatternConfig(
            pattern=_PATTERN_ALIASES[target],
            ranks=args.ranks,
            msg_bytes=int(args.size * 1024),
            work_interval_iters=(
                args.interval if args.interval is not None else 100_000
            ),
            topology=args.topology,
        )
        # Bracket the stream with executor-style point markers so
        # attribution labels the point method="pattern" and applies the
        # warmup-window filter (see repro.obs.attribution).
        marker = _point_marker(PointTask("pattern", system, cfg))
        with use_observer(observer):
            observer.tracer.record(0.0, "executor", "point_start", marker)
            run_pattern(system, cfg)
            observer.tracer.record(0.0, "executor", "point_end", ("pattern",))
        label = f"comb {target} {system.name} x{cfg.ranks}"
    elif target in ALL_FIGURES:
        # Forced serial + uncached: cached points never simulate (no
        # events) and pooled points simulate in other processes (events
        # stranded there) — tracing wants the complete timeline.
        from .analysis import run_figure as _run_figure

        with SweepExecutor(jobs=1, cache=None,
                           metrics=observer.metrics) as executor:
            with use_observer(observer):
                _run_figure(target, per_decade=args.per_decade,
                            executor=executor)
            executor_stats = executor.stats
        label = f"comb {target}"
    else:
        print(f"error: unknown trace target {target!r}; expected a figure "
              f"id ({'/'.join(sorted(ALL_FIGURES))}), 'polling', 'pww', or "
              f"a pattern ({'/'.join(sorted(_PATTERN_ALIASES))})",
              file=sys.stderr)
        return 2

    events = observer.events()
    dropped = observer.tracer.dropped()
    out_dir = Path(args.out)
    try:
        paths = [
            write_chrome_trace(events, out_dir / f"{target}.trace.json",
                               label=label, dropped=dropped),
            write_csv_timeline(events, out_dir / f"{target}.timeline.csv",
                               dropped=dropped),
        ]
        doc = observer.to_dict()
        if executor_stats is not None:
            doc["executor"] = executor_stats.to_dict()
        paths.append(write_metrics(doc.pop("metrics"),
                                   out_dir / f"{target}.metrics.json",
                                   extra=doc))
        if args.attribution:
            paths.append(_write_attribution(events, out_dir, target))
    except OSError as exc:
        print(f"error: cannot write trace output under {out_dir}: {exc}",
              file=sys.stderr)
        return 1
    print(observer.summary())
    for path in paths:
        print(f"wrote {path}")
    print(f"open {paths[0]} in about:tracing or https://ui.perfetto.dev")
    return 0


def _write_attribution(events, out_dir, target) -> object:
    """Stitch + attribute ``events``; print the table, write the JSON."""
    import json

    from .obs import (
        TRACE_SCHEMA_VERSION,
        attribute_events,
        format_attribution,
        stitch,
    )

    points = attribute_events(events)
    forest = stitch(events)
    print(format_attribution(points))
    path = out_dir / f"{target}.attribution.json"
    doc = {
        "schema_version": TRACE_SCHEMA_VERSION,
        "points": [pt.to_dict() for pt in points],
        "spans": forest.to_dicts(),
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def _run_bench(args: argparse.Namespace) -> int:
    """``comb bench``: one timed pass over the grid, one BENCH record."""
    from pathlib import Path

    import uuid

    from .core.bench import DEFAULT_OUT_DIR, run_bench, write_record

    cache = None if args.no_cache else PointCache(args.cache_dir)
    ledger = None
    if not args.no_ledger:
        from .obs.ledger import RunLedger

        ledger_dir = Path(args.ledger_dir)
        try:
            ledger = RunLedger(ledger_dir, uuid.uuid4().hex[:12], "bench")
        except OSError as exc:
            print(f"error: cannot open run ledger under {ledger_dir}: {exc}",
                  file=sys.stderr)
            return 1
    try:
        record = run_bench(ids=args.ids, per_decade=args.per_decade,
                           jobs=args.jobs, cache=cache,
                           profile=args.profile, echo=print, ledger=ledger)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if ledger is not None:
            ledger.close()
    out_dir = Path(args.out_dir) if args.out_dir else DEFAULT_OUT_DIR
    path = write_record(record, out_dir)
    cache_doc = record["cache"]
    lookups = cache_doc["hits"] + cache_doc["misses"]
    line = (f"\ntotal {record['total_s']:.2f}s, cache hit rate "
            f"{cache_doc['hit_rate']:.0%} ({cache_doc['hits']}/{lookups})")
    if "events_processed" in record:
        line += f", {record['events_processed']:,} engine events"
    print(line)
    print(f"wrote {path}")
    if args.compare:
        from .obs.compare import DEFAULT_MIN_RECORDS, compare_history

        report = compare_history(out_dir)
        if report is None:
            print(f"compare: insufficient history — fewer than "
                  f"{DEFAULT_MIN_RECORDS + 1} BENCH records in {out_dir}; "
                  f"nothing to judge yet")
        else:
            print(f"compare: {path.name} vs the trajectory's older records")
            print(report.format())
            if args.fail_on_regression and report.exit_code:
                return report.exit_code
    return 0 if record["claims_ok"] else 1


def _run_compare_runs(args: argparse.Namespace) -> int:
    """``comb compare <runs…>``: the statistical regression sentinel."""
    import json as _json
    from pathlib import Path

    from .obs import compare_history, compare_paths
    from .obs.compare import DEFAULT_MIN_RECORDS, DEFAULT_MIN_REL

    as_json = getattr(args, "format", "text") == "json"
    min_rel = args.min_rel if args.min_rel is not None else DEFAULT_MIN_REL
    min_records = (args.min_records if args.min_records is not None
                   else DEFAULT_MIN_RECORDS)
    runs = [Path(r) for r in args.runs]
    for run in runs:
        if not run.exists():
            print(f"error: run path {run} does not exist", file=sys.stderr)
            return 2
    if len(runs) == 1:
        # History mode: either a BENCH trajectory directory or a run
        # ledger file (newest vs older makes no sense for a ledger, so
        # ledgers are only valid as one side of an A-vs-B compare).
        if not runs[0].is_dir():
            print(f"error: history mode needs a directory of BENCH_*.json "
                  f"records, got {runs[0]}", file=sys.stderr)
            return 2
        report = compare_history(runs[0], min_rel=min_rel,
                                 min_records=min_records)
        if report is None:
            # Degenerate histories (a single record, or --min-records 0
            # against one) are "insufficient history", never judged
            # against an empty/zero-width baseline.
            if as_json:
                print(_json.dumps({
                    "schema_version": 1,
                    "comparisons": [], "skipped": [], "regressions": [],
                    "exit_code": 0,
                    "exit_rationale": (
                        f"insufficient history: fewer than "
                        f"{max(min_records, 1) + 1} BENCH records"
                    ),
                }, indent=2, sort_keys=True))
            else:
                print(f"compare: insufficient history — fewer than "
                      f"{max(min_records, 1) + 1} BENCH records in "
                      f"{runs[0]}; nothing to judge yet (not a failure)")
            return 0
        if not as_json:
            print(f"compare: newest record in {runs[0]} vs all older "
                  f"records")
    elif len(runs) == 2:
        # Explicit A-vs-B: the user picked the samples, so singleton
        # baselines are judged (zero-width CI) instead of skipped;
        # --min-records restores the stricter gate.
        report = compare_paths(
            runs[0], runs[1], min_rel=min_rel,
            min_records=min_records if args.min_records is not None else 1,
        )
        if not as_json:
            print(f"compare: {runs[1]} (candidate) vs {runs[0]} (baseline)")
    else:
        print("error: compare takes 0 run paths (system table), 1 "
              "(BENCH history dir), or 2 (baseline candidate)",
              file=sys.stderr)
        return 2
    if as_json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format())
    return report.exit_code


def _run_history(args: argparse.Namespace) -> int:
    """``comb history``: deterministic aggregates over the run ledger."""
    import json as _json
    from pathlib import Path

    from .obs.ledger import (
        filter_records,
        format_history,
        history_aggregate,
        ledger_path,
        read_records,
    )

    path = ledger_path(Path(args.ledger_dir))
    records, corrupt = read_records(path)
    if not records and not path.exists():
        print(f"history: no ledger at {path} yet (runs append to it by "
              f"default; --ledger-dir selects another)")
        return 0
    filtered = filter_records(
        records, figure=args.figure, system=args.system,
        kind=args.kind, last=args.last,
    )
    aggregate = history_aggregate(filtered)
    if args.format == "json":
        aggregate["corrupt_lines"] = corrupt
        print(_json.dumps(aggregate, indent=2, sort_keys=True))
    else:
        print(format_history(aggregate, corrupt=corrupt))
    return 0


def _run_top(args: argparse.Namespace) -> int:
    """``comb top``: attach to a sweep through its stream file."""
    from pathlib import Path

    from .obs.live_consumers import run_top

    stream = Path(args.stream)
    if not stream.exists():
        print(f"error: stream file {stream} does not exist (start the "
              f"sweep with --progress-stream {stream})", file=sys.stderr)
        return 2
    try:
        return run_top(stream, once=args.once,
                       interval_s=max(args.interval, 0.1))
    except OSError as exc:
        print(f"error: cannot read stream {stream}: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:  # pragma: no cover - interactive detach
        print()
        return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "polling":
        from .verify.context import use_sanitizer

        sanitizer = _maybe_sanitizer(args.check)
        with use_sanitizer(sanitizer):
            pt = run_polling(get_system(args.system), PollingConfig(
                msg_bytes=int(args.size * 1024),
                poll_interval_iters=args.interval,
                queue_depth=args.queue_depth,
            ))
        print(f"{pt.system}: {pt.msg_bytes // 1024} KB, poll interval "
              f"{pt.poll_interval_iters} iters")
        print(f"  availability = {pt.availability:.3f}")
        print(f"  bandwidth    = {pt.bandwidth_MBps:.2f} MB/s")
        print(f"  messages     = {pt.msgs}, interrupts = {pt.interrupts}")
        if sanitizer is not None:
            return _report_violations(sanitizer.finalize())
        return 0

    if args.command == "pww":
        from .verify.context import use_sanitizer

        sanitizer = _maybe_sanitizer(args.check)
        with use_sanitizer(sanitizer):
            pt = run_pww(get_system(args.system), PwwConfig(
                msg_bytes=int(args.size * 1024),
                work_interval_iters=args.interval,
                tests_in_work=args.tests_in_work,
            ))
        print(f"{pt.system}: {pt.msg_bytes // 1024} KB, work interval "
              f"{pt.work_interval_iters} iters")
        print(f"  availability = {pt.availability:.3f}")
        print(f"  bandwidth    = {pt.bandwidth_MBps:.2f} MB/s")
        print(f"  post  = {pt.post_s * 1e6:8.1f} us/batch")
        print(f"  work  = {pt.work_s * 1e6:8.1f} us/batch "
              f"(dry {pt.work_dry_s * 1e6:.1f} us)")
        print(f"  wait  = {pt.wait_s * 1e6:8.1f} us/batch")
        if sanitizer is not None:
            return _report_violations(sanitizer.finalize())
        return 0

    if args.command == "pattern":
        from .patterns import PatternConfig, run_pattern
        from .verify.context import use_sanitizer

        sanitizer = _maybe_sanitizer(args.check)
        cfg = PatternConfig(
            pattern=_PATTERN_ALIASES[args.pattern],
            ranks=args.ranks,
            msg_bytes=int(args.size * 1024),
            work_interval_iters=args.interval,
            iterations=args.iterations,
            warmup_iterations=args.warmup,
            topology=args.topology,
            arity=args.arity,
            ghost_width=args.ghost_width,
            algorithm=args.algorithm,
            grid=tuple(args.grid) if args.grid else (),
        )
        with use_sanitizer(sanitizer):
            pt = run_pattern(get_system(args.system), cfg)
        algo = f" [{pt.algorithm}]" if pt.algorithm else ""
        print(f"{pt.system}: {pt.pattern}{algo}, {pt.ranks} ranks on "
              f"{pt.topology}, {pt.msg_bytes // 1024} KB, work interval "
              f"{pt.work_interval_iters} iters")
        print(f"  availability = {pt.availability:.3f} (median) "
              f"[min {pt.availability_min:.3f}, max {pt.availability_max:.3f}]")
        print(f"  bandwidth    = {pt.bandwidth_MBps:.2f} MB/s aggregate")
        print(f"  messages     = {pt.msgs}, interrupts = {pt.interrupts}")
        print("  per-rank availability:")
        for rank, avail in enumerate(pt.availability_per_rank):
            print(f"    rank {rank:>3d}: {avail:.3f}")
        if sanitizer is not None:
            return _report_violations(sanitizer.finalize())
        return 0

    if args.command == "offload":
        suite = CombSuite(get_system(args.system))
        print(suite.offload_report(msg_bytes=int(args.size * 1024)))
        return 0

    if args.command == "netperf":
        r = run_netperf(get_system(args.system),
                        msg_bytes=int(args.size * 1024),
                        wait_mode=args.mode)
        print(f"{r.system} netperf ({r.wait_mode}): "
              f"availability={r.availability:.3f}, "
              f"bandwidth={r.bandwidth_MBps:.2f} MB/s")
        return 0

    if args.command == "figures":
        from .obs.context import use_observer

        observer = _maybe_observer(args)
        live = _LiveSweep(args, "figures")
        if live.error:
            print(live.error, file=sys.stderr)
            return 1
        with _make_executor(
            args, metrics=observer.metrics if observer else None,
            telemetry=live.channel, point_log=live.point_log,
        ) as executor:
            with use_observer(observer):
                reports = run_all(per_decade=args.per_decade,
                                  fig_ids=args.ids, executor=executor)
            if args.out:
                paths = export_figures([r.figure for r in reports], args.out)
                print(f"wrote {len(paths)} files to {args.out}")
            if observer is not None and _write_metrics_sidecar(
                observer, executor, args.out or "results"
            ):
                live.finish(executor, reports)
                return 1
        live.finish(executor, reports)
        for rep in reports:
            if not args.no_plots:
                print(render(rep.figure))
            for c in rep.claims:
                mark = "PASS" if c.ok else "FAIL"
                print(f"  [{mark}] {c.claim} ({c.detail})")
        if _report_disagreements(executor.disagreements):
            return 1
        if args.check:
            return _report_violations(executor.violations)
        return 0

    if args.command == "bench":
        return _run_bench(args)

    if args.command == "history":
        return _run_history(args)

    if args.command == "top":
        return _run_top(args)

    if args.command == "compare":
        if args.runs:
            return _run_compare_runs(args)
        from .analysis.tables import format_table, system_comparison
        from .ext import offload_nic_system

        if args.systems:
            systems = [get_system(name) for name in args.systems]
        else:
            systems = [get_system(n) for n in sorted(PRESETS)]
            systems.append(offload_nic_system())
        rows = system_comparison(systems, msg_bytes=int(args.size * 1024))
        print(format_table(rows))
        return 0

    if args.command == "scenario":
        import json as _json
        import uuid as _uuid
        from pathlib import Path as _Path

        from .scenario import format_scenario_results, run_scenario

        ledger = None
        if not args.no_ledger:
            from .obs.ledger import RunLedger

            ledger_dir = _Path(args.ledger_dir)
            try:
                ledger = RunLedger(ledger_dir, _uuid.uuid4().hex[:12],
                                   "scenario")
            except OSError as exc:
                print(f"error: cannot open run ledger under {ledger_dir}: "
                      f"{exc}", file=sys.stderr)
                return 1
        try:
            results = run_scenario(args.spec, ledger=ledger)
        finally:
            if ledger is not None:
                ledger.close()
        print(format_scenario_results(results))
        if args.out:
            _Path(args.out).write_text(_json.dumps(results, indent=2))
            print(f"\nwrote {args.out}")
        return 0

    if args.command == "profile":
        import repro.core.polling as polling
        from .mpi import build_world

        system = get_system(args.system)
        cfg = PollingConfig(
            msg_bytes=int(args.size * 1024),
            poll_interval_iters=args.interval, measure_s=0.03,
        )
        world = build_world(system)
        state = polling._WorkerState()
        worker = world.engine.spawn(
            polling._worker(world, cfg, state), name="worker"
        )
        world.engine.spawn(polling._support(world, cfg), name="support")
        world.engine.run(worker)
        pt = state.result
        print(f"{pt.system}: bw={pt.bandwidth_MBps:.2f} MB/s, "
              f"availability={pt.availability:.3f}\n")
        for node in world.cluster.nodes:
            role = "worker" if node.node_id == 0 else "support"
            print(f"[{role}] {node.cpu.profile_report()}")
            snap = node.cpu.snapshot()
            el = node.cpu.elapsed()
            print(f"  shares: user={snap['user_s'] / el:.3f} "
                  f"kernel={snap['kernel_s'] / el:.3f} "
                  f"idle={snap['idle_s'] / el:.3f}\n")
        return 0

    if args.command == "lint":
        return _run_lint(args)

    if args.command == "trace":
        return _run_trace(args)

    if args.command == "report":
        from .obs.context import use_observer

        observer = _maybe_observer(args)
        live = _LiveSweep(args, "report")
        if live.error:
            print(live.error, file=sys.stderr)
            return 1
        with _make_executor(
            args, metrics=observer.metrics if observer else None,
            telemetry=live.channel, point_log=live.point_log,
        ) as executor:
            with use_observer(observer):
                reports = run_all(per_decade=args.per_decade,
                                  executor=executor)
            if observer is not None and _write_metrics_sidecar(
                observer, executor, "results"
            ):
                live.finish(executor, reports)
                return 1
        live.finish(executor, reports)
        print(format_report(reports))
        if _report_disagreements(executor.disagreements):
            return 1
        if args.check and _report_violations(executor.violations):
            return 1
        return 0 if all(r.ok for r in reports) else 1

    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
