"""Transport devices: GM (OS-bypass), Portals (kernel, offloaded), TCP.

Device classes are imported lazily: the hardware layer imports
``repro.transport.packets`` at module load, and eager imports here would
close an import cycle (hardware → packets → __init__ → base → hardware).
"""

from .packets import (
    Envelope,
    Packet,
    PacketKind,
    control_packet,
    next_msg_id,
    packetize,
)

__all__ = [
    "Device",
    "DeviceStats",
    "Envelope",
    "GmDevice",
    "Packet",
    "PacketKind",
    "PortalsDevice",
    "TX_WINDOW_PKTS",
    "TcpDevice",
    "control_packet",
    "next_msg_id",
    "packetize",
]

_LAZY = {
    "Device": ".base",
    "DeviceStats": ".base",
    "GmDevice": ".gm",
    "PortalsDevice": ".portals",
    "TcpDevice": ".portals",
    "TX_WINDOW_PKTS": ".portals",
}


def __getattr__(name: str):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib

    module = importlib.import_module(module_name, __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
