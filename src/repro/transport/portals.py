"""Kernel-based Portals 3.0 transport model (*application offload*).

Behavioural essentials reproduced from the paper (§3, §4):

* **Kernel-driven** — posting a send or receive traps into the kernel
  (expensive: Fig 10's high Portals post times); every arriving packet
  interrupts the host CPU; data handlers run the reliability/flow-control
  module and copy payloads from kernel buffers into user space.
* **Application offload** — matching and delivery happen in the kernel, so
  communication progresses with *no* MPI library calls; request completion
  flags are simply set in user-visible memory.  PWW's wait phase therefore
  collapses to ~0 once the work interval covers the transfer (Fig 11).
* **CPU contention** — interrupt handling + copies steal cycles from the
  application; this both caps bandwidth below GM's and produces the low
  CPU-availability plateau of Figs 4/15.

Two message protocols, mirroring the Portals MPI design:

* **short** (< ``rndv_threshold_bytes``): pushed eagerly; an unexpected
  short message buffers in kernel memory and pays a second copy when the
  receive is finally posted;
* **long**: the sender's kernel publishes a header (RTS); the *receiver's
  kernel* issues a GET once a matching receive exists, and the data streams
  straight into the posted user buffer.  Both halves are kernel-driven, so
  application offload is preserved and long unexpected messages never pay a
  double copy.

The same class also serves the TCP-flavoured stack used by the netperf
baseline (:class:`TcpDevice`), which differs only in its cost constants
(and never takes the long-message path).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..config import PortalsParams, ProgressModel, SystemConfig
from ..hardware.cpu import CpuContext
from ..hardware.memory import copy_time
from ..hardware.nic import SendJob
from ..hardware.node import Node
from ..mpi.matching import Admission, PostedQueue, UnexpectedQueue
from ..mpi.request import Request
from ..os.driver import GoBackNRx, GoBackNTx, RxDecision
from ..sim.engine import Engine
from ..sim.events import Event
from ..sim.resources import Store
from .base import Device
from .packets import (
    Envelope,
    Packet,
    PacketKind,
    control_packet,
    next_msg_id,
    packetize,
)

#: Default go-back-N window (see ``PortalsParams.tx_window_pkts``).
TX_WINDOW_PKTS = 4


class HeadRecord:
    """Envelope record offered to the kernel matcher.

    Produced by the first packet of a short (pushed) message or by a long
    message's RTS header; ``long`` distinguishes the two.
    """

    __slots__ = ("envelope", "msg_id", "long")

    def __init__(self, envelope: Envelope, msg_id: int, long: bool):
        self.envelope = envelope
        self.msg_id = msg_id
        self.long = long


class UnexpectedMessage:
    """A message with no posted receive.

    Short messages accumulate payload in kernel buffers (``complete`` flips
    once fully arrived); long messages store *only* this header record.
    """

    __slots__ = ("envelope", "msg_id", "long", "complete")

    def __init__(self, envelope: Envelope, msg_id: int, long: bool):
        self.envelope = envelope
        self.msg_id = msg_id
        self.long = long
        self.complete = False


class _Assembly:
    """Kernel-side reassembly state for one inbound message."""

    __slots__ = ("binding", "got_last", "envelope")

    def __init__(self):
        self.binding = None          # Request | UnexpectedMessage | None
        self.got_last = False
        self.envelope: Optional[Envelope] = None


class PortalsDevice(Device):
    """Per-rank kernel-Portals engine."""

    def __init__(self, engine: Engine, node: Node, rank: int, system: SystemConfig):
        super().__init__(engine, node, rank, system)
        self.params: PortalsParams = self._select_params(system)
        self.k_posted = PostedQueue()
        self.k_unexpected = UnexpectedQueue()
        self.admission = Admission(self._k_match)
        self._send_seq: Dict[int, int] = {}
        self._asm: Dict[int, _Assembly] = {}
        self._pending_get: Dict[int, Tuple[Request, int]] = {}
        self._txq = Store(engine, name=f"rank{rank}.txq")
        self._gbn_tx: Dict[int, GoBackNTx] = {}
        self._gbn_rx: Dict[int, GoBackNRx] = {}
        self._tx_waiters: Dict[int, Deque[Event]] = {}
        self._rto_deadline: Dict[int, float] = {}
        self._rto_armed: Dict[int, bool] = {}
        node.nic.rx_handler = self.nic_rx
        node.transport = self
        engine.spawn(self._tx_pump(), name=f"rank{rank}.txpump")

    @staticmethod
    def _select_params(system: SystemConfig):
        return system.portals

    # ------------------------------------------------------------- semantics
    @property
    def progress_model(self) -> ProgressModel:
        return ProgressModel.OFFLOADED

    def has_work(self) -> bool:
        # The kernel does everything; the library never has pending work.
        return False

    # ------------------------------------------------------------ operations
    def isend(self, ctx: CpuContext, req: Request):
        p = self.params
        dest_node = self.node_of(req.peer)
        # Trap into the kernel: descriptor setup + match-entry bookkeeping.
        yield ctx.trap(p.isend_trap_s, label="isend_trap")
        seq = self._send_seq.get(req.peer, 0)
        self._send_seq[req.peer] = seq + 1
        msg_id = next_msg_id()
        req.msg_id = msg_id
        env = Envelope(self.rank, req.peer, req.tag, req.nbytes, seq)
        if req.nbytes >= p.rndv_threshold_bytes:
            # Long protocol: publish the header; data moves when the
            # receiver's kernel pulls it.
            self._pending_get[msg_id] = (req, dest_node)
            rts = control_packet(
                PacketKind.RTS, self.node.node_id, dest_node, msg_id,
                envelope=env,
            )
            self.stats.ctrl_packets += 1
            self.node.nic.submit(SendJob([rts], urgent=True))
        else:
            pkts = packetize(
                PacketKind.DATA, self.node.node_id, dest_node, msg_id,
                req.nbytes, self.system.machine.nic.mtu_bytes,
                envelope=env, meta={"proto": "short"},
            )
            self._txq.put((req, pkts))
        return req

    def irecv(self, ctx: CpuContext, req: Request):
        p = self.params
        yield ctx.trap(p.irecv_trap_s, label="irecv_trap")
        rec = self.k_unexpected.match(req.peer, req.tag)
        if rec is None:
            self.k_posted.post(req.peer, req.tag, req)
        elif rec.long:
            # Only a header is buffered: bind and pull (kernel-driven GET).
            req.msg_id = rec.msg_id
            asm = self._asm.setdefault(rec.msg_id, _Assembly())
            asm.envelope = rec.envelope
            asm.binding = req
            self._issue_get(rec)
        elif rec.complete:
            # Whole short message in kernel buffers: one more copy to user.
            env = rec.envelope
            yield ctx.trap(
                copy_time(env.nbytes, p.rx_copy_bandwidth_Bps),
                fn=lambda: req.complete(src=env.src_rank, tag=env.tag),
                label="unexpected_copy",
            )
        else:
            # Short message still streaming in: re-bind the remaining
            # packets to the user buffer.
            asm = self._asm.get(rec.msg_id)
            if asm is not None:
                asm.binding = req
            req.msg_id = rec.msg_id
        return req

    def progress(self, ctx: CpuContext):
        """Library progress: a cheap user-space completion-flag check."""
        self.stats.progress_passes += 1
        yield ctx.compute(self.params.progress_poll_s)

    def peek_unexpected(self, src: int, tag: int):
        rec = self.k_unexpected.peek(src, tag)
        return rec.envelope if rec is not None else None

    def cancel_recv(self, req) -> bool:
        return self.k_posted.remove(req)

    # ------------------------------------------------------------- transmit
    def _tx_pump(self):
        """Kernel transmit pump: window-limited, per-packet driver work.

        Each packet is admitted into the destination's go-back-N window
        (blocking while it is full), tagged with its sequence number, and
        handed to the NIC; the retransmission timer covers it until the
        cumulative ack arrives.
        """
        p = self.params
        cpu = self.node.cpu
        while True:
            req, pkts = yield self._txq.get()
            for pkt in pkts:
                yield self._gbn_slot(pkt.dst)
                yield cpu.kernel_work(p.tx_kernel_s, label="tx_kernel")
                flow = self._tx_flow(pkt.dst)
                pkt.meta["seq"] = flow.register(pkt)
                on_done = None
                if pkt.is_last:
                    # Local completion: NIC has DMA'd the last fragment off
                    # host memory; the kernel flags the request done with no
                    # library involvement (application offload).
                    on_done = (lambda r=req: self._tx_done(r))
                self.node.nic.submit(SendJob([pkt], on_done=on_done))
                self._arm_rto(pkt.dst)

    def _tx_done(self, req: Request) -> None:
        if not req.done:
            req.complete()

    # --------------------------------------------------------- reliability
    def _tx_flow(self, dest_node: int) -> GoBackNTx:
        flow = self._gbn_tx.get(dest_node)
        if flow is None:
            flow = GoBackNTx(self.params.tx_window_pkts,
                             self.params.dup_ack_threshold)
            self._gbn_tx[dest_node] = flow
        return flow

    def _rx_flow(self, src_node: int) -> GoBackNRx:
        flow = self._gbn_rx.get(src_node)
        if flow is None:
            flow = GoBackNRx(
                min(self.params.ack_every, self.params.tx_window_pkts)
            )
            self._gbn_rx[src_node] = flow
        return flow

    def _gbn_slot(self, dest_node: int) -> Event:
        """Event firing when the destination's window has room."""
        ev = Event(self.engine)
        if self._tx_flow(dest_node).can_send:
            ev.succeed()
        else:
            self._tx_waiters.setdefault(dest_node, deque()).append(ev)
        return ev

    def _on_ack(self, dest_node: int, cum: int) -> None:
        """Cumulative ack from ``dest_node``'s receiver (kernel context)."""
        flow = self._tx_flow(dest_node)
        released, retransmit = flow.on_ack(cum)
        if released:
            self._rto_deadline[dest_node] = (
                self.engine.now + self.params.rto_s
            )
            waiters = self._tx_waiters.get(dest_node)
            while waiters and flow.can_send:
                waiters.popleft().succeed()
        if retransmit:
            self._retransmit(dest_node, retransmit)

    def _retransmit(self, dest_node: int, pkts) -> None:
        """Queue retransmissions (kernel work per packet, as on first tx)."""
        p = self.params
        for pkt in pkts:
            self.node.cpu.kernel_work(
                p.tx_kernel_s,
                fn=(lambda q=pkt: self.node.nic.submit(SendJob([q]))),
                label="tx_retransmit",
            )
        self._rto_deadline[dest_node] = self.engine.now + p.rto_s

    def _arm_rto(self, dest_node: int) -> None:
        self._rto_deadline[dest_node] = self.engine.now + self.params.rto_s
        if self._rto_armed.get(dest_node):
            return
        self._rto_armed[dest_node] = True
        self.engine.schedule_callback(
            self.params.rto_s, lambda: self._check_rto(dest_node)
        )

    def _check_rto(self, dest_node: int) -> None:
        self._rto_armed[dest_node] = False
        flow = self._tx_flow(dest_node)
        if not flow.has_unacked:
            return
        deadline_s = self._rto_deadline.get(dest_node, 0.0)
        if self.engine.now + 1e-12 >= deadline_s:
            self._retransmit(dest_node, flow.on_timeout())
            delay_s = self.params.rto_s
        else:
            # Progress moved the deadline_s: re-check exactly then.
            delay_s = deadline_s - self.engine.now
        self._rto_armed[dest_node] = True
        self.engine.schedule_callback(
            delay_s, lambda: self._check_rto(dest_node)
        )

    # ---------------------------------------------------------------- NIC rx
    def nic_rx(self, pkt: Packet) -> None:
        """NIC receive: DMA landed in the kernel ring; interrupt the host."""
        p = self.params
        if pkt.kind is PacketKind.DATA:
            cost = p.rx_handler_s + copy_time(
                pkt.payload_bytes, p.rx_copy_bandwidth_Bps
            )
            if pkt.is_first and "long" not in pkt.meta:
                cost += p.match_s
            self.node.irq.raise_irq(
                cost, fn=lambda: self._rx_commit(pkt), label="portals_rx"
            )
        elif pkt.kind is PacketKind.RTS:
            self.node.irq.raise_irq(
                p.ctrl_handler_s + p.match_s,
                fn=lambda: self._rts_commit(pkt), label="portals_rts",
            )
        elif pkt.kind is PacketKind.CTS:  # the GET request
            self.node.irq.raise_irq(
                p.ctrl_handler_s,
                fn=lambda: self._get_commit(pkt), label="portals_get",
            )
        elif pkt.kind is PacketKind.ACK:
            self.node.irq.raise_irq(
                p.ack_handler_s,
                fn=lambda: self._on_ack(pkt.src, pkt.meta["cum"]),
                label="portals_ack",
            )
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"Portals cannot handle {pkt.kind}")

    def _rx_commit(self, pkt: Packet) -> None:
        """Kernel handler body for data: reliability check, delivery, ack."""
        decision = self._gbn_accept(pkt)
        if decision.deliver:
            self._rx_deliver(pkt)
        if decision.send_ack:
            self._send_gbn_ack(pkt.src, decision.cum)

    def _gbn_accept(self, pkt: Packet) -> RxDecision:
        """Run the go-back-N receiver state machine for ``pkt``."""
        return self._rx_flow(pkt.src).on_data(
            pkt.meta["seq"], force_ack=pkt.is_last
        )

    def _send_gbn_ack(self, dest_node: int, cum: int) -> None:
        ack = control_packet(
            PacketKind.ACK, self.node.node_id, dest_node, cum,
            meta={"cum": cum},
        )
        self.stats.ctrl_packets += 1
        self.node.nic.submit(SendJob([ack], urgent=True))

    def _rx_deliver(self, pkt: Packet) -> None:
        """Bind/assemble/complete an inbound data packet (no ack logic)."""
        asm = self._asm.setdefault(pkt.msg_id, _Assembly())
        if pkt.is_first and "long" not in pkt.meta:
            asm.envelope = pkt.envelope
            self.admission.offer(HeadRecord(pkt.envelope, pkt.msg_id, False))
        if pkt.is_last:
            asm.got_last = True
        self._maybe_finish(pkt.msg_id)

    def _rts_commit(self, pkt: Packet) -> None:
        """Kernel handler body for a long message's header."""
        if self.engine.trace is not None:
            self.engine.trace.record(
                self.engine.now, f"rank{self.rank}.portals", "rts_rx",
                (pkt.msg_id,),
            )
        self.admission.offer(HeadRecord(pkt.envelope, pkt.msg_id, True))

    def _get_commit(self, pkt: Packet) -> None:
        """Kernel handler body for a GET: start streaming the data."""
        req, dest_node = self._pending_get.pop(pkt.msg_id)
        pkts = packetize(
            PacketKind.DATA, self.node.node_id, dest_node, pkt.msg_id,
            req.nbytes, self.system.machine.nic.mtu_bytes,
            meta={"proto": "long", "long": True},
        )
        self._txq.put((req, pkts))

    def _issue_get(self, rec_or_head) -> None:
        """Send a GET (wire kind CTS) asking the sender to stream the data."""
        if self.engine.trace is not None:
            self.engine.trace.record(
                self.engine.now, f"rank{self.rank}.portals", "get_issued",
                (rec_or_head.msg_id,),
            )
        src_node = self.node_of(rec_or_head.envelope.src_rank)
        get = control_packet(
            PacketKind.CTS, self.node.node_id, src_node, rec_or_head.msg_id,
        )
        self.stats.ctrl_packets += 1
        self.node.nic.submit(SendJob([get], urgent=True))

    def _k_match(self, head: HeadRecord) -> None:
        """Kernel matcher: bind the inbound message to its consumer."""
        asm = self._asm.setdefault(head.msg_id, _Assembly())
        asm.envelope = head.envelope
        req = self.k_posted.match(head.envelope)
        if req is not None:
            req.msg_id = head.msg_id
            asm.binding = req
            if head.long:
                self._issue_get(head)
        else:
            rec = UnexpectedMessage(head.envelope, head.msg_id, head.long)
            self.k_unexpected.add(rec)
            if not head.long:
                asm.binding = rec
            # Probe/iprobe callers wait on the device signal.
            self.signal()
        self._maybe_finish(head.msg_id)

    def _maybe_finish(self, msg_id: int) -> None:
        asm = self._asm.get(msg_id)
        if asm is None or not asm.got_last or asm.binding is None:
            return
        del self._asm[msg_id]
        env = asm.envelope
        if isinstance(asm.binding, Request):
            asm.binding.complete(src=env.src_rank, tag=env.tag)
        else:
            asm.binding.complete = True


class TcpDevice(PortalsDevice):
    """Sockets/TCP-flavoured kernel transport (netperf's home turf).

    Identical mechanics to :class:`PortalsDevice` with heavier syscall and
    per-packet costs and no long-message protocol (TCP just streams); the
    *blocking* wait style netperf assumes is chosen at the MPI layer, not
    here.
    """

    @staticmethod
    def _select_params(system: SystemConfig):
        return system.tcp
