"""GM + MPICH/GM transport model (OS-bypass, *no* application offload).

Behavioural essentials reproduced from the paper:

* **OS-bypass** — the NIC moves data with DMA directly between host memory
  and the wire; no interrupts, no kernel copies.  Receive-side events are
  records the NIC writes into a user-visible completion queue (CQ).
* **Library-polled progress** — nothing in the protocol advances unless the
  application is inside an MPI call that polls the CQ.  This is the MPI
  Progress Rule violation §4.3 discusses, and what PWW detects.
* **Eager/rendezvous split at 16 KB** — eager sends cost ~45 µs of host CPU
  (copy into a registered send buffer); rendezvous sends cost ~5 µs (emit an
  RTS); the CTS → zero-copy DMA handshake requires library passes on *both*
  sides.

All library work (progress passes, matching, eager copies, control sends)
is charged to the calling user context via ``ctx.compute`` — GM runs
entirely in user space.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..config import ProgressModel, SystemConfig
from ..hardware.cpu import CpuContext
from ..hardware.memory import copy_time
from ..hardware.nic import SendJob
from ..hardware.node import Node
from ..mpi.matching import Admission, PostedQueue, UnexpectedQueue
from ..mpi.request import Request
from ..sim.engine import Engine
from .base import Device
from .packets import (
    Envelope,
    Packet,
    PacketKind,
    control_packet,
    next_msg_id,
    packetize,
)


class EagerArrival:
    """A fully-arrived eager message sitting in the GM bounce buffer."""

    __slots__ = ("envelope", "msg_id")

    def __init__(self, envelope: Envelope, msg_id: int):
        self.envelope = envelope
        self.msg_id = msg_id


class RtsArrival:
    """A rendezvous request-to-send awaiting a matching receive."""

    __slots__ = ("envelope", "msg_id", "src_node")

    def __init__(self, envelope: Envelope, msg_id: int, src_node: int):
        self.envelope = envelope
        self.msg_id = msg_id
        self.src_node = src_node


class GmDevice(Device):
    """Per-rank MPICH/GM engine."""

    def __init__(self, engine: Engine, node: Node, rank: int, system: SystemConfig):
        super().__init__(engine, node, rank, system)
        self.params = system.gm
        #: NIC-written completion queue, polled by library progress.
        self.cq: Deque[Tuple] = deque()
        #: Arrival records admitted in sequence order, awaiting processing.
        self._admitted: Deque[object] = deque()
        self.posted = PostedQueue()
        self.unexpected = UnexpectedQueue()
        self.admission = Admission(self._admitted.append)
        self._send_seq: Dict[int, int] = {}
        self._pending_cts: Dict[int, Request] = {}
        self._rx_env: Dict[int, Envelope] = {}
        # Eager flow control (MPICH/GM bounce-buffer tokens).
        self._eager_tokens: Dict[int, int] = {}
        self._eager_backlog: Dict[int, deque] = {}
        self._tokens_to_return: Dict[int, int] = {}
        node.nic.rx_handler = self.nic_rx
        node.transport = self

    # ------------------------------------------------------------- semantics
    @property
    def progress_model(self) -> ProgressModel:
        return ProgressModel.LIBRARY_POLLED

    def has_work(self) -> bool:
        return bool(self.cq) or bool(self._admitted)

    # ------------------------------------------------------------ operations
    def isend(self, ctx: CpuContext, req: Request):
        gm = self.params
        dest_node = self.node_of(req.peer)
        seq = self._send_seq.get(req.peer, 0)
        self._send_seq[req.peer] = seq + 1
        msg_id = next_msg_id()
        req.msg_id = msg_id
        env = Envelope(self.rank, req.peer, req.tag, req.nbytes, seq)
        if req.nbytes < gm.eager_threshold_bytes:
            # Eager: expensive host-side send (copy into registered buffer).
            yield ctx.compute(gm.eager_isend_s)
            pkts = packetize(
                PacketKind.DATA, self.node.node_id, dest_node, msg_id,
                req.nbytes, self.system.machine.nic.mtu_bytes,
                envelope=env, meta={"proto": "eager"},
            )
            job = SendJob(
                pkts, on_done=lambda: self._cq_push(("send_done", req)),
            )
            tokens = self._eager_tokens.setdefault(
                dest_node, gm.eager_tokens
            )
            if tokens > 0:
                self._eager_tokens[dest_node] = tokens - 1
                if self.engine.trace is not None:
                    self.engine.trace.record(
                        self.engine.now, f"rank{self.rank}.gm", "gm_tokens",
                        (dest_node, tokens - 1, gm.eager_tokens),
                    )
                self.node.nic.submit(job)
            else:
                # Receiver bounce buffers exhausted: the library queues the
                # prepared send until tokens flow back.
                self._eager_backlog.setdefault(dest_node, deque()).append(job)
                if self.engine.trace is not None:
                    # Schema: (msg_id, dest_node) — marks the start of a
                    # token-starvation stall for span stitching.
                    self.engine.trace.record(
                        self.engine.now, f"rank{self.rank}.gm",
                        "gm_token_wait", (msg_id, dest_node),
                    )
        else:
            # Rendezvous: cheap post, data waits for the CTS handshake.
            yield ctx.compute(gm.rndv_isend_s)
            self._pending_cts[msg_id] = req
            rts = control_packet(
                PacketKind.RTS, self.node.node_id, dest_node, msg_id,
                envelope=env,
            )
            self.stats.ctrl_packets += 1
            self.node.nic.submit(SendJob([rts], urgent=True))
        return req

    def irecv(self, ctx: CpuContext, req: Request):
        gm = self.params
        yield ctx.compute(gm.irecv_s)
        rec = self.unexpected.match(req.peer, req.tag)
        if rec is None:
            self.posted.post(req.peer, req.tag, req)
        elif isinstance(rec, EagerArrival):
            yield ctx.compute(
                copy_time(rec.envelope.nbytes, gm.eager_copy_bandwidth_Bps)
            )
            req.msg_id = rec.msg_id
            req.complete(src=rec.envelope.src_rank, tag=rec.envelope.tag)
            self._release_eager_token(rec)
        else:  # rendezvous RTS already here: answer it now
            yield from self._send_cts(ctx, rec, req)
        return req

    def progress(self, ctx: CpuContext):
        """One progress pass: drain the CQ snapshot + any admitted records."""
        gm = self.params
        self.stats.progress_passes += 1
        yield ctx.compute(gm.progress_poll_s)
        budget = len(self.cq)
        while budget > 0 or self._admitted:
            if self._admitted:
                rec = self._admitted.popleft()
                yield from self._process_arrival(ctx, rec)
                continue
            entry = self.cq.popleft()
            budget -= 1
            kind = entry[0]
            if kind == "send_done":
                yield ctx.compute(gm.match_s)
                entry[1].complete()
            elif kind == "rndv_done":
                req, env = entry[1], entry[2]
                yield ctx.compute(gm.match_s)
                req.complete(src=env.src_rank, tag=env.tag)
            elif kind in ("eager_arrived", "rts"):
                self.admission.offer(entry[1])
            elif kind == "cts":
                yield from self._handle_cts(ctx, entry[1], entry[2])
            elif kind == "tokens":
                yield ctx.compute(gm.progress_poll_s)
                self._restore_tokens(entry[1], entry[2])
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown CQ entry {kind!r}")

    def peek_unexpected(self, src: int, tag: int):
        rec = self.unexpected.peek(src, tag)
        return rec.envelope if rec is not None else None

    def cancel_recv(self, req) -> bool:
        return self.posted.remove(req)

    # ------------------------------------------------------------- internals
    def _cq_push(self, entry: Tuple) -> None:
        self.cq.append(entry)
        self.signal()

    def _process_arrival(self, ctx: CpuContext, rec) -> None:
        gm = self.params
        yield ctx.compute(gm.match_s)
        req = self.posted.match(rec.envelope)
        if req is None:
            self.unexpected.add(rec)
            self.signal()  # probe/iprobe callers wait on the device signal
        elif isinstance(rec, EagerArrival):
            yield ctx.compute(
                copy_time(rec.envelope.nbytes, gm.eager_copy_bandwidth_Bps)
            )
            req.msg_id = rec.msg_id
            req.complete(src=rec.envelope.src_rank, tag=rec.envelope.tag)
            self._release_eager_token(rec)
        else:
            yield from self._send_cts(ctx, rec, req)

    def _send_cts(self, ctx: CpuContext, rec: RtsArrival, req: Request):
        """Answer an RTS: emit a CTS carrying the receive-buffer handle."""
        gm = self.params
        yield ctx.compute(gm.ctrl_send_s)
        req.msg_id = rec.msg_id
        cts = control_packet(
            PacketKind.CTS, self.node.node_id, rec.src_node, rec.msg_id,
            meta={"handle": req, "envelope": rec.envelope},
        )
        self.stats.ctrl_packets += 1
        self.node.nic.submit(SendJob([cts], urgent=True))

    def _handle_cts(self, ctx: CpuContext, msg_id: int, meta: dict):
        """CTS arrived: program the NIC for the zero-copy data transfer."""
        gm = self.params
        yield ctx.compute(gm.ctrl_send_s)
        req = self._pending_cts.pop(msg_id)
        dest_node = self.node_of(req.peer)
        pkts = packetize(
            PacketKind.DATA, self.node.node_id, dest_node, msg_id,
            req.nbytes, self.system.machine.nic.mtu_bytes,
            meta={"proto": "rndv", "handle": meta["handle"],
                  "envelope": meta["envelope"]},
        )
        self.node.nic.submit(SendJob(
            pkts, on_done=lambda: self._cq_push(("send_done", req)),
        ))

    # ------------------------------------------------------ eager tokens
    def _release_eager_token(self, rec: EagerArrival) -> None:
        """An eager bounce buffer was consumed: return its token to the
        sender (batched into one control packet per few tokens)."""
        src_node = self.node_of(rec.envelope.src_rank)
        pending = self._tokens_to_return.get(src_node, 0) + 1
        if pending >= self.params.eager_token_batch:
            token = control_packet(
                PacketKind.ACK, self.node.node_id, src_node, rec.msg_id,
                meta={"tokens": pending},
            )
            self.stats.ctrl_packets += 1
            self.node.nic.submit(SendJob([token], urgent=True))
            pending = 0
        self._tokens_to_return[src_node] = pending

    def _restore_tokens(self, src_node: int, n: int) -> None:
        """Sender side: tokens returned; flush the eager backlog."""
        tokens = self._eager_tokens.get(src_node, self.params.eager_tokens) + n
        backlog = self._eager_backlog.get(src_node)
        while backlog and tokens > 0:
            self.node.nic.submit(backlog.popleft())
            tokens -= 1
        self._eager_tokens[src_node] = tokens
        if self.engine.trace is not None:
            self.engine.trace.record(
                self.engine.now, f"rank{self.rank}.gm", "gm_tokens",
                (src_node, tokens, self.params.eager_tokens),
            )

    # ---------------------------------------------------------------- NIC rx
    def nic_rx(self, pkt: Packet) -> None:
        """NIC receive completion: write a CQ record (zero host CPU)."""
        if pkt.kind is PacketKind.DATA:
            if pkt.meta.get("proto") == "rndv":
                if pkt.is_last:
                    self._cq_push(
                        ("rndv_done", pkt.meta["handle"], pkt.meta["envelope"])
                    )
            else:  # eager
                if pkt.is_first:
                    self._rx_env[pkt.msg_id] = pkt.envelope
                if pkt.is_last:
                    env = self._rx_env.pop(pkt.msg_id)
                    self._cq_push(("eager_arrived", EagerArrival(env, pkt.msg_id)))
        elif pkt.kind is PacketKind.RTS:
            self._cq_push(("rts", RtsArrival(pkt.envelope, pkt.msg_id, pkt.src)))
        elif pkt.kind is PacketKind.CTS:
            self._cq_push(("cts", pkt.msg_id, pkt.meta))
        elif pkt.kind is PacketKind.ACK:
            # Eager-token return.
            self._cq_push(("tokens", pkt.src, pkt.meta["tokens"]))
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"GM cannot handle {pkt.kind}")
