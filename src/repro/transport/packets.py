"""Wire-level packet representation shared by all transports.

Messages are packetized at the NIC MTU.  Control packets (RTS/CTS/ACK)
carry no payload but still occupy the wire for their header time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional


class PacketKind(Enum):
    """Wire packet types."""

    DATA = "data"          # message payload fragment
    RTS = "rts"            # rendezvous request-to-send (carries envelope)
    CTS = "cts"            # rendezvous clear-to-send (carries buffer handle)
    ACK = "ack"            # reliability acknowledgment (kernel transports)


_msg_ids = itertools.count(1)


def next_msg_id() -> int:
    """Globally unique message identifier (per interpreter)."""
    return next(_msg_ids)


@dataclass(slots=True)
class Envelope:
    """MPI matching envelope carried by a message's first packet (or RTS)."""

    src_rank: int
    dst_rank: int
    tag: int
    nbytes: int
    #: Sender-side sequence number in (src, dst) order — enforces the MPI
    #: non-overtaking rule.
    seq: int = 0


@dataclass(slots=True)
class Packet:
    """One unit of wire transfer."""

    kind: PacketKind
    src: int                    # source node id
    dst: int                    # destination node id
    msg_id: int                 # message this packet belongs to
    payload_bytes: int = 0      # payload carried (0 for control packets)
    index: int = 0              # fragment index within the message
    is_first: bool = False
    is_last: bool = False
    #: Matching envelope; present on first DATA packet and on RTS.
    envelope: Optional[Envelope] = None
    #: Free-form transport metadata (receive-buffer handles, ack ranges...).
    meta: Dict[str, Any] = field(default_factory=dict)

    def wire_bytes(self, header_bytes: int) -> int:
        """Bytes this packet occupies on the wire."""
        return self.payload_bytes + header_bytes


def packetize(
    kind: PacketKind,
    src: int,
    dst: int,
    msg_id: int,
    nbytes: int,
    mtu: int,
    envelope: Optional[Envelope] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> List[Packet]:
    """Split a message of ``nbytes`` into MTU-sized :class:`Packet` list.

    A zero-byte message still produces one (empty) packet so that envelope
    and completion semantics are uniform.
    """
    if nbytes < 0:
        raise ValueError("negative message size")
    if mtu <= 0:
        raise ValueError("MTU must be positive")
    sizes: List[int] = []
    remaining = nbytes
    while remaining > mtu:
        sizes.append(mtu)
        remaining -= mtu
    sizes.append(remaining)  # last fragment (possibly 0 for empty messages)
    packets: List[Packet] = []
    n = len(sizes)
    for i, sz in enumerate(sizes):
        packets.append(
            Packet(
                kind=kind,
                src=src,
                dst=dst,
                msg_id=msg_id,
                payload_bytes=sz,
                index=i,
                is_first=(i == 0),
                is_last=(i == n - 1),
                envelope=envelope if i == 0 else None,
                meta=dict(meta) if meta else {},
            )
        )
    return packets


def control_packet(
    kind: PacketKind,
    src: int,
    dst: int,
    msg_id: int,
    envelope: Optional[Envelope] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Packet:
    """Build a single zero-payload control packet (RTS/CTS/ACK)."""
    return Packet(
        kind=kind,
        src=src,
        dst=dst,
        msg_id=msg_id,
        payload_bytes=0,
        is_first=True,
        is_last=True,
        envelope=envelope,
        meta=dict(meta) if meta else {},
    )
