"""Transport device interface.

A :class:`Device` is the per-rank messaging engine an MPI endpoint drives.
Its operation methods (``isend``/``irecv``/``progress``) are *generators*:
the MPI layer runs them inside the calling process so that their CPU costs
land on the right execution context (user compute for library work, kernel
work for traps) — that placement is exactly what COMB measures.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..config import ProgressModel, SystemConfig
from ..sim.engine import Engine
from ..sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - annotation-only (import cycles)
    from ..hardware.cpu import CpuContext
    from ..hardware.node import Node
    from ..mpi.request import Request


@dataclass
class DeviceStats:
    """Cumulative traffic counters (payload bytes, not wire bytes).

    Benchmarks snapshot these at window edges and report deltas, so all
    counters are monotonic.
    """

    bytes_send_done: int = 0
    bytes_recv_done: int = 0
    msgs_send_done: int = 0
    msgs_recv_done: int = 0
    #: Control packets emitted (RTS+CTS+ACK).
    ctrl_packets: int = 0
    #: Progress passes executed by the library.
    progress_passes: int = 0

    def snapshot(self) -> "DeviceStats":
        """A frozen copy."""
        return DeviceStats(**{k: getattr(self, k) for k in self.__dataclass_fields__})

    def delta(self, earlier: "DeviceStats") -> "DeviceStats":
        """Counter-wise ``self - earlier``."""
        return DeviceStats(
            **{
                k: getattr(self, k) - getattr(earlier, k)
                for k in self.__dataclass_fields__
            }
        )


class Device(abc.ABC):
    """Per-rank messaging engine bound to one node's hardware."""

    def __init__(self, engine: Engine, node: Node, rank: int, system: SystemConfig):
        self.engine = engine
        self.node = node
        self.rank = rank
        self.system = system
        self.stats = DeviceStats()
        self._wakeup: Optional[Event] = None
        #: rank -> node id routing table; set by the world builder.
        self.routes: Dict[int, int] = {}

    # ------------------------------------------------------------ semantics
    @property
    @abc.abstractmethod
    def progress_model(self) -> ProgressModel:
        """Whether communication progresses without library calls."""

    # ------------------------------------------------------------ operations
    @abc.abstractmethod
    def isend(self, ctx: CpuContext, req: Request):
        """Generator: post a non-blocking send for ``req``."""

    @abc.abstractmethod
    def irecv(self, ctx: CpuContext, req: Request):
        """Generator: post a non-blocking receive for ``req``."""

    @abc.abstractmethod
    def progress(self, ctx: CpuContext):
        """Generator: one library progress pass (the body of ``MPI_Test``)."""

    @abc.abstractmethod
    def has_work(self) -> bool:
        """``True`` if a progress pass would do more than poll."""

    # ------------------------------------------------------- optional queries
    def peek_unexpected(self, src: int, tag: int):
        """Envelope of the oldest matchable unexpected message, if any.

        Used by ``MPI_Iprobe``; default: no visibility (subclasses that
        keep an unexpected queue override this).
        """
        return None

    def cancel_recv(self, req) -> bool:
        """Withdraw a posted receive (``MPI_Cancel``); default: cannot."""
        return False

    # -------------------------------------------------------------- signaling
    def wakeup(self) -> Event:
        """An event fired at the device's next noteworthy occurrence
        (completion-queue insertion or request completion).

        Each firing consumes the event; callers re-arm by calling again.
        """
        if self._wakeup is None or self._wakeup.triggered:
            self._wakeup = Event(self.engine)
        return self._wakeup

    def signal(self) -> None:
        """Fire the pending wakeup, if any."""
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def record_completion(self, req: Request) -> None:
        """Hook invoked by :meth:`Request.complete` for stats + wakeup."""
        from ..mpi.request import RequestKind

        if req.kind is RequestKind.SEND:
            self.stats.bytes_send_done += req.nbytes
            self.stats.msgs_send_done += 1
        else:
            self.stats.bytes_recv_done += req.nbytes
            self.stats.msgs_recv_done += 1
        self.signal()

    # ---------------------------------------------------------------- helpers
    def node_of(self, rank: int) -> int:
        """Destination node id for ``rank``."""
        try:
            return self.routes[rank]
        except KeyError:
            raise RuntimeError(f"no route to rank {rank}") from None
