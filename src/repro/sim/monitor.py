"""Periodic sampling of simulation state into time series.

A :class:`Monitor` spawns a lightweight sampler process that evaluates
registered probes every ``period_s`` and stores ``(time, value)`` series —
the instrument behind utilization timelines (see
``examples/timeline_trace.py``).  Probes are plain callables, so anything
reachable from Python can be charted: CPU snapshot fields, queue lengths,
device counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .engine import Engine


@dataclass
class TimeSeries:
    """Sampled values of one probe."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, t: float, v: float) -> None:
        """Record one sample."""
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    def rate(self) -> "TimeSeries":
        """Derivative series: per-second change between samples.

        Useful for cumulative probes (bytes, interrupt counts).
        """
        out = TimeSeries(f"{self.name}/s")
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            if dt > 0:
                out.append(
                    self.times[i],
                    (self.values[i] - self.values[i - 1]) / dt,
                )
        return out


class Monitor:
    """Samples registered probes on a fixed period.

    Sampling starts at construction and stops when the engine runs out of
    events or :meth:`stop` is called.  The sampler never keeps the
    simulation alive on its own: it reschedules itself only while other
    events exist (``weak`` mode) unless ``run_forever`` is set.
    """

    def __init__(self, engine: Engine, period_s: float,
                 run_forever: bool = False):
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.engine = engine
        self.period_s = period_s
        self.series: Dict[str, TimeSeries] = {}
        self._probes: Dict[str, Callable[[], float]] = {}
        self._stopped = False
        self._run_forever = run_forever
        self._schedule()

    def probe(self, name: str, fn: Callable[[], float]) -> TimeSeries:
        """Register a probe; returns its (live) series."""
        if name in self._probes:
            raise ValueError(f"duplicate probe {name!r}")
        self._probes[name] = fn
        self.series[name] = TimeSeries(name)
        return self.series[name]

    def stop(self) -> None:
        """Stop sampling."""
        self._stopped = True

    # ----------------------------------------------------------- internals
    def _schedule(self) -> None:
        self.engine.schedule_callback(self.period_s, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        now = self.engine.now
        for name, fn in self._probes.items():
            self.series[name].append(now, float(fn()))
        # Reschedule only while the simulation is otherwise alive, so the
        # monitor never spins an empty world forever.
        if self._run_forever or self.engine.peek() != float("inf"):
            self._schedule()


def sparkline(series: TimeSeries, width: int = 60,
              lo: Optional[float] = None, hi: Optional[float] = None) -> str:
    """Render a series as a unicode sparkline (resampled to ``width``)."""
    if not series.values:
        return f"{series.name}: (no samples)"
    blocks = " ▁▂▃▄▅▆▇█"
    vals = series.values
    lo = min(vals) if lo is None else lo
    hi = max(vals) if hi is None else hi
    span = (hi - lo) or 1.0
    n = len(vals)
    cells = []
    for i in range(width):
        j = min(n - 1, i * n // width)
        frac = (vals[j] - lo) / span
        cells.append(blocks[min(8, max(0, int(frac * 8 + 0.5)))])
    return (f"{series.name:24s} [{lo:10.3g} .. {hi:10.3g}] "
            + "".join(cells))
