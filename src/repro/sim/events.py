"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic event-graph design (same family as SimPy):
an :class:`Event` is a one-shot occurrence with an attached value; processes
are generators that ``yield`` events and are resumed when the event fires.

Only the pieces COMB's simulator needs are implemented, but they are
implemented completely: success/failure payloads, callbacks, composite
``any``/``all`` conditions, and timeouts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from .errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import Engine

#: Scheduling priority for events that must run before normal events that
#: share the same timestamp (used by the engine for bookkeeping events).
PRIORITY_URGENT = 0
#: Default scheduling priority.
PRIORITY_NORMAL = 1


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event moves through three states:

    * *pending* — created but not yet triggered;
    * *triggered* — :meth:`succeed` or :meth:`fail` has been called and the
      event sits in the engine's queue;
    * *processed* — the engine has popped it and run its callbacks.

    Parameters
    ----------
    engine:
        The owning :class:`~repro.sim.engine.Engine`.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_processed", "_defused")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        #: Callbacks invoked (in order) when the event is processed.  Each is
        #: called with the event itself as the only argument.  ``None`` once
        #: the event has been processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        self._defused = False

    # ------------------------------------------------------------------ state
    @property
    def triggered(self) -> bool:
        """``True`` once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """``True`` if the event succeeded, ``False`` if it failed, ``None``
        while pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The payload passed to :meth:`succeed`, or the exception passed to
        :meth:`fail`.  Accessing it on a pending event is an error."""
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # --------------------------------------------------------------- triggers
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Mark the event successful and enqueue it for processing *now*."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.engine._enqueue(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Mark the event failed and enqueue it for processing *now*.

        The exception propagates into every process waiting on the event; if
        no process waits, the engine raises it at the end of the step unless
        :meth:`defused` is set.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.engine._enqueue(self, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def defuse(self) -> None:
        """Prevent an unhandled failure of this event from crashing the run."""
        self._defused = True

    # ------------------------------------------------------------ composition
    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.engine, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.engine, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed else
            "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


#: Sentinel marking "no value yet"; distinct from a legitimate ``None`` value.
_PENDING = object()

# ---------------------------------------------------------------------------
# Optional C-accelerated kernel (``repro._simcore``).  The pure-Python class
# above stays the reference implementation and the default; when the user
# opts in (``COMB_COMPILED=1``) and the extension has been built
# (``tools/build_compiled.py``), ``Event`` is rebound to the C type so every
# subclass below — and every importer — inherits the accelerated base.  The
# contract is bit identity: the C type replicates the heap key, the float
# arithmetic, callback order, and error messages exactly (enforced by the
# golden matrix, the traced-vs-bare suite, and step/run parity).
from repro import compiled as _compiled  # noqa: E402  (stdlib-only, no cycle)

#: The pure-Python reference class, importable regardless of backend.
PyEvent = Event

#: Which kernel backend this process runs: ``"python"`` or ``"c"``.
_BACKEND = "python"

if _compiled.requested():
    try:
        from repro import _simcore as _sc
    except ImportError:  # not built — transparent fallback to pure Python
        pass
    else:
        Event = _sc.Event  # type: ignore[assignment,misc]
        _BACKEND = "c"


class Timeout(Event):
    """An event that fires ``delay_s`` simulated seconds after creation."""

    __slots__ = ("delay_s",)

    def __init__(self, engine: "Engine", delay_s: float, value: Any = None):
        if delay_s < 0:
            raise ValueError(f"negative timeout delay_s: {delay_s!r}")
        super().__init__(engine)
        self.delay_s = delay_s
        self._ok = True
        self._value = value
        engine._enqueue(self, PRIORITY_NORMAL, delay_s)

    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        raise SimulationError("a Timeout is triggered at creation time")

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        raise SimulationError("a Timeout is triggered at creation time")


class Condition(Event):
    """Composite event that fires when ``evaluate`` is satisfied.

    The condition's value is a dict mapping each *triggered* constituent
    event to its value (insertion-ordered by original position).
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        engine: "Engine",
        evaluate: Callable[[int, int], bool],
        events: Iterable[Event],
    ):
        super().__init__(engine)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate
        for ev in self._events:
            if ev.engine is not engine:
                raise SimulationError("cannot mix events from different engines")
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev._processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(len(self._events), self._count):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        # A Timeout carries its value from construction, so "triggered" is
        # not the right filter — only events whose callbacks have run (i.e.
        # that actually fired on the timeline) belong in the result.
        return {ev: ev._value for ev in self._events if ev._processed and ev._ok}


class AllOf(Condition):
    """Fires when *all* constituent events have fired."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, lambda total, done: done == total, events)


class AnyOf(Condition):
    """Fires when *any* constituent event has fired."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, lambda total, done: done >= 1, events)


if _BACKEND == "c":
    # Hand the C types the Python-side classes they raise and construct
    # (deferred to module end so the classes exist).
    _sc._install(
        SimulationError=SimulationError,
        Timeout=Timeout,
        AllOf=AllOf,
        AnyOf=AnyOf,
        PENDING=_PENDING,
    )
