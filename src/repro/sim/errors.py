"""Exception types raised by the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation kernel errors."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`repro.sim.engine.Engine.step` when no events remain."""


class StopProcess(SimulationError):
    """Raised inside a process generator to terminate it early.

    The process completes successfully with ``value`` as its result, exactly
    as if the generator had executed ``return value``.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class ProcessInterrupt(SimulationError):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    Attributes
    ----------
    cause:
        Arbitrary object describing why the process was interrupted.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause
