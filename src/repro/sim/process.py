"""Generator-based simulation processes.

A *process* is a Python generator that ``yield``\\ s :class:`~repro.sim.events.Event`
objects; the kernel resumes it with the event's value when the event fires.
A process is itself an event — it fires when the generator returns — so
processes can wait on each other directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .errors import ProcessInterrupt, SimulationError, StopProcess
from .events import Event, PRIORITY_URGENT

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process wrapping a generator.

    Created via :meth:`repro.sim.engine.Engine.spawn`.  The process event
    succeeds with the generator's return value, or fails with any exception
    that escapes the generator.
    """

    __slots__ = ("generator", "name", "_target")

    def __init__(self, engine: "Engine", generator: ProcessGenerator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(engine)
        self.generator = generator
        #: Human-readable label used in traces.
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (``None`` if the
        #: process is being resumed right now or has finished).
        self._target: Optional[Event] = None
        # Kick off the process at the current simulation time.
        init = Event(engine)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        engine._enqueue(init, PRIORITY_URGENT)

    # ----------------------------------------------------------------- public
    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process.

        The interrupt is delivered as an urgent event at the current time.
        Interrupting a finished process is an error; interrupting a process
        about to be resumed in the same step is allowed and wins.
        """
        if self.triggered:
            raise SimulationError(f"{self.name} has terminated; cannot interrupt")
        if self._target is not None and self in (self._target.callbacks or ()):
            # Detach from the waited-on event: the interrupt supersedes it.
            pass  # actual detach happens in _resume via the interrupt event
        interrupt_ev = Event(self.engine)
        interrupt_ev._ok = False
        interrupt_ev._value = ProcessInterrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev.callbacks.append(self._resume)
        self.engine._enqueue(interrupt_ev, PRIORITY_URGENT)

    # --------------------------------------------------------------- internal
    def _resume(self, event: Event) -> None:
        """Send ``event``'s outcome into the generator and rearm."""
        if self.triggered:
            return  # already finished (e.g. interrupt raced with completion)
        # If we were waiting on a different event, stop listening to it.
        if self._target is not None and self._target is not event:
            cbs = self._target.callbacks
            if cbs is not None and self._resume in cbs:
                cbs.remove(self._resume)
        self._target = None
        self.engine._active_process = self
        try:
            while True:
                try:
                    if event._ok:
                        target = self.generator.send(event._value)
                    else:
                        event._defused = True
                        target = self.generator.throw(event._value)
                except StopIteration as exc:
                    self.succeed(exc.value)
                    return
                except StopProcess as exc:
                    self.generator.close()
                    self.succeed(exc.value)
                    return
                except BaseException as exc:
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    self.fail(exc)
                    return
                if not isinstance(target, Event):
                    err = SimulationError(
                        f"process {self.name!r} yielded a non-event: {target!r}"
                    )
                    # Deliver the error into the generator so it can clean up.
                    event = Event(self.engine)
                    event._ok = False
                    event._value = err
                    event._defused = True
                    continue
                if target.engine is not self.engine:
                    raise SimulationError(
                        f"process {self.name!r} yielded an event from a "
                        f"different engine"
                    )
                if target._processed:
                    # Already done: loop immediately without a queue round-trip.
                    event = target
                    continue
                target.callbacks.append(self._resume)
                self._target = target
                return
        finally:
            self.engine._active_process = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"
