"""The discrete-event simulation engine.

:class:`Engine` owns the virtual clock and the pending-event heap.  Events
scheduled for the same timestamp are ordered by (priority, insertion
sequence), which makes every run fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Tuple

from . import events as _events
from .errors import EmptySchedule, SimulationError
from .events import AllOf, AnyOf, Event, PRIORITY_NORMAL, Timeout
from .process import Process, ProcessGenerator

#: Infinity, used as the default run-until horizon.
INFINITY = float("inf")


class Engine:
    """A deterministic discrete-event simulation engine.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.
    trace:
        Optional :class:`repro.sim.trace.Tracer` receiving kernel events.
    """

    __slots__ = ("_now", "_queue", "_seq", "_active_process", "trace",
                 "events_processed")

    def __init__(self, start_time: float = 0.0, trace=None):
        self._now = float(start_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self.trace = trace
        #: Heap events dispatched so far — the cost model of the simulator
        #: itself.  Burst batching exists to shrink this number; the bench
        #: tooling and the event-count regression tests read it.
        self.events_processed = 0

    # ----------------------------------------------------------------- clock
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------- factories
    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay_s: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay_s`` seconds from now."""
        return Timeout(self, delay_s, value)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    # Alias matching SimPy naming, convenient for readers used to it.
    process = spawn

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    # ------------------------------------------------------------- scheduling
    def _enqueue(self, event: Event, priority: int, delay_s: float = 0.0) -> None:
        """Insert a triggered event into the pending heap."""
        if delay_s < 0.0 and self.trace is not None:
            # Scheduling in the past is a causality corruption the sanitizer
            # must see at the source; the float compare keeps the untraced
            # hot path free of any extra work.
            self.trace.record(self._now, "engine", "schedule_past", (delay_s,))
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (self._now + delay_s, priority, seq, event))

    def _enqueue_at(self, event: Event, priority: int, when_s: float) -> None:
        """Insert a triggered event at an *absolute* time (no ``now`` +
        ``delay`` round-trip, which costs a ulp the burst path can't
        afford when reproducing legacy event times exactly)."""
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (when_s, priority, seq, event))

    def schedule_callback(
        self, delay_s: float, fn: Callable[[], None], priority: int = PRIORITY_NORMAL
    ) -> Event:
        """Run ``fn()`` after ``delay_s`` seconds; returns the trigger event."""
        ev = self.timeout(delay_s)
        ev.callbacks.append(lambda _e: fn())
        return ev

    # -------------------------------------------------------------- execution
    def peek(self) -> float:
        """Time of the next scheduled event, or ``INFINITY`` if none."""
        return self._queue[0][0] if self._queue else INFINITY

    def fast_forward(self, until_s: float) -> bool:
        """Analytically advance the clock across a quiescent span.

        When the caller knows nothing can change state before ``until_s``
        (it is the only runnable activity and is idle), and no heap event
        precedes ``until_s``, the clock jumps straight there — no events
        are dispatched, no bookkeeping grinds.  Returns ``True`` if the
        clock moved, ``False`` if a pending event forbids the jump (the
        caller must then wait through the event loop as usual).
        """
        if until_s <= self._now:
            return False
        if self._queue and self._queue[0][0] <= until_s:
            # An event *at* ``until_s`` also forbids the jump: whether it
            # would fire before or after the caller's continuation depends
            # on heap sequence numbers the caller cannot know, so the safe
            # answer is to make it wait through the event loop.
            return False
        self._now = until_s
        return True

    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            when, _prio, _seq, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events remain") from None
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self._now = when
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        if self.trace is not None:
            self.trace.record_kernel(self._now, event)
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the schedule is empty;
        * a number — run until that simulation time (clock lands exactly on
          it even if no event is scheduled there);
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception).
        """
        if until is None:
            stop_at = INFINITY
            stop_event = None
        elif isinstance(until, Event):
            stop_event = until
            stop_at = INFINITY
        else:
            stop_at = float(until)
            stop_event = None
            if stop_at < self._now:
                raise SimulationError(
                    f"run(until={stop_at}) is in the past (now={self._now})"
                )

        # The event loop below is :meth:`step` inlined (minus the defensive
        # past-event check): this is the simulator's hottest code, and the
        # method-call + heap-access overhead per event is measurable at
        # production sweep scale.  Semantics are identical — keep the two
        # in sync.
        queue = self._queue
        pop = heapq.heappop
        trace = self.trace  # set at construction only; safe to hoist
        n_done = 0
        try:
            if stop_event is not None:
                while not stop_event._processed:
                    if not queue:
                        raise SimulationError(
                            "simulation ran out of events before the awaited "
                            "event fired (deadlock?)"
                        )
                    when, _prio, _seq, event = pop(queue)
                    self._now = when
                    n_done += 1
                    callbacks, event.callbacks = event.callbacks, None
                    event._processed = True
                    if trace is not None:
                        trace.record_kernel(when, event)
                    if callbacks:
                        for callback in callbacks:
                            callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            while queue and queue[0][0] <= stop_at:
                when, _prio, _seq, event = pop(queue)
                self._now = when
                n_done += 1
                callbacks, event.callbacks = event.callbacks, None
                event._processed = True
                if trace is not None:
                    trace.record_kernel(when, event)
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            if stop_at != INFINITY:
                self._now = max(self._now, stop_at)
            return None
        finally:
            self.events_processed += n_done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self._now:.9f} pending={len(self._queue)}>"


#: The pure-Python reference engine, importable regardless of backend.
PyEngine = Engine

if _events._BACKEND == "c":
    # The events module already imported the extension and rebound Event;
    # swap the engine too and hand over the engine-side classes.  Both
    # swaps key off the same flag, so the two C types always travel
    # together (a C Engine typechecks events against the C Event base).
    from repro import _simcore as _sc

    Engine = _sc.Engine  # type: ignore[assignment,misc]
    _sc._install(EmptySchedule=EmptySchedule, Process=Process)
