"""Deterministic random-number streams for the simulator.

Every stochastic element of the simulation (none are required for the
headline COMB results, but jitter models and failure injection use them)
draws from a named substream derived from a single root seed, so adding a
new consumer never perturbs existing streams.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RngRegistry:
    """Factory of independent, reproducible :class:`numpy.random.Generator`\\ s.

    Streams are keyed by name; the same (root_seed, name) pair always yields
    the same sequence.
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode("utf-8")
            ).digest()
            seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(seed)
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Drop all streams; subsequent calls restart each sequence."""
        self._streams.clear()
