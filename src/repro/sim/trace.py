"""Lightweight structured tracing for simulation runs.

Tracing is opt-in: the engine and hardware models call ``record*`` methods
only when a tracer is attached.  Records are plain tuples, cheap to emit and
easy to assert on in tests.

The tracer is also the simulator's *sanitizer seam*: the runtime
invariant checker (:mod:`repro.verify`) attaches a storage-free
:class:`Tracer` subclass that dispatches each record to invariant
monitors instead of accumulating it.  Subclasses may override
:meth:`Tracer.record` and :meth:`Tracer.record_kernel` freely — emitters
only rely on the call signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


@dataclass
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulation time of the occurrence.
    source:
        Name of the emitting component (e.g. ``"node0.nic.tx"``).
    kind:
        Short event-kind tag (e.g. ``"packet_tx"``, ``"irq"``).
    detail:
        Free-form payload (dict or tuple).
    """

    time: float
    source: str
    kind: str
    detail: Any = None


class Tracer:
    """Collects :class:`TraceRecord`\\ s, optionally filtered by kind."""

    def __init__(self, kinds: Optional[set] = None, sink: Optional[Callable] = None):
        #: If not ``None``, only these kinds are recorded.
        self.kinds = kinds
        self.records: List[TraceRecord] = []
        #: Optional callable invoked with each record (e.g. print).
        self.sink = sink

    def record(self, time: float, source: str, kind: str, detail: Any = None) -> None:
        """Append a record if its kind passes the filter."""
        if self.kinds is not None and kind not in self.kinds:
            return
        rec = TraceRecord(time, source, kind, detail)
        self.records.append(rec)
        if self.sink is not None:
            self.sink(rec)

    def record_kernel(self, time: float, event: Any) -> None:
        """Hook called by the engine for every processed event (noisy;
        enabled only when ``"kernel"`` is in ``kinds``)."""
        if self.kinds is not None and "kernel" not in self.kinds:
            return
        self.record(time, "engine", "kernel", repr(event))

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records with the given kind, in emission order."""
        return [r for r in self.records if r.kind == kind]

    def counts(self) -> dict:
        """Record count per kind (insertion-ordered)."""
        out: dict = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    def clear(self) -> None:
        """Drop all collected records."""
        self.records.clear()


class MultiTracer(Tracer):
    """Fans every record out to multiple child tracers.

    Lets independent ambient attachments — e.g. the sanitizer
    (:mod:`repro.verify`) and the observer (:mod:`repro.obs`) — share the
    single ``Engine.trace`` seam without knowing about each other.  The
    children keep their own filtering/storage policies; this class stores
    nothing itself.
    """

    def __init__(self, children: List[Tracer]):
        super().__init__()
        self.children = list(children)

    def record(self, time: float, source: str, kind: str, detail: Any = None) -> None:
        for child in self.children:
            child.record(time, source, kind, detail)

    def record_kernel(self, time: float, event: Any) -> None:
        for child in self.children:
            child.record_kernel(time, event)
