"""Unit helpers.

Internally the simulator uses SI base units throughout: seconds, bytes,
bytes/second, hertz.  These helpers exist so configuration code reads like
the paper ("100 KB messages", "45 microseconds", "500 MHz").

The paper (and virtually all 2002-era networking literature) uses decimal
units for bandwidth and binary-flavoured "KB" for message sizes; COMB's
message sizes (10 KB, 50 KB...) are 1024-based, which we follow.
"""

from __future__ import annotations

# ----------------------------------------------------------------- time
USEC = 1e-6
MSEC = 1e-3
NSEC = 1e-9


def usec(x: float) -> float:
    """Microseconds → seconds."""
    return x * USEC


def msec(x: float) -> float:
    """Milliseconds → seconds."""
    return x * MSEC


def nsec(x: float) -> float:
    """Nanoseconds → seconds."""
    return x * NSEC


def to_usec(seconds: float) -> float:
    """Seconds → microseconds."""
    return seconds / USEC


# ---------------------------------------------------------------- bytes
KiB = 1024
MiB = 1024 * 1024


def kib(x: float) -> int:
    """Binary kilobytes (KiB, the paper's "KB") → bytes."""
    return int(x * KiB)


def mib(x: float) -> int:
    """Binary megabytes → bytes."""
    return int(x * MiB)


# ------------------------------------------------------------ bandwidth
MB_PER_S = 1e6


def mbps(x: float) -> float:
    """Decimal megabytes/second → bytes/second (paper's MB/s axes)."""
    return x * MB_PER_S


def to_mbps(bytes_per_second: float) -> float:
    """Bytes/second → decimal MB/s."""
    return bytes_per_second / MB_PER_S


# ------------------------------------------------------------ frequency
def mhz(x: float) -> float:
    """Megahertz → hertz."""
    return x * 1e6
