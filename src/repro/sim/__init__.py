"""Deterministic discrete-event simulation kernel.

The kernel is deliberately small: events, generator processes, a heap-driven
engine, and a handful of resource primitives.  Everything above it (CPUs,
NICs, MPI) is built from these pieces.
"""

from .engine import Engine, INFINITY
from .errors import (
    EmptySchedule,
    ProcessInterrupt,
    SimulationError,
    StopProcess,
)
from .events import AllOf, AnyOf, Condition, Event, Timeout
from .monitor import Monitor, TimeSeries, sparkline
from .process import Process
from .resources import Pipe, Request, Resource, Store
from .rng import RngRegistry
from .trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "EmptySchedule",
    "Engine",
    "Event",
    "INFINITY",
    "Monitor",
    "Pipe",
    "Process",
    "ProcessInterrupt",
    "Request",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "StopProcess",
    "Store",
    "TimeSeries",
    "Timeout",
    "sparkline",
    "TraceRecord",
    "Tracer",
]
