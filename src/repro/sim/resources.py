"""Shared-resource primitives: FIFO resources, stores, and capacity pipes.

These model contention points in the hardware layer: a DMA engine, a wire,
a switch port.  All queueing is FIFO (optionally priority-ordered), which
keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Optional, Tuple

from .errors import SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine


class Request(Event):
    """Event granted when a :class:`Resource` slot becomes available.

    Use as a context value: hold it, then pass it to :meth:`Resource.release`.
    """

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: int):
        super().__init__(resource.engine)
        self.resource = resource
        self.priority = priority
        self._order = resource._next_order()

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        self.resource._cancel(self)


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO/priority queue.

    Lower ``priority`` values are served first; ties are FIFO.
    """

    def __init__(self, engine: "Engine", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._users: List[Request] = []
        self._waiting: List[Tuple[int, int, Request]] = []
        self._order = 0

    def _next_order(self) -> int:
        self._order += 1
        return self._order

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self, priority: int = 0) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        req = Request(self, priority)
        if len(self._users) < self.capacity and not self._waiting:
            self._users.append(req)
            req.succeed(req)
        else:
            heapq.heappush(self._waiting, (priority, req._order, req))
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that does not hold a slot")
        self._grant_next()

    def _cancel(self, request: Request) -> None:
        self._waiting = [(p, o, r) for (p, o, r) in self._waiting if r is not request]
        heapq.heapify(self._waiting)

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            _prio, _order, req = heapq.heappop(self._waiting)
            if req.triggered:  # cancelled/failed elsewhere
                continue
            self._users.append(req)
            req.succeed(req)


class Store:
    """An unbounded FIFO queue of items with event-based ``get``.

    ``put`` never blocks; ``get`` returns an event that fires with the next
    item (immediately if one is waiting).
    """

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``; wakes the oldest waiting getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Event firing with the next available item (FIFO)."""
        ev = Event(self.engine)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking pop: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def peek_all(self) -> list:
        """Snapshot of queued items (for inspection/tests)."""
        return list(self._items)


class Pipe:
    """A serialized transfer stage with fixed per-item setup and byte rate.

    Models a wire, a DMA engine, or a bus: transfers queue FIFO; each
    occupies the stage for ``setup_s + nbytes / bandwidth_Bps`` seconds,
    after which ``deliver(payload)`` is invoked (and the completion event
    fires).

    Parameters
    ----------
    engine:
        Owning engine.
    bandwidth_Bps:
        Sustained byte rate of the stage.
    setup_s:
        Fixed occupancy cost per item (header time, descriptor setup...).
    latency_s:
        Additional *pipelined* delay between stage exit and delivery — does
        not consume stage occupancy (propagation delay).
    """

    def __init__(
        self,
        engine: "Engine",
        bandwidth_Bps: float,
        setup_s: float = 0.0,
        latency_s: float = 0.0,
        name: str = "",
    ):
        if bandwidth_Bps <= 0:
            raise ValueError("bandwidth must be positive")
        if setup_s < 0 or latency_s < 0:
            raise ValueError("setup/latency must be non-negative")
        self.engine = engine
        self.bandwidth_Bps = float(bandwidth_Bps)
        self.setup_s = float(setup_s)
        self.latency_s = float(latency_s)
        self.name = name
        self._busy_until = 0.0
        #: Total bytes that have entered the pipe (occupancy accounting).
        self.total_bytes = 0
        self.total_items = 0

    def occupancy_time(self, nbytes: int) -> float:
        """Stage occupancy for an item of ``nbytes``."""
        return self.setup_s + nbytes / self.bandwidth_Bps

    def transfer(self, nbytes: int, payload: Any = None) -> Event:
        """Enqueue a transfer; returns an event firing at *delivery* time
        with ``payload`` as its value."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        now = self.engine.now
        start = max(now, self._busy_until)
        done = start + self.occupancy_time(nbytes)
        self._busy_until = done
        self.total_bytes += nbytes
        self.total_items += 1
        ev = Event(self.engine)
        ev._ok = True
        ev._value = payload
        self.engine._enqueue(ev, 1, delay_s=(done + self.latency_s) - now)
        return ev

    @property
    def busy_until(self) -> float:
        """Simulation time at which the stage drains (given current queue)."""
        return self._busy_until
