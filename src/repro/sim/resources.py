"""Shared-resource primitives: FIFO resources, stores, and capacity pipes.

These model contention points in the hardware layer: a DMA engine, a wire,
a switch port.  All queueing is FIFO (optionally priority-ordered), which
keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Optional, Tuple

from .errors import SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine


class Request(Event):
    """Event granted when a :class:`Resource` slot becomes available.

    Use as a context value: hold it, then pass it to :meth:`Resource.release`.
    """

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: int):
        super().__init__(resource.engine)
        self.resource = resource
        self.priority = priority
        self._order = resource._next_order()

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        self.resource._cancel(self)


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO/priority queue.

    Lower ``priority`` values are served first; ties are FIFO.
    """

    def __init__(self, engine: "Engine", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._users: List[Request] = []
        # Two waiting lanes: the overwhelmingly common constant-priority
        # (0) case rides a plain FIFO deque; any other priority falls back
        # to the heap.  Grant order merges the two by (priority, order), so
        # semantics are identical to a single priority heap.
        self._waiting: List[Tuple[int, int, Request]] = []
        self._fifo: Deque[Request] = deque()
        self._order = 0

    def _next_order(self) -> int:
        self._order += 1
        return self._order

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting) + len(self._fifo)

    def request(self, priority: int = 0) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        req = Request(self, priority)
        if len(self._users) < self.capacity and not self._waiting and not self._fifo:
            self._users.append(req)
            req.succeed(req)
        elif priority == 0:
            self._fifo.append(req)
        else:
            heapq.heappush(self._waiting, (priority, req._order, req))
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that does not hold a slot")
        self._grant_next()

    def _cancel(self, request: Request) -> None:
        try:
            self._fifo.remove(request)
            return
        except ValueError:
            pass
        self._waiting = [(p, o, r) for (p, o, r) in self._waiting if r is not request]
        heapq.heapify(self._waiting)

    def _pop_next(self) -> Optional[Request]:
        if self._fifo and (
            not self._waiting
            or (0, self._fifo[0]._order) < self._waiting[0][:2]
        ):
            return self._fifo.popleft()
        if self._waiting:
            return heapq.heappop(self._waiting)[2]
        return None

    def _grant_next(self) -> None:
        while len(self._users) < self.capacity:
            req = self._pop_next()
            if req is None:
                return
            if req.triggered:  # cancelled/failed elsewhere
                continue
            self._users.append(req)
            req.succeed(req)


class Store:
    """An unbounded FIFO queue of items with event-based ``get``.

    ``put`` never blocks; ``get`` returns an event that fires with the next
    item (immediately if one is waiting).
    """

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``; wakes the oldest waiting getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Event firing with the next available item (FIFO)."""
        ev = Event(self.engine)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking pop: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def peek_all(self) -> list:
        """Snapshot of queued items (for inspection/tests)."""
        return list(self._items)


class BurstDomain:
    """The lazy-reservation ledger for one exclusive route group.

    Burst transfers (:mod:`repro.hardware.nic`) reserve pipe occupancy
    *lazily*: instead of one heap event per fragment, each burst registers a
    stream of future reservations, and the streams of all linked pipes are
    merged in reservation-time order whenever real state is needed.  The
    merge is exact because a stream's next reservation time is either known
    locally (a transmit chain) or derived from a source fragment with a
    strictly earlier reservation time (an arrival stream) — so the globally
    earliest pending reservation is always committable.

    Equal-instant ties replicate the legacy event ordering: the legacy
    transmit chain always passes through a fresh zero-delay event (the
    wire-credit grant) before its next bus reservation, while an arrival
    reserves directly inside its delivery callback — so at any instant an
    arrival wins the bus over a transmit continuation.  Hence receive
    streams commit before transmit streams on a time tie, and callers
    sitting *inside* a delivery callback materialize with ``tx_strict``
    (transmit reservations at exactly ``t`` are deferred behind them).
    """

    __slots__ = ("streams", "_seq")

    def __init__(self) -> None:
        self.streams: List[Any] = []
        self._seq = 0

    def add(self, stream: Any) -> None:
        self._seq += 1
        stream.seq = self._seq
        self.streams.append(stream)

    def materialize(self, t: float, tx_strict: bool = False) -> None:
        """Commit every pending reservation with time ``<= t`` (with
        ``tx_strict``, transmit reservations only strictly ``< t``)."""
        streams = self.streams
        while streams:
            best = None
            best_key = (0.0, 0, 0)
            for s in streams:
                r = s.next_res()
                if r is None or r > t:
                    continue
                if tx_strict and r == t and not s.is_rx:
                    continue
                key = (r, 0 if s.is_rx else 1, s.seq)
                if best is None or key < best_key:
                    best, best_key = s, key
            if best is None:
                return
            if best.commit_next():
                streams.remove(best)


class Pipe:
    """A serialized transfer stage with fixed per-item setup and byte rate.

    Models a wire, a DMA engine, or a bus: transfers queue FIFO; each
    occupies the stage for ``setup_s + nbytes / bandwidth_Bps`` seconds,
    after which ``deliver(payload)`` is invoked (and the completion event
    fires).

    Parameters
    ----------
    engine:
        Owning engine.
    bandwidth_Bps:
        Sustained byte rate of the stage.
    setup_s:
        Fixed occupancy cost per item (header time, descriptor setup...).
    latency_s:
        Additional *pipelined* delay between stage exit and delivery — does
        not consume stage occupancy (propagation delay).
    """

    def __init__(
        self,
        engine: "Engine",
        bandwidth_Bps: float,
        setup_s: float = 0.0,
        latency_s: float = 0.0,
        name: str = "",
    ):
        if bandwidth_Bps <= 0:
            raise ValueError("bandwidth must be positive")
        if setup_s < 0 or latency_s < 0:
            raise ValueError("setup/latency must be non-negative")
        self.engine = engine
        self.bandwidth_Bps = float(bandwidth_Bps)
        self.setup_s = float(setup_s)
        self.latency_s = float(latency_s)
        self.name = name
        self._busy_until = 0.0
        #: Lazy-burst ledger shared with route-linked pipes (or ``None``).
        self.domain: Optional[BurstDomain] = None
        #: Total bytes that have entered the pipe (occupancy accounting).
        self.total_bytes = 0
        self.total_items = 0

    def occupancy_time(self, nbytes: int) -> float:
        """Stage occupancy for an item of ``nbytes``."""
        return self.setup_s + nbytes / self.bandwidth_Bps

    def transfer(self, nbytes: int, payload: Any = None) -> Event:
        """Enqueue a transfer; returns an event firing at *delivery* time
        with ``payload`` as its value."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        engine = self.engine
        now = engine._now
        d = self.domain
        if d is not None and d.streams:
            # Pending lazy reservations land before this one (FIFO) — except
            # transmit reservations at exactly `now`: the legacy chain would
            # order those *behind* a same-instant direct caller (it reaches
            # its reservation only after a fresh zero-delay credit event).
            d.materialize(now, tx_strict=True)
        start = self._busy_until
        if start < now:
            start = now
        # Inlined occupancy_time — parenthesized to keep the exact float
        # association of start + (setup + nbytes / bandwidth).
        done = start + (self.setup_s + nbytes / self.bandwidth_Bps)
        self._busy_until = done
        self.total_bytes += nbytes
        self.total_items += 1
        ev = Event(engine)
        ev._ok = True
        ev._value = payload
        engine._enqueue(ev, 1, delay_s=(done + self.latency_s) - now)
        return ev

    def transfer_at(self, res_time_s: float, nbytes: int, payload: Any = None) -> Event:
        """Like :meth:`transfer`, but reserving the stage at ``res_time_s``
        (a future instant the caller has computed analytically).

        Only valid on an *exclusive* stage: between now and ``res_time_s``
        no other caller may reserve, so committing the slot early is
        indistinguishable from calling :meth:`transfer` at ``res_time_s``.
        """
        start = max(res_time_s, self._busy_until)
        done = start + (self.setup_s + nbytes / self.bandwidth_Bps)
        self._busy_until = done
        self.total_bytes += nbytes
        self.total_items += 1
        ev = Event(self.engine)
        ev._ok = True
        ev._value = payload
        # Reproduce transfer()'s fire-time float arithmetic as if called at
        # res_time_s — the now + (x - now) round-trip is part of the bit
        # pattern the legacy path produces.
        when = res_time_s + ((done + self.latency_s) - res_time_s)
        self.engine._enqueue_at(ev, 1, when)
        return ev

    @property
    def busy_until(self) -> float:
        """Simulation time at which the stage drains (given current queue)."""
        d = self.domain
        if d is not None and d.streams:
            d.materialize(self.engine.now, tx_strict=True)
        return self._busy_until
