"""Operating-system substrate: interrupt delivery and kernel services."""

from .interrupts import InterruptController

__all__ = ["InterruptController"]
