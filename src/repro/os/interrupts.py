"""Interrupt controller: delivers device interrupts to the host CPU.

Each interrupt costs trap entry + handler body + trap exit on the CPU,
preempting user work.  Optional coalescing models NIC interrupt mitigation:
when the CPU is already executing (or has queued) kernel work, a freshly
raised interrupt skips the entry/exit cost — it is picked up by the running
dispatch loop.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..config import InterruptConfig
from ..hardware.cpu import CPU
from ..sim.events import Event


class InterruptController:
    """Routes device interrupts onto a :class:`~repro.hardware.cpu.CPU`."""

    def __init__(self, cpu: CPU, config: InterruptConfig, name: str = "irq"):
        self.cpu = cpu
        self.config = config
        self.name = name
        #: Total interrupts raised.
        self.count = 0
        #: Interrupts that were coalesced (no entry/exit charged).
        self.coalesced = 0
        #: Total CPU seconds charged to interrupt handling.
        self.time_charged_s = 0.0

    def raise_irq(
        self,
        handler_cost_s: float,
        fn: Optional[Callable[[], None]] = None,
        label: str = "",
    ) -> Optional[Event]:
        """Deliver an interrupt whose handler body costs ``handler_cost_s``.

        The handler's effect is ``fn``; no completion event is allocated
        (interrupts are fire-and-forget — every caller acts in ``fn``).
        """
        self.count += 1
        cost = handler_cost_s
        coalesce = (
            self.config.coalesce_window_s > 0.0
            and (self.cpu.in_kernel or self.cpu._kernel_queue)
        )
        if coalesce:
            self.coalesced += 1
        else:
            cost += self.config.entry_s + self.config.exit_s
        self.time_charged_s += cost
        return self.cpu.kernel_work(
            cost, fn, label=label or f"{self.name}.irq", want_event=False
        )
