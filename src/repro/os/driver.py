"""Go-back-N reliability state machines (the kernel driver's brain).

The paper's Portals path runs over a Linux kernel module that "provides
reliability and flow control for Myrinet packets" (§3).  These classes are
that module's protocol core, kept free of simulation machinery so they can
be unit-tested exhaustively; :class:`repro.transport.portals.PortalsDevice`
wires them to the NIC, the interrupt controller and the retransmit timers.

Protocol summary (classic go-back-N):

* every DATA packet of a flow (sender node → receiver node) carries a
  sequence number;
* the receiver delivers only the in-order packet, re-acking on duplicates
  and on gaps (cumulative acks: "everything ≤ `cum` received");
* the sender keeps ≤ ``window`` packets unacknowledged; duplicate acks or
  a retransmission timeout trigger retransmission of the whole window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class RxDecision:
    """Receiver-side verdict for one arriving data packet."""

    #: Deliver the payload up the stack?
    deliver: bool
    #: Emit an ack now?  (``cum`` is valid when True.)
    send_ack: bool
    #: Cumulative sequence acknowledged.
    cum: int = -1
    #: Classification, for stats: "in_order" | "duplicate" | "gap".
    kind: str = "in_order"


class GoBackNRx:
    """Receiver half of one flow."""

    def __init__(self, ack_every: int):
        if ack_every < 1:
            raise ValueError("ack_every must be >= 1")
        self.ack_every = ack_every
        self.expected = 0
        self._since_ack = 0
        #: Counters: delivered / duplicate / gap packets seen.
        self.delivered = 0
        self.duplicates = 0
        self.gaps = 0

    def on_data(self, seq: int, force_ack: bool = False) -> RxDecision:
        """Classify packet ``seq``; ``force_ack`` for end-of-message."""
        if seq == self.expected:
            self.expected += 1
            self.delivered += 1
            self._since_ack += 1
            if self._since_ack >= self.ack_every or force_ack:
                self._since_ack = 0
                return RxDecision(True, True, self.expected - 1, "in_order")
            return RxDecision(True, False, kind="in_order")
        if seq < self.expected:
            # Duplicate (a retransmission overshoot): re-ack so the sender
            # advances.
            self.duplicates += 1
            self._since_ack = 0
            return RxDecision(False, True, self.expected - 1, "duplicate")
        # Gap: a predecessor was lost; drop and send a duplicate ack.
        self.gaps += 1
        self._since_ack = 0
        return RxDecision(False, True, self.expected - 1, "gap")


class GoBackNTx:
    """Sender half of one flow.

    The caller owns actual (re)transmission and timers; this object tracks
    the window and tells the caller what to do.
    """

    def __init__(self, window: int, dup_ack_threshold: int = 2):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.dup_ack_threshold = dup_ack_threshold
        self.next_seq = 0
        self.base = 0
        self._buffer: Dict[int, object] = {}
        self._dup_acks = 0
        #: Counters.
        self.retransmissions = 0
        self.acked = 0

    # ------------------------------------------------------------- queries
    @property
    def in_flight(self) -> int:
        """Unacknowledged packets."""
        return self.next_seq - self.base

    @property
    def can_send(self) -> bool:
        """Is there window room for one more packet?"""
        return self.in_flight < self.window

    @property
    def has_unacked(self) -> bool:
        """Anything outstanding (drives the retransmit timer)."""
        return self.base < self.next_seq

    # ------------------------------------------------------------- actions
    def register(self, payload: object) -> int:
        """Admit one packet into the window; returns its sequence number.

        Caller must have checked :attr:`can_send`.
        """
        if not self.can_send:
            raise RuntimeError("go-back-N window overflow")
        seq = self.next_seq
        self._buffer[seq] = payload
        self.next_seq += 1
        return seq

    def on_ack(self, cum: int) -> Tuple[int, List[object]]:
        """Process a cumulative ack.

        Returns ``(released, retransmit)``: how many window slots opened,
        and the payloads to retransmit *now* (non-empty when enough
        duplicate acks accumulated).
        """
        if cum >= self.base:
            released = cum + 1 - self.base
            for seq in range(self.base, cum + 1):
                self._buffer.pop(seq, None)
            self.base = cum + 1
            self.acked += released
            self._dup_acks = 0
            return released, []
        # Duplicate ack: the receiver is stuck at `cum + 1`.
        self._dup_acks += 1
        if self._dup_acks >= self.dup_ack_threshold and self.has_unacked:
            self._dup_acks = 0
            return 0, self.window_payloads()
        return 0, []

    def on_timeout(self) -> List[object]:
        """Retransmission timer fired: resend the outstanding window."""
        if not self.has_unacked:
            return []
        return self.window_payloads()

    def window_payloads(self) -> List[object]:
        """Outstanding payloads in sequence order (marks a retransmission)."""
        self.retransmissions += 1
        return [self._buffer[s] for s in range(self.base, self.next_seq)
                if s in self._buffer]
