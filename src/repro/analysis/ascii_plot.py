"""Terminal plotting: render :class:`FigureData` as ASCII scatter plots.

The benchmark harness has no display; these plots make the regenerated
figures reviewable straight from a terminal or a CI log.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from .figures import Curve, FigureData

#: Markers assigned to curves in order.
MARKERS = "ox+*#@%&"


def _transform(v: float, scale: str) -> float:
    if scale == "log":
        return math.log10(v) if v > 0 else float("-inf")
    return v


def render(fig: FigureData, width: int = 72, height: int = 20) -> str:
    """Render the figure into a character grid with axes and a legend."""
    xs: List[float] = []
    ys: List[float] = []
    for c in fig.curves:
        for x, y in zip(c.x, c.y):
            tx, ty = _transform(x, fig.xscale), _transform(y, fig.yscale)
            if math.isfinite(tx) and math.isfinite(ty):
                xs.append(tx)
                ys.append(ty)
    if not xs:
        return f"[{fig.fig_id}: no finite data]"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if fig.yscale == "linear":
        y_lo = min(y_lo, 0.0)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, mark: str) -> None:
        tx, ty = _transform(x, fig.xscale), _transform(y, fig.yscale)
        if not (math.isfinite(tx) and math.isfinite(ty)):
            return
        col = int(round((tx - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = int(round((ty - y_lo) / (y_hi - y_lo) * (height - 1)))
        grid[height - 1 - row][col] = mark

    for i, curve in enumerate(fig.curves):
        mark = MARKERS[i % len(MARKERS)]
        for x, y in zip(curve.x, curve.y):
            place(x, y, mark)

    def fmt(v: float, scale: str) -> str:
        if scale == "log":
            return f"1e{v:.1f}"
        return f"{v:.3g}"

    lines = [f"{fig.fig_id}: {fig.title}"]
    top_label = fmt(y_hi, fig.yscale)
    bot_label = fmt(y_lo, fig.yscale)
    label_w = max(len(top_label), len(bot_label))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(label_w)
        elif r == height - 1:
            prefix = bot_label.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    lines.append(
        " " * label_w + f"  {fmt(x_lo, fig.xscale)}"
        + f"{fig.xlabel:^{max(0, width - 16)}}"
        + f"{fmt(x_hi, fig.xscale)}"
    )
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {c.label}" for i, c in enumerate(fig.curves)
    )
    lines.append(" " * label_w + f"  [{fig.ylabel}]  {legend}")
    return "\n".join(lines)
