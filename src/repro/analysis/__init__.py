"""Analysis layer: figure regeneration, claim checks, plots, export."""

from .ascii_plot import render
from .claims import ALL_CLAIMS, ClaimResult
from .export import export_figures, write_csv, write_json
from .svg_plot import render_svg, write_svg
from .figures import ALL_FIGURES, Curve, FigureData
from .knees import Knee, find_knee_iters, format_knees, knee_table, measure_knee
from .registry import CurveSpec, FIGURE_SPECS, FigureSpec, build_figure
from .report import FigureReport, format_report, run_all, run_figure
from .tables import (
    HEADERS,
    SystemSummary,
    format_table,
    summarize_system,
    system_comparison,
)

__all__ = [
    "ALL_CLAIMS",
    "ALL_FIGURES",
    "ClaimResult",
    "Curve",
    "CurveSpec",
    "FIGURE_SPECS",
    "FigureData",
    "FigureReport",
    "FigureSpec",
    "build_figure",
    "HEADERS",
    "Knee",
    "SystemSummary",
    "export_figures",
    "format_report",
    "find_knee_iters",
    "format_knees",
    "format_table",
    "knee_table",
    "measure_knee",
    "render",
    "render_svg",
    "write_svg",
    "summarize_system",
    "system_comparison",
    "run_all",
    "run_figure",
    "write_csv",
    "write_json",
]
