"""Scaling figures: pattern availability vs rank count per transport.

These go beyond the paper's two-node figures: they sweep the application
communication patterns (:mod:`repro.patterns`) over rank counts on both
fabrics and plot the availability scaling curve per transport.  The
paper's §4 prediction extends naturally — a library-polled transport's
Progress Rule penalty compounds with neighbour count, while an offloaded
transport's availability should survive scale — and the claim checkers
pin exactly that.

The figures themselves are :data:`~repro.analysis.registry.FIGURE_SPECS`
entries (``scale_halo``, ``scale_allreduce``); this module keeps their
historical wrapper signatures, the reusable sweep helpers
(:func:`pattern_tasks` / :func:`pattern_scaling`), and the claim
checkers.

Not part of the default ``comb report`` grid (the paper has no such
figure); run them explicitly::

    comb figures --ids scale_halo scale_allreduce
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from .claims import ClaimResult
from .registry import (DEFAULT_RANK_COUNTS, FIGURE_SPECS, KB, FigureData,
                       build_figure, pattern_scaling, pattern_tasks)

__all__ = [
    "DEFAULT_RANK_COUNTS", "KB", "SCALING_CLAIMS", "SCALING_FIGURES",
    "pattern_scaling", "pattern_tasks", "scale_halo", "scale_allreduce",
]


def scale_halo(per_decade: int = 1,
               rank_counts: Sequence[int] = DEFAULT_RANK_COUNTS,
               msg_bytes: int = 100 * KB,
               work_interval_iters: int = 1_000_000) -> FigureData:
    """2D halo-exchange availability vs rank count, both fabrics."""
    del per_decade  # the rank-count axis is explicit, not log-gridded
    return build_figure(FIGURE_SPECS["scale_halo"], rank_counts=rank_counts,
                        msg_bytes=msg_bytes,
                        work_interval_iters=work_interval_iters)


def scale_allreduce(per_decade: int = 1,
                    rank_counts: Sequence[int] = DEFAULT_RANK_COUNTS,
                    msg_bytes: int = 100 * KB,
                    work_interval_iters: int = 1_000_000) -> FigureData:
    """Binomial-allreduce availability vs rank count, both fabrics."""
    del per_decade
    return build_figure(FIGURE_SPECS["scale_allreduce"],
                        rank_counts=rank_counts, msg_bytes=msg_bytes,
                        work_interval_iters=work_interval_iters)


def _check_scaling(fig: FigureData) -> List[ClaimResult]:
    """Shared shape checks for the pattern scaling figures.

    * every availability is a valid fraction in (0, 1];
    * adding neighbours costs availability: every curve ends below its
      two-rank starting point;
    * at the largest rank count the OS-bypass transport (GM) retains
      more availability than the interrupt-driven one (Portals) — each
      extra neighbour's packets interrupt the host CPU (the fig 12
      message-handling tax), so the per-neighbour cost compounds for
      Portals while GM only pays its (rank-independent) Progress Rule
      wait.
    """
    out: List[ClaimResult] = []
    for c in fig.curves:
        ok = all(0.0 < y <= 1.0 for y in c.y)
        out.append(ClaimResult(
            fig.fig_id,
            f"{c.label}: availability stays a valid fraction",
            ok, f"min={min(c.y):.3f}, max={max(c.y):.3f}",
        ))
        out.append(ClaimResult(
            fig.fig_id,
            f"{c.label}: neighbours cost availability "
            f"({int(c.x[-1])} ranks below 2 ranks)",
            c.y[-1] < c.y[0],
            f"2 ranks={c.y[0]:.3f}, {int(c.x[-1])} ranks={c.y[-1]:.3f}",
        ))
    for topology in ("crossbar", "fattree"):
        gm = fig.curve(f"GM ({topology})")
        portals = fig.curve(f"Portals ({topology})")
        out.append(ClaimResult(
            fig.fig_id,
            f"{topology}: interrupt-driven progress pays the compounding "
            f"per-neighbour tax (GM > Portals at {int(gm.x[-1])} ranks)",
            gm.y[-1] > portals.y[-1],
            f"GM={gm.y[-1]:.3f}, Portals={portals.y[-1]:.3f}",
        ))
    return out


#: Pattern scaling figures — opt-in (not in ``ALL_FIGURES``'s default
#: report grid); merged into :func:`repro.analysis.report.run_figure`.
SCALING_FIGURES: Dict[str, Callable[..., FigureData]] = {
    "scale_halo": scale_halo,
    "scale_allreduce": scale_allreduce,
}

SCALING_CLAIMS: Dict[str, Callable[[FigureData], List[ClaimResult]]] = {
    "scale_halo": _check_scaling,
    "scale_allreduce": _check_scaling,
}
