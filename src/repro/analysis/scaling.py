"""Scaling figures: pattern availability vs rank count per transport.

These go beyond the paper's two-node figures: they sweep the application
communication patterns (:mod:`repro.patterns`) over rank counts on both
fabrics and plot the availability scaling curve per transport.  The
paper's §4 prediction extends naturally — a library-polled transport's
Progress Rule penalty compounds with neighbour count, while an offloaded
transport's availability should survive scale — and the claim checkers
pin exactly that.

Not part of the default ``comb report`` grid (the paper has no such
figure); run them explicitly::

    comb figures --ids scale_halo scale_allreduce
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from ..config import SystemConfig, gm_system, portals_system
from ..core.executor import PointTask, SweepExecutor, current_executor
from ..patterns.config import PatternConfig
from ..patterns.results import PatternPoint
from .claims import ClaimResult
from .figures import Curve, FigureData

KB = 1024

#: Default rank-count axis: two-node (the paper's world) up to a
#: two-edge-switch fat-tree's worth.
DEFAULT_RANK_COUNTS = (2, 4, 8, 16)


def pattern_tasks(
    system: SystemConfig,
    pattern: str,
    rank_counts: Sequence[int],
    topology: str = "crossbar",
    base: Optional[PatternConfig] = None,
) -> List[PointTask]:
    """Task records for a rank-count sweep of one pattern."""
    base = base or PatternConfig()
    return [
        PointTask(
            "pattern",
            system,
            dataclasses.replace(base, pattern=pattern, ranks=int(n),
                                topology=topology),
        )
        for n in rank_counts
    ]


def pattern_scaling(
    system: SystemConfig,
    pattern: str,
    rank_counts: Sequence[int],
    topology: str = "crossbar",
    base: Optional[PatternConfig] = None,
    label: Optional[str] = None,
    executor: Optional[SweepExecutor] = None,
) -> Curve:
    """Availability-vs-ranks curve for one (system, topology) pair."""
    ex = current_executor(executor)
    points: List[PatternPoint] = ex.run(
        pattern_tasks(system, pattern, rank_counts, topology, base)
    )
    return Curve(
        label=label or f"{system.name} ({topology})",
        x=[float(n) for n in rank_counts],
        y=[pt.availability for pt in points],
    )


def _scaling_figure(
    fig_id: str,
    title: str,
    pattern: str,
    rank_counts: Sequence[int],
    base: PatternConfig,
) -> FigureData:
    curves = [
        pattern_scaling(system, pattern, rank_counts, topology, base)
        for system in (gm_system(), portals_system())
        for topology in ("crossbar", "fattree")
    ]
    return FigureData(
        fig_id=fig_id,
        title=title,
        xlabel="ranks",
        ylabel="CPU availability (median across ranks)",
        curves=curves,
        xscale="log",
        notes=f"pattern={pattern}, {base.msg_bytes // KB} KB, "
        f"work interval {base.work_interval_iters} iters",
    )


def scale_halo(per_decade: int = 1,
               rank_counts: Sequence[int] = DEFAULT_RANK_COUNTS,
               msg_bytes: int = 100 * KB,
               work_interval_iters: int = 1_000_000) -> FigureData:
    """2D halo-exchange availability vs rank count, both fabrics."""
    del per_decade  # the rank-count axis is explicit, not log-gridded
    base = PatternConfig(msg_bytes=msg_bytes,
                         work_interval_iters=work_interval_iters)
    return _scaling_figure(
        "scale_halo", "Halo-exchange availability scaling", "halo2d",
        rank_counts, base,
    )


def scale_allreduce(per_decade: int = 1,
                    rank_counts: Sequence[int] = DEFAULT_RANK_COUNTS,
                    msg_bytes: int = 100 * KB,
                    work_interval_iters: int = 1_000_000) -> FigureData:
    """Binomial-allreduce availability vs rank count, both fabrics."""
    del per_decade
    base = PatternConfig(msg_bytes=msg_bytes,
                         work_interval_iters=work_interval_iters)
    return _scaling_figure(
        "scale_allreduce", "Allreduce availability scaling", "allreduce",
        rank_counts, base,
    )


def _check_scaling(fig: FigureData) -> List[ClaimResult]:
    """Shared shape checks for the pattern scaling figures.

    * every availability is a valid fraction in (0, 1];
    * adding neighbours costs availability: every curve ends below its
      two-rank starting point;
    * at the largest rank count the OS-bypass transport (GM) retains
      more availability than the interrupt-driven one (Portals) — each
      extra neighbour's packets interrupt the host CPU (the fig 12
      message-handling tax), so the per-neighbour cost compounds for
      Portals while GM only pays its (rank-independent) Progress Rule
      wait.
    """
    out: List[ClaimResult] = []
    for c in fig.curves:
        ok = all(0.0 < y <= 1.0 for y in c.y)
        out.append(ClaimResult(
            fig.fig_id,
            f"{c.label}: availability stays a valid fraction",
            ok, f"min={min(c.y):.3f}, max={max(c.y):.3f}",
        ))
        out.append(ClaimResult(
            fig.fig_id,
            f"{c.label}: neighbours cost availability "
            f"({int(c.x[-1])} ranks below 2 ranks)",
            c.y[-1] < c.y[0],
            f"2 ranks={c.y[0]:.3f}, {int(c.x[-1])} ranks={c.y[-1]:.3f}",
        ))
    for topology in ("crossbar", "fattree"):
        gm = fig.curve(f"GM ({topology})")
        portals = fig.curve(f"Portals ({topology})")
        out.append(ClaimResult(
            fig.fig_id,
            f"{topology}: interrupt-driven progress pays the compounding "
            f"per-neighbour tax (GM > Portals at {int(gm.x[-1])} ranks)",
            gm.y[-1] > portals.y[-1],
            f"GM={gm.y[-1]:.3f}, Portals={portals.y[-1]:.3f}",
        ))
    return out


#: Pattern scaling figures — opt-in (not in ``ALL_FIGURES``'s default
#: report grid); merged into :func:`repro.analysis.report.run_figure`.
SCALING_FIGURES: Dict[str, Callable[..., FigureData]] = {
    "scale_halo": scale_halo,
    "scale_allreduce": scale_allreduce,
}

SCALING_CLAIMS: Dict[str, Callable[[FigureData], List[ClaimResult]]] = {
    "scale_halo": _check_scaling,
    "scale_allreduce": _check_scaling,
}
