"""Dependency-free SVG rendering of :class:`FigureData`.

Produces self-contained ``.svg`` files (no matplotlib required — the
environment is offline) with linear/log axes, per-curve colours and
markers, gridlines and a legend, so the regenerated paper figures are
viewable in any browser.  ``export_figures(..., svg=True)`` and
``comb figures --out DIR`` write them alongside the CSV/JSON.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import List, Optional, Tuple, Union

from .figures import Curve, FigureData

#: Curve colour cycle (colour-blind-safe-ish hexes).
COLORS = ["#0072b2", "#d55e00", "#009e73", "#cc79a7",
          "#e69f00", "#56b4e9", "#f0e442", "#000000"]

#: Plot geometry.
WIDTH, HEIGHT = 640, 420
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 70, 20, 40, 60


def _nice_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Roughly ``n`` round-valued ticks covering [lo, hi] (linear)."""
    if hi <= lo:
        return [lo]
    raw = (hi - lo) / max(1, n)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 5, 10):
        step = mult * mag
        if raw <= step:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step * 1e-9:
        ticks.append(round(t, 12))
        t += step
    return ticks or [lo]


def _log_ticks(lo: float, hi: float) -> List[float]:
    lo_e = math.floor(math.log10(lo)) if lo > 0 else 0
    hi_e = math.ceil(math.log10(hi)) if hi > 0 else 1
    return [10.0 ** e for e in range(int(lo_e), int(hi_e) + 1)]


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1e4 or abs(v) < 1e-2:
        exp = int(math.floor(math.log10(abs(v))))
        mant = v / 10 ** exp
        if abs(mant - 1.0) < 1e-9:
            return f"1e{exp}"
        return f"{mant:.3g}e{exp}"
    return f"{v:.4g}"


class _Axis:
    """Maps data coordinates to pixel coordinates for one axis."""

    def __init__(self, lo: float, hi: float, scale: str,
                 pix_lo: float, pix_hi: float):
        self.scale = scale
        if scale == "log":
            lo = max(lo, 1e-300)
            hi = max(hi, lo * 10)
            self.lo, self.hi = math.log10(lo), math.log10(hi)
        else:
            if hi <= lo:
                hi = lo + 1.0
            self.lo, self.hi = lo, hi
        self.pix_lo, self.pix_hi = pix_lo, pix_hi

    def to_pix(self, v: float) -> Optional[float]:
        if self.scale == "log":
            if v <= 0:
                return None
            t = math.log10(v)
        else:
            t = v
        frac = (t - self.lo) / (self.hi - self.lo)
        return self.pix_lo + frac * (self.pix_hi - self.pix_lo)


def render_svg(fig: FigureData) -> str:
    """Render the figure as an SVG document string."""
    xs = [x for c in fig.curves for x in c.x
          if fig.xscale != "log" or x > 0]
    ys = [y for c in fig.curves for y in c.y
          if fig.yscale != "log" or y > 0]
    # CI bands participate in the y range so they never clip.
    ys += [y for c in fig.curves if c.y_lo is not None and c.y_hi is not None
           for y in list(c.y_lo) + list(c.y_hi)
           if fig.yscale != "log" or y > 0]
    if not xs or not ys:
        return (f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
                f'height="{HEIGHT}"><text x="20" y="40">'
                f"{fig.fig_id}: no data</text></svg>")
    y_lo = 0.0 if fig.yscale == "linear" else min(ys)
    x_axis = _Axis(min(xs), max(xs), fig.xscale,
                   MARGIN_L, WIDTH - MARGIN_R)
    y_axis = _Axis(y_lo, max(ys) * 1.05, fig.yscale,
                   HEIGHT - MARGIN_B, MARGIN_T)

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{WIDTH / 2}" y="22" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{_esc(fig.title)}</text>',
    ]

    # Grid + ticks.
    x_ticks = (_log_ticks(min(xs), max(xs)) if fig.xscale == "log"
               else _nice_ticks(min(xs), max(xs)))
    y_hi_val = max(ys) * 1.05
    y_ticks = (_log_ticks(min(ys), y_hi_val) if fig.yscale == "log"
               else _nice_ticks(y_lo, y_hi_val))
    for tv in x_ticks:
        px = x_axis.to_pix(tv)
        if px is None or not (MARGIN_L - 1 <= px <= WIDTH - MARGIN_R + 1):
            continue
        parts.append(
            f'<line x1="{px:.1f}" y1="{MARGIN_T}" x2="{px:.1f}" '
            f'y2="{HEIGHT - MARGIN_B}" stroke="#dddddd"/>'
        )
        parts.append(
            f'<text x="{px:.1f}" y="{HEIGHT - MARGIN_B + 16}" '
            f'text-anchor="middle">{_fmt(tv)}</text>'
        )
    for tv in y_ticks:
        py = y_axis.to_pix(tv)
        if py is None or not (MARGIN_T - 1 <= py <= HEIGHT - MARGIN_B + 1):
            continue
        parts.append(
            f'<line x1="{MARGIN_L}" y1="{py:.1f}" x2="{WIDTH - MARGIN_R}" '
            f'y2="{py:.1f}" stroke="#dddddd"/>'
        )
        parts.append(
            f'<text x="{MARGIN_L - 6}" y="{py + 4:.1f}" '
            f'text-anchor="end">{_fmt(tv)}</text>'
        )

    # Axes frame + labels.
    parts.append(
        f'<rect x="{MARGIN_L}" y="{MARGIN_T}" '
        f'width="{WIDTH - MARGIN_L - MARGIN_R}" '
        f'height="{HEIGHT - MARGIN_T - MARGIN_B}" fill="none" '
        f'stroke="black"/>'
    )
    parts.append(
        f'<text x="{(MARGIN_L + WIDTH - MARGIN_R) / 2}" '
        f'y="{HEIGHT - 14}" text-anchor="middle">{_esc(fig.xlabel)}</text>'
    )
    parts.append(
        f'<text x="16" y="{(MARGIN_T + HEIGHT - MARGIN_B) / 2}" '
        f'text-anchor="middle" transform="rotate(-90 16 '
        f'{(MARGIN_T + HEIGHT - MARGIN_B) / 2})">{_esc(fig.ylabel)}</text>'
    )

    # Curves.
    for i, curve in enumerate(fig.curves):
        color = COLORS[i % len(COLORS)]
        # Replication CI band: a shaded polygon under the polyline
        # (upper edge forward, lower edge reversed).
        if curve.y_lo is not None and curve.y_hi is not None:
            band: List[Tuple[float, float]] = []
            for x, y in zip(curve.x, curve.y_hi):
                px, py = x_axis.to_pix(x), y_axis.to_pix(y)
                if px is not None and py is not None:
                    band.append((px, py))
            lower: List[Tuple[float, float]] = []
            for x, y in zip(curve.x, curve.y_lo):
                px, py = x_axis.to_pix(x), y_axis.to_pix(y)
                if px is not None and py is not None:
                    lower.append((px, py))
            band.extend(reversed(lower))
            if len(band) >= 3:
                path = " ".join(f"{x:.1f},{y:.1f}" for x, y in band)
                parts.append(
                    f'<polygon points="{path}" fill="{color}" '
                    f'fill-opacity="0.15" stroke="none"/>'
                )
        pts: List[Tuple[float, float]] = []
        for x, y in zip(curve.x, curve.y):
            px, py = x_axis.to_pix(x), y_axis.to_pix(y)
            if px is not None and py is not None:
                pts.append((px, py))
        if len(pts) >= 2:
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
            parts.append(
                f'<polyline points="{path}" fill="none" stroke="{color}" '
                f'stroke-width="1.8"/>'
            )
        for x, y in pts:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" fill="{color}"/>'
            )
        # Legend entry.
        ly = MARGIN_T + 14 + i * 16
        lx = WIDTH - MARGIN_R - 150
        parts.append(
            f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 22}" y2="{ly - 4}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{lx + 28}" y="{ly}">{_esc(curve.label)}</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(fig: FigureData, path: Union[str, Path]) -> Path:
    """Render and write one figure's SVG."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_svg(fig))
    return path


def _esc(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))
