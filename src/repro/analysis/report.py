"""Reproduction report: regenerate figures, check claims, render text."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.executor import SweepExecutor, use_executor
from .ascii_plot import render
from .claims import ALL_CLAIMS, ClaimResult
from .figures import ALL_FIGURES, FigureData
from .registry import FIGURE_SPECS, build_figure
from .scaling import SCALING_CLAIMS, SCALING_FIGURES


@dataclass
class FigureReport:
    """One regenerated figure plus its claim checks."""

    figure: FigureData
    claims: List[ClaimResult] = field(default_factory=list)
    #: Wall-clock spent regenerating this figure (ledger/stream feed).
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        """All claims for this figure hold."""
        return all(c.ok for c in self.claims)


def run_figure(fig_id: str, per_decade: int = 2,
               executor: Optional[SweepExecutor] = None,
               **kwargs) -> FigureReport:
    """Regenerate one figure and check its claims.

    ``executor`` parallelizes/caches the figure's sweeps (see
    :class:`~repro.core.executor.SweepExecutor`); ``None`` keeps the
    serial reference path.
    """
    generator = ALL_FIGURES.get(fig_id) or SCALING_FIGURES.get(fig_id)
    if generator is None and fig_id not in FIGURE_SPECS:
        known = sorted(ALL_FIGURES) + sorted(SCALING_FIGURES) + sorted(
            f for f in FIGURE_SPECS
            if f not in ALL_FIGURES and f not in SCALING_FIGURES
        )
        raise KeyError(f"unknown figure {fig_id!r}; have {known}")
    telemetry = executor.telemetry if executor is not None else None
    timed = telemetry is not None or (
        executor is not None and executor.point_log
    )
    if telemetry is not None:
        telemetry.emit("figure_start", figure=fig_id)
    t0_wall = time.perf_counter() if timed else 0.0
    with use_executor(executor):
        if generator is None:
            # Registry-only entry (e.g. a CI-band variant): interpret
            # the spec directly.
            fig = build_figure(FIGURE_SPECS[fig_id], per_decade=per_decade,
                               **kwargs)
        elif fig_id in ("fig12", "fig13"):
            fig = generator(**kwargs)  # linear grids take no per_decade
        else:
            fig = generator(per_decade=per_decade, **kwargs)
    wall_s = time.perf_counter() - t0_wall if timed else 0.0
    if telemetry is not None:
        telemetry.emit("figure_end", figure=fig_id, wall_s=wall_s)
    claims_id = fig_id
    spec = FIGURE_SPECS.get(fig_id)
    if spec is not None and spec.claims_id:
        claims_id = spec.claims_id  # CI variants inherit base claims
    checker = ALL_CLAIMS.get(claims_id) or SCALING_CLAIMS.get(claims_id)
    claims = checker(fig) if checker is not None else []
    return FigureReport(fig, claims, wall_s=wall_s)


def run_all(per_decade: int = 2,
            fig_ids: Optional[Sequence[str]] = None,
            executor: Optional[SweepExecutor] = None) -> List[FigureReport]:
    """Regenerate every requested figure (default: all of Figs 4–17).

    A shared ``executor`` makes overlapping figures nearly free: points
    already simulated for an earlier figure come back from its memo/cache.
    """
    ids = list(fig_ids) if fig_ids else sorted(ALL_FIGURES)
    return [run_figure(fid, per_decade=per_decade, executor=executor)
            for fid in ids]


def format_report(reports: Sequence[FigureReport], plots: bool = True) -> str:
    """Human-readable reproduction report."""
    lines: List[str] = []
    n_ok = sum(1 for r in reports for c in r.claims if c.ok)
    n_all = sum(len(r.claims) for r in reports)
    lines.append(f"COMB reproduction report — {n_ok}/{n_all} claims hold")
    lines.append("=" * 64)
    for rep in reports:
        lines.append("")
        if plots:
            lines.append(render(rep.figure))
        else:
            lines.append(f"{rep.figure.fig_id}: {rep.figure.title}")
        for c in rep.claims:
            mark = "PASS" if c.ok else "FAIL"
            lines.append(f"  [{mark}] {c.claim} ({c.detail})")
        if rep.figure.notes:
            lines.append(f"  note: {rep.figure.notes}")
    return "\n".join(lines)
