"""Reproduction report: regenerate figures, check claims, render text."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .ascii_plot import render
from .claims import ALL_CLAIMS, ClaimResult
from .figures import ALL_FIGURES, FigureData


@dataclass
class FigureReport:
    """One regenerated figure plus its claim checks."""

    figure: FigureData
    claims: List[ClaimResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """All claims for this figure hold."""
        return all(c.ok for c in self.claims)


def run_figure(fig_id: str, per_decade: int = 2, **kwargs) -> FigureReport:
    """Regenerate one figure and check its claims."""
    try:
        generator = ALL_FIGURES[fig_id]
    except KeyError:
        raise KeyError(f"unknown figure {fig_id!r}; have {sorted(ALL_FIGURES)}")
    if fig_id in ("fig12", "fig13"):
        fig = generator(**kwargs)  # linear grids take no per_decade
    else:
        fig = generator(per_decade=per_decade, **kwargs)
    claims = ALL_CLAIMS[fig_id](fig)
    return FigureReport(fig, claims)


def run_all(per_decade: int = 2,
            fig_ids: Optional[Sequence[str]] = None) -> List[FigureReport]:
    """Regenerate every requested figure (default: all of Figs 4–17)."""
    ids = list(fig_ids) if fig_ids else sorted(ALL_FIGURES)
    return [run_figure(fid, per_decade=per_decade) for fid in ids]


def format_report(reports: Sequence[FigureReport], plots: bool = True) -> str:
    """Human-readable reproduction report."""
    lines: List[str] = []
    n_ok = sum(1 for r in reports for c in r.claims if c.ok)
    n_all = sum(len(r.claims) for r in reports)
    lines.append(f"COMB reproduction report — {n_ok}/{n_all} claims hold")
    lines.append("=" * 64)
    for rep in reports:
        lines.append("")
        if plots:
            lines.append(render(rep.figure))
        else:
            lines.append(f"{rep.figure.fig_id}: {rep.figure.title}")
        for c in rep.claims:
            mark = "PASS" if c.ok else "FAIL"
            lines.append(f"  [{mark}] {c.claim} ({c.detail})")
        if rep.figure.notes:
            lines.append(f"  note: {rep.figure.notes}")
    return "\n".join(lines)
