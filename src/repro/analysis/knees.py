"""Knee detection on polling curves.

Figures 4/5's defining feature is the *knee*: the poll interval beyond
which all in-flight messages complete within one interval, so bandwidth
collapses and availability climbs.  The pipeline model predicts its
location:

    t_knee_s ≈ (2 · queue_depth · msg_bytes) / plateau_bandwidth
    knee_iters = t_knee_s / work_iter_s

This module measures knees from swept curves and compares them with that
prediction — a quantitative check that the simulator's knees *emerge* from
the modelled pipeline rather than being placed by hand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import SystemConfig
from ..core.polling import PollingConfig
from ..core.results import Series
from ..core.sweep import log_intervals, polling_sweep


@dataclass
class Knee:
    """A located bandwidth knee."""

    system: str
    msg_bytes: int
    queue_depth: int
    #: Plateau bandwidth (median of the pre-knee half of the curve).
    plateau_Bps: float
    #: Measured knee (log-interpolated interval where bandwidth crosses
    #: half the plateau).
    measured_iters: float
    #: Pipeline-model prediction (see module docstring).
    predicted_iters: float

    @property
    def ratio(self) -> float:
        """measured / predicted — ~1 when the model explains the knee."""
        return self.measured_iters / self.predicted_iters


def find_knee_iters(series: Series) -> Optional[float]:
    """Log-interpolated poll interval where bandwidth falls to half the
    plateau; ``None`` if the curve never collapses."""
    xs = series.xs("poll_interval_iters")
    ys = series.xs("bandwidth_Bps")
    if len(xs) < 3:
        return None
    plateau_vals = sorted(ys[: max(2, len(ys) // 3)])
    plateau = plateau_vals[len(plateau_vals) // 2]
    half = plateau / 2
    for i in range(1, len(xs)):
        if ys[i] < half <= ys[i - 1]:
            # Interpolate in log-x.
            x0, x1 = math.log10(xs[i - 1]), math.log10(xs[i])
            y0, y1 = ys[i - 1], ys[i]
            frac = (y0 - half) / (y0 - y1)
            return 10 ** (x0 + frac * (x1 - x0))
    return None


def measure_knee(
    system: SystemConfig,
    msg_bytes: int,
    per_decade: int = 3,
    base: Optional[PollingConfig] = None,
) -> Knee:
    """Sweep the polling method and locate/predict the knee."""
    base = base or PollingConfig(msg_bytes=msg_bytes)
    series = polling_sweep(
        system, msg_bytes, log_intervals(1e3, 1e8, per_decade), base=base
    )
    measured = find_knee_iters(series)
    if measured is None:
        raise RuntimeError(
            f"{system.name}/{msg_bytes}B: no knee found in sweep"
        )
    ys = series.xs("bandwidth_Bps")
    plateau_vals = sorted(ys[: max(2, len(ys) // 3)])
    plateau = plateau_vals[len(plateau_vals) // 2]
    t_knee_s = 2 * base.queue_depth * msg_bytes / plateau
    predicted = t_knee_s / system.machine.cpu.work_iter_s
    return Knee(
        system=system.name,
        msg_bytes=msg_bytes,
        queue_depth=base.queue_depth,
        plateau_Bps=plateau,
        measured_iters=measured,
        predicted_iters=predicted,
    )


def knee_table(system: SystemConfig, sizes: Sequence[int],
               per_decade: int = 3) -> List[Knee]:
    """Knees for several message sizes."""
    return [measure_knee(system, s, per_decade=per_decade) for s in sizes]


def format_knees(knees: Sequence[Knee]) -> str:
    """Aligned text table of measured vs predicted knees."""
    lines = [f"{'system':10s} {'size':>7s} {'plateau':>9s} "
             f"{'measured':>11s} {'predicted':>11s} {'ratio':>6s}"]
    for k in knees:
        lines.append(
            f"{k.system:10s} {k.msg_bytes // 1024:4d} KB "
            f"{k.plateau_Bps / 1e6:6.1f} MB/s "
            f"{k.measured_iters:11.3g} {k.predicted_iters:11.3g} "
            f"{k.ratio:6.2f}"
        )
    return "\n".join(lines)
