"""Per-figure data generators: one function per results figure (4–17).

Each ``figNN`` function re-runs the measurements behind the corresponding
figure of the paper and returns a :class:`FigureData` with the same axes
and series.  ``per_decade`` trades resolution for runtime (the paper's
plots have ~8 points per decade; 2 is enough to reproduce every shape).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..config import SystemConfig, gm_system, portals_system
from ..core.executor import SweepExecutor
from ..core.polling import PollingConfig
from ..core.pww import PwwConfig
from ..core.results import Series
from ..core.suite import PAPER_SIZES
from ..core.sweep import log_intervals, polling_sweep, pww_sweep


@dataclass
class Curve:
    """One plotted line."""

    label: str
    x: List[float]
    y: List[float]


@dataclass
class FigureData:
    """Data behind one paper figure."""

    fig_id: str
    title: str
    xlabel: str
    ylabel: str
    curves: List[Curve]
    xscale: str = "log"
    yscale: str = "linear"
    notes: str = ""

    def curve(self, label: str) -> Curve:
        """Look a curve up by its label."""
        for c in self.curves:
            if c.label == label:
                return c
        raise KeyError(f"{self.fig_id}: no curve {label!r}")

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "fig_id": self.fig_id,
            "title": self.title,
            "xlabel": self.xlabel,
            "ylabel": self.ylabel,
            "xscale": self.xscale,
            "yscale": self.yscale,
            "notes": self.notes,
            "curves": [dataclasses.asdict(c) for c in self.curves],
        }


def _size_label(nbytes: int) -> str:
    return f"{nbytes // 1024} KB"


def _poll_curves(
    system: SystemConfig,
    sizes: Sequence[int],
    y_attr: str,
    per_decade: int,
    lo: float = 1e1,
    hi: float = 1e8,
    x_attr: str = "poll_interval_iters",
    executor: Optional[SweepExecutor] = None,
) -> List[Curve]:
    grid = log_intervals(lo, hi, per_decade)
    curves = []
    for size_bytes in sizes:
        series = polling_sweep(system, size_bytes, grid, executor=executor)
        curves.append(
            Curve(_size_label(size_bytes), series.xs(x_attr), series.xs(y_attr))
        )
    return curves


def _pww_curves(
    system: SystemConfig,
    sizes: Sequence[int],
    y_attr: str,
    per_decade: int,
    lo: float = 1e3,
    hi: float = 1e8,
    x_attr: str = "work_interval_iters",
    executor: Optional[SweepExecutor] = None,
) -> List[Curve]:
    grid = log_intervals(lo, hi, per_decade)
    curves = []
    for size_bytes in sizes:
        series = pww_sweep(system, size_bytes, grid, executor=executor)
        curves.append(
            Curve(_size_label(size_bytes), series.xs(x_attr), series.xs(y_attr))
        )
    return curves


# --------------------------------------------------------------- Figures 4–7
def fig04(per_decade: int = 2, sizes: Sequence[int] = PAPER_SIZES,
          executor: Optional[SweepExecutor] = None) -> FigureData:
    """Polling method: CPU availability vs poll interval (Portals)."""
    return FigureData(
        "fig04", "Polling Method: CPU Availability (Portals)",
        "Poll Interval (loop iterations)", "CPU Availability (fraction to user)",
        _poll_curves(portals_system(), sizes, "availability", per_decade,
                     executor=executor),
        notes="Low, stable plateau while messages flow (interrupt overhead); "
              "steep climb once the poll interval stalls the message flow.",
    )


def fig05(per_decade: int = 2, sizes: Sequence[int] = PAPER_SIZES,
          executor: Optional[SweepExecutor] = None) -> FigureData:
    """Polling method: bandwidth vs poll interval (Portals)."""
    return FigureData(
        "fig05", "Polling Method: Bandwidth (Portals)",
        "Poll Interval (loop iterations)", "Bandwidth (MB/s)",
        _poll_curves(portals_system(), sizes, "bandwidth_MBps", per_decade,
                     executor=executor),
        notes="Plateau of maximum sustained bandwidth, then steep decline "
              "when all in-flight messages complete within one interval.",
    )


def fig06(per_decade: int = 2, sizes: Sequence[int] = PAPER_SIZES,
          executor: Optional[SweepExecutor] = None) -> FigureData:
    """PWW method: CPU availability vs work interval (Portals)."""
    return FigureData(
        "fig06", "PWW Method: CPU Availability (Portals)",
        "Work Interval (loop iterations)", "CPU Availability (fraction to user)",
        _pww_curves(portals_system(), sizes, "availability", per_decade,
                    lo=1e4, hi=1e7, executor=executor),
        notes="No low plateau: the wait phase suppresses availability until "
              "the work interval fills the delay (paper §4).",
    )


def fig07(per_decade: int = 2, sizes: Sequence[int] = PAPER_SIZES,
          executor: Optional[SweepExecutor] = None) -> FigureData:
    """PWW method: bandwidth vs work interval (Portals)."""
    return FigureData(
        "fig07", "PWW Method: Bandwidth (Portals)",
        "Work Interval (loop iterations)", "Bandwidth (MB/s)",
        _pww_curves(portals_system(), sizes, "bandwidth_MBps", per_decade,
                    lo=1e3, hi=1e8, executor=executor),
        notes="More gradual decline than the polling method.",
    )


# -------------------------------------------------------------- Figures 8–11
def _gm_vs_portals(
    method: str, y_attr: str, per_decade: int, msg_bytes: int,
    lo: float, hi: float,
    executor: Optional[SweepExecutor] = None,
) -> List[Curve]:
    grid = log_intervals(lo, hi, per_decade)
    curves = []
    for system in (gm_system(), portals_system()):
        if method == "polling":
            series = polling_sweep(system, msg_bytes, grid, executor=executor)
            x_attr = "poll_interval_iters"
        else:
            series = pww_sweep(system, msg_bytes, grid, executor=executor)
            x_attr = "work_interval_iters"
        curves.append(Curve(system.name, series.xs(x_attr), series.xs(y_attr)))
    return curves


def fig08(per_decade: int = 2, msg_bytes: int = 100 * 1024,
          executor: Optional[SweepExecutor] = None) -> FigureData:
    """Polling bandwidth: GM vs Portals."""
    return FigureData(
        "fig08", "Polling Method: Bandwidth for GM and Portals",
        "Poll Interval (loop iterations)", "Bandwidth (MB/s)",
        _gm_vs_portals("polling", "bandwidth_MBps", per_decade, msg_bytes,
                       1e1, 1e8, executor=executor),
        notes="GM (OS-bypass, no interrupts/copies) sustains significantly "
              "higher bandwidth than kernel Portals on identical hardware.",
    )


def fig09(per_decade: int = 2, msg_bytes: int = 100 * 1024,
          executor: Optional[SweepExecutor] = None) -> FigureData:
    """PWW bandwidth: GM vs Portals."""
    return FigureData(
        "fig09", "PWW Method: Bandwidth for GM and Portals",
        "Work Interval (loop iterations)", "Bandwidth (MB/s)",
        _gm_vs_portals("pww", "bandwidth_MBps", per_decade, msg_bytes,
                       1e4, 1e7, executor=executor),
        notes="GM wins at small work intervals; curves converge once the "
              "work interval dominates the cycle.",
    )


def fig10(per_decade: int = 2, msg_bytes: int = 100 * 1024,
          executor: Optional[SweepExecutor] = None) -> FigureData:
    """PWW average post time per message: GM vs Portals."""
    curves = _gm_vs_portals("pww", "post_per_msg_s", per_decade, msg_bytes,
                            1e4, 1e7, executor=executor)
    for c in curves:
        c.y = [v * 1e6 for v in c.y]
    return FigureData(
        "fig10", "PWW Method: Average Post Time (100 KB)",
        "Work Interval (loop iterations)", "Time to Post (us)", curves,
        notes="Portals posts trap into the kernel; GM posts are user-level "
              "descriptor writes.",
    )


def fig11(per_decade: int = 2, msg_bytes: int = 100 * 1024,
          executor: Optional[SweepExecutor] = None) -> FigureData:
    """PWW average wait time: GM vs Portals (the offload signature)."""
    curves = _gm_vs_portals("pww", "wait_s", per_decade, msg_bytes, 1e4, 1e7,
                            executor=executor)
    for c in curves:
        c.y = [v * 1e6 for v in c.y]
    return FigureData(
        "fig11", "PWW Method: Average Wait Time (100 KB)",
        "Work Interval (loop iterations)", "Time Per Message (us)", curves,
        notes="Given a large enough work interval Portals virtually completes "
              "messaging (application offload) whereas GM does not.",
    )


# ------------------------------------------------------------- Figures 12–13
def _overhead_curves(system: SystemConfig, msg_bytes: int,
                     grid: Sequence[int],
                     executor: Optional[SweepExecutor] = None) -> List[Curve]:
    series = pww_sweep(system, msg_bytes, grid, executor=executor)
    xs = series.xs("work_interval_iters")
    return [
        Curve("Work with MH", xs, [p.work_s * 1e6 for p in series]),
        Curve("Work Only", xs, [p.work_dry_s * 1e6 for p in series]),
    ]


_LINEAR_GRID = tuple(range(25_000, 500_001, 47_500))


def fig12(msg_bytes: int = 100 * 1024,
          grid: Sequence[int] = _LINEAR_GRID,
          executor: Optional[SweepExecutor] = None) -> FigureData:
    """PWW CPU overhead for Portals: work-phase time with vs without
    message handling."""
    return FigureData(
        "fig12", "PWW Method: CPU Overhead for Portals",
        "Work Interval (loop iterations)", "Average Time Per Message (us)",
        _overhead_curves(portals_system(), msg_bytes, grid, executor=executor),
        xscale="linear",
        notes="The gap is the overhead of interrupts processing Portals "
              "messages during the work phase.",
    )


def fig13(msg_bytes: int = 100 * 1024,
          grid: Sequence[int] = _LINEAR_GRID,
          executor: Optional[SweepExecutor] = None) -> FigureData:
    """PWW CPU overhead for GM: no gap (message handling is blocked)."""
    return FigureData(
        "fig13", "PWW Method: CPU Overhead for GM",
        "Work Interval (loop iterations)", "Average Time Per Message (us)",
        _overhead_curves(gm_system(), msg_bytes, grid, executor=executor),
        xscale="linear",
        notes="Work takes the same time with or without communication: GM "
              "steals no cycles — but also moves no data — during the work "
              "phase.",
    )


# ------------------------------------------------------------- Figures 14–17
def _bw_vs_avail(system: SystemConfig, sizes: Sequence[int],
                 per_decade: int,
                 executor: Optional[SweepExecutor] = None) -> List[Curve]:
    grid = log_intervals(1e1, 1e8, per_decade)
    curves = []
    for size_bytes in sizes:
        series = polling_sweep(system, size_bytes, grid, executor=executor)
        curves.append(Curve(
            _size_label(size_bytes),
            series.xs("availability"),
            series.xs("bandwidth_MBps"),
        ))
    return curves


def fig14(per_decade: int = 2, sizes: Sequence[int] = PAPER_SIZES,
          executor: Optional[SweepExecutor] = None) -> FigureData:
    """Polling: bandwidth vs availability for GM."""
    return FigureData(
        "fig14", "Polling Method: Bandwidth Versus CPU Overhead for GM",
        "CPU Available to User (fraction of time)", "Bandwidth (MB/s)",
        _bw_vs_avail(gm_system(), sizes, per_decade, executor=executor),
        xscale="linear",
        notes="Maximum sustained bandwidth with virtually all CPU cycles "
              "left to the application — except 10 KB, whose eager sends "
              "cost ~45 µs of host CPU each.",
    )


def fig15(per_decade: int = 2, sizes: Sequence[int] = PAPER_SIZES,
          executor: Optional[SweepExecutor] = None) -> FigureData:
    """Polling: bandwidth vs availability for Portals."""
    return FigureData(
        "fig15", "Polling Method: Bandwidth Versus CPU Overhead for Portals",
        "CPU Available to User (fraction of time)", "Bandwidth (MB/s)",
        _bw_vs_avail(portals_system(), sizes, per_decade, executor=executor),
        xscale="linear",
        notes="Communication overhead restricts maximum sustained bandwidth "
              "to the lower ranges of CPU availability.",
    )


def fig16(per_decade: int = 2, msg_bytes: int = 100 * 1024,
          executor: Optional[SweepExecutor] = None) -> FigureData:
    """Polling vs PWW bandwidth-availability trade-off for GM."""
    system = gm_system()
    poll = polling_sweep(system, msg_bytes, log_intervals(1e1, 1e8, per_decade),
                         executor=executor)
    pww = pww_sweep(system, msg_bytes, log_intervals(1e3, 1e8, per_decade),
                    executor=executor)
    return FigureData(
        "fig16", "Polling and PWW Method: Bandwidth for GM",
        "CPU Available to User (fraction of time)", "Bandwidth (MB/s)",
        [
            Curve("Poll", poll.xs("availability"), poll.xs("bandwidth_MBps")),
            Curve("PWW", pww.xs("availability"), pww.xs("bandwidth_MBps")),
        ],
        xscale="linear",
        notes="Without application offload, PWW bandwidth collapses as "
              "availability rises; polling sustains it.",
    )


def fig17(per_decade: int = 2, msg_bytes: int = 100 * 1024,
          executor: Optional[SweepExecutor] = None) -> FigureData:
    """Fig 16 plus the PWW + MPI_Test variant (§4.3)."""
    base = fig16(per_decade, msg_bytes, executor=executor)
    system = gm_system()
    test_cfg = PwwConfig(msg_bytes=msg_bytes, tests_in_work=1)
    pww_t = pww_sweep(system, msg_bytes, log_intervals(1e3, 1e8, per_decade),
                      base=test_cfg, executor=executor)
    curves = [base.curve("Poll"),
              Curve("PWW + Test", pww_t.xs("availability"),
                    pww_t.xs("bandwidth_MBps")),
              base.curve("PWW")]
    return FigureData(
        "fig17", "Polling and Modified PWW Method: Bandwidth for GM",
        "CPU Available to User (fraction of time)", "Bandwidth (MB/s)",
        curves,
        xscale="linear",
        notes="One MPI_Test inserted early in the work phase lets the "
              "library launch the rendezvous data transfer, extending "
              "sustained bandwidth into higher availabilities.",
    )


#: All figure generators, keyed by id.
ALL_FIGURES: Dict[str, Callable[..., FigureData]] = {
    "fig04": fig04, "fig05": fig05, "fig06": fig06, "fig07": fig07,
    "fig08": fig08, "fig09": fig09, "fig10": fig10, "fig11": fig11,
    "fig12": fig12, "fig13": fig13, "fig14": fig14, "fig15": fig15,
    "fig16": fig16, "fig17": fig17,
}
