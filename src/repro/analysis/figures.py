"""Per-figure generators: thin wrappers over the declarative registry.

Each ``figNN`` function regenerates the corresponding paper figure by
interpreting its :data:`~repro.analysis.registry.FIGURE_SPECS` entry —
the axes, curve rows, and notes live in the table, not here.  The
wrappers keep the historical call signatures (``per_decade``, ``sizes``,
``msg_bytes``, ``grid``) for drivers, tests, and benchmarks.
``per_decade`` trades resolution for runtime (the paper's plots have ~8
points per decade; 2 is enough to reproduce every shape).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from ..core.executor import SweepExecutor
from ..core.suite import PAPER_SIZES
from .registry import (FIGURE_SPECS, Curve, FigureData, _LINEAR_GRID,
                       build_figure)

__all__ = [
    "ALL_FIGURES", "Curve", "FigureData",
    "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
]


def _per_size_fig(fig_id: str) -> Callable[..., FigureData]:
    def generate(per_decade: int = 2, sizes: Sequence[int] = PAPER_SIZES,
                 executor: Optional[SweepExecutor] = None) -> FigureData:
        return build_figure(FIGURE_SPECS[fig_id], per_decade=per_decade,
                            sizes=sizes, executor=executor)
    generate.__name__ = fig_id
    generate.__qualname__ = fig_id
    generate.__doc__ = FIGURE_SPECS[fig_id].title
    return generate


def _per_system_fig(fig_id: str) -> Callable[..., FigureData]:
    def generate(per_decade: int = 2, msg_bytes: int = 100 * 1024,
                 executor: Optional[SweepExecutor] = None) -> FigureData:
        return build_figure(FIGURE_SPECS[fig_id], per_decade=per_decade,
                            msg_bytes=msg_bytes, executor=executor)
    generate.__name__ = fig_id
    generate.__qualname__ = fig_id
    generate.__doc__ = FIGURE_SPECS[fig_id].title
    return generate


def _linear_grid_fig(fig_id: str) -> Callable[..., FigureData]:
    def generate(msg_bytes: int = 100 * 1024,
                 grid: Sequence[int] = _LINEAR_GRID,
                 executor: Optional[SweepExecutor] = None) -> FigureData:
        return build_figure(FIGURE_SPECS[fig_id], msg_bytes=msg_bytes,
                            grid=grid, executor=executor)
    generate.__name__ = fig_id
    generate.__qualname__ = fig_id
    generate.__doc__ = FIGURE_SPECS[fig_id].title
    return generate


fig04 = _per_size_fig("fig04")
fig05 = _per_size_fig("fig05")
fig06 = _per_size_fig("fig06")
fig07 = _per_size_fig("fig07")
fig08 = _per_system_fig("fig08")
fig09 = _per_system_fig("fig09")
fig10 = _per_system_fig("fig10")
fig11 = _per_system_fig("fig11")
fig12 = _linear_grid_fig("fig12")
fig13 = _linear_grid_fig("fig13")
fig14 = _per_size_fig("fig14")
fig15 = _per_size_fig("fig15")
fig16 = _per_system_fig("fig16")
fig17 = _per_system_fig("fig17")

#: All paper-figure generators, keyed by id.  Registry-only variants
#: (``fig04_ci`` …) are resolved by ``repro.analysis.report.run_figure``
#: straight from ``FIGURE_SPECS`` and deliberately kept out of this
#: default report grid.
ALL_FIGURES: Dict[str, Callable[..., FigureData]] = {
    "fig04": fig04, "fig05": fig05, "fig06": fig06, "fig07": fig07,
    "fig08": fig08, "fig09": fig09, "fig10": fig10, "fig11": fig11,
    "fig12": fig12, "fig13": fig13, "fig14": fig14, "fig15": fig15,
    "fig16": fig16, "fig17": fig17,
}
