"""Declarative figure registry: every figure is a table entry.

The 17 bespoke ``figNN`` generator functions collapsed into data: a
:class:`FigureSpec` names the axes, titles, and notes, and a tuple of
:class:`CurveSpec` rows names each plotted line (method, system, sweep
bounds, y attribute, unit).  :func:`build_figure` interprets a spec
against runtime knobs (``per_decade``, ``sizes``, ``msg_bytes``,
``grid``, ``rank_counts``) — the legacy functions in
:mod:`repro.analysis.figures` and :mod:`repro.analysis.scaling` are thin
wrappers over their table entries, so paper figures, scaling figures,
and CI-band variants (``fig04_ci``, ``fig11_ci``) all live in one
:data:`FIGURE_SPECS` table.

Replication flows through transparently: when the executing
:class:`~repro.core.executor.SweepExecutor` replicates points
(``reps > 1``), the aggregated points carry ``replication`` summaries
and every curve picks up ``y_lo``/``y_hi`` confidence bands.  A spec can
also *demand* replication (``reps``/``ci_width`` fields), which is how
the ``*_ci`` registry variants exist without any CLI flags.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from ..config import SystemConfig, gm_system, portals_system
from ..core.executor import PointTask, SweepExecutor, current_executor
from ..core.polling import PollingConfig
from ..core.pww import PwwConfig
from ..core.results import Series
from ..core.suite import PAPER_SIZES
from ..core.sweep import log_intervals, polling_sweep, pww_sweep
from ..patterns.config import PatternConfig
from ..patterns.results import PatternPoint
from ..stats import replication_interval

KB = 1024

#: Work-interval grid of the linear-axis overhead figures (12–13).
_LINEAR_GRID = tuple(range(25_000, 500_001, 47_500))

#: Default rank-count axis: two-node (the paper's world) up to a
#: two-edge-switch fat-tree's worth.
DEFAULT_RANK_COUNTS = (2, 4, 8, 16)

_SYSTEMS: Dict[str, Callable[[], SystemConfig]] = {
    "gm": gm_system,
    "portals": portals_system,
}

#: Each method's natural sweep axis (the default ``x_attr``).
_SWEEP_AXIS = {"polling": "poll_interval_iters", "pww": "work_interval_iters"}


# -------------------------------------------------------------------- data
@dataclass
class Curve:
    """One plotted line, optionally with a confidence band."""

    label: str
    x: List[float]
    y: List[float]
    #: Lower/upper CI band (same length as ``y``) when the points behind
    #: this curve were replicated; ``None`` (and omitted from exports)
    #: for single-shot curves, keeping seed exports byte-identical.
    y_lo: Optional[List[float]] = None
    y_hi: Optional[List[float]] = None

    def to_dict(self) -> dict:
        d: Dict[str, Any] = {"label": self.label, "x": self.x, "y": self.y}
        if self.y_lo is not None and self.y_hi is not None:
            d["y_lo"] = self.y_lo
            d["y_hi"] = self.y_hi
        return d


@dataclass
class FigureData:
    """Data behind one paper figure."""

    fig_id: str
    title: str
    xlabel: str
    ylabel: str
    curves: List[Curve]
    xscale: str = "log"
    yscale: str = "linear"
    notes: str = ""

    def curve(self, label: str) -> Curve:
        """Look a curve up by its label."""
        for c in self.curves:
            if c.label == label:
                return c
        raise KeyError(f"{self.fig_id}: no curve {label!r}")

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "fig_id": self.fig_id,
            "title": self.title,
            "xlabel": self.xlabel,
            "ylabel": self.ylabel,
            "xscale": self.xscale,
            "yscale": self.yscale,
            "notes": self.notes,
            "curves": [c.to_dict() for c in self.curves],
        }


# -------------------------------------------------------------------- specs
@dataclass(frozen=True)
class CurveSpec:
    """One registry row: how to produce one (or one-per-size) curve."""

    method: str                 # "polling" | "pww" | "pattern"
    system: str = "portals"     # key into _SYSTEMS
    y_attr: str = "availability"
    x_attr: str = ""            # "" → the method's sweep axis
    label: str = ""             # "" → size label (fan_sizes) or system name
    lo: float = 0.0             # log-grid bounds; 0.0 → runtime ``grid``
    hi: float = 0.0
    y_unit: float = 1.0         # y scale factor (1e6 → microseconds)
    fan_sizes: bool = False     # fan out over the ``sizes`` argument
    tests_in_work: int = 0      # PWW work-phase MPI_Test count (fig 17)
    pattern: str = ""           # pattern method: pattern name
    topology: str = "crossbar"  # pattern method: network topology


@dataclass(frozen=True)
class FigureSpec:
    """One figure: axes + notes + the curve rows that fill it."""

    fig_id: str
    title: str
    xlabel: str
    ylabel: str
    curves: Tuple[CurveSpec, ...]
    xscale: str = "log"
    yscale: str = "linear"
    #: May reference ``{msg_kb}`` / ``{work_interval_iters}`` (pattern
    #: figures format their notes from the runtime knobs).
    notes: str = ""
    #: Claim-checker id (``""`` → ``fig_id``); lets CI-band variants
    #: reuse their base figure's claims.
    claims_id: str = ""
    #: Registry-level replication demands (``None`` → whatever the
    #: executing executor is configured for).
    reps: Optional[int] = None
    ci_width: Optional[float] = None


# ------------------------------------------------------------ construction
class _ReplicationOverride:
    """Executor facade forcing ``reps``/``ci_width`` onto every ``run``.

    Duck-typed stand-in handed to the sweep drivers (they only call
    ``run``); violations/disagreements still land on the wrapped
    executor.
    """

    def __init__(self, inner: SweepExecutor, reps: Optional[int],
                 ci_width: Optional[float]) -> None:
        self.inner = inner
        self.reps = inner.reps if reps is None else reps
        self.ci_width = inner.ci_width if ci_width is None else ci_width

    def run(self, tasks: Sequence[PointTask]) -> List[Any]:
        return self.inner.run(tasks, reps=self.reps, ci_width=self.ci_width)


def _size_label(nbytes: int) -> str:
    return f"{nbytes // 1024} KB"


def _band_values(
    points: Sequence[Any], metric: str, unit: float
) -> Tuple[Optional[List[float]], Optional[List[float]]]:
    """Per-point CI band for ``metric``, or ``(None, None)`` when any
    point lacks a replication summary (single-shot curve)."""
    los: List[float] = []
    his: List[float] = []
    for p in points:
        ci = replication_interval(getattr(p, "replication", None), metric)
        if ci is None:
            return None, None
        lo, hi = ci
        if unit != 1.0:
            lo, hi = lo * unit, hi * unit
        los.append(lo)
        his.append(hi)
    return los, his


def pattern_tasks(
    system: SystemConfig,
    pattern: str,
    rank_counts: Sequence[int],
    topology: str = "crossbar",
    base: Optional[PatternConfig] = None,
) -> List[PointTask]:
    """Task records for a rank-count sweep of one pattern."""
    base = base or PatternConfig()
    return [
        PointTask(
            "pattern",
            system,
            dataclasses.replace(base, pattern=pattern, ranks=int(n),
                                topology=topology),
        )
        for n in rank_counts
    ]


def pattern_scaling(
    system: SystemConfig,
    pattern: str,
    rank_counts: Sequence[int],
    topology: str = "crossbar",
    base: Optional[PatternConfig] = None,
    label: Optional[str] = None,
    executor: Optional[SweepExecutor] = None,
) -> Curve:
    """Availability-vs-ranks curve for one (system, topology) pair."""
    ex = current_executor(executor)
    points: List[PatternPoint] = ex.run(
        pattern_tasks(system, pattern, rank_counts, topology, base)
    )
    y_lo, y_hi = _band_values(points, "availability", 1.0)
    return Curve(
        label=label or f"{system.name} ({topology})",
        x=[float(n) for n in rank_counts],
        y=[pt.availability for pt in points],
        y_lo=y_lo,
        y_hi=y_hi,
    )


def _sweep_curves(
    cs: CurveSpec,
    per_decade: int,
    sizes: Sequence[int],
    msg_bytes: int,
    grid: Sequence[int],
    executor: Any,
) -> List[Curve]:
    """Curves for one polling/pww registry row (1, or one per size)."""
    system = _SYSTEMS[cs.system]()
    intervals = (list(grid) if cs.lo == 0.0
                 else log_intervals(cs.lo, cs.hi, per_decade))
    sweep = polling_sweep if cs.method == "polling" else pww_sweep
    x_attr = cs.x_attr or _SWEEP_AXIS[cs.method]

    def one(size_bytes: int, label: str) -> Curve:
        base: Union[None, PollingConfig, PwwConfig] = None
        if cs.tests_in_work:
            base = PwwConfig(msg_bytes=size_bytes,
                             tests_in_work=cs.tests_in_work)
        series: Series = sweep(system, size_bytes, intervals, base=base,
                               executor=executor)
        ys = series.xs(cs.y_attr)
        if cs.y_unit != 1.0:
            ys = [v * cs.y_unit for v in ys]
        y_lo, y_hi = _band_values(series.points, cs.y_attr, cs.y_unit)
        return Curve(label, series.xs(x_attr), ys, y_lo=y_lo, y_hi=y_hi)

    if cs.fan_sizes:
        return [one(nbytes, cs.label or _size_label(nbytes))
                for nbytes in sizes]
    return [one(msg_bytes, cs.label or system.name)]


def build_figure(
    spec: FigureSpec,
    per_decade: int = 2,
    sizes: Optional[Sequence[int]] = None,
    msg_bytes: int = 100 * KB,
    grid: Sequence[int] = _LINEAR_GRID,
    rank_counts: Sequence[int] = DEFAULT_RANK_COUNTS,
    work_interval_iters: int = 1_000_000,
    executor: Optional[SweepExecutor] = None,
    reps: Optional[int] = None,
    ci_width: Optional[float] = None,
) -> FigureData:
    """Interpret one registry entry against the runtime knobs.

    ``reps``/``ci_width`` (argument > spec field > executor setting)
    force replicated measurement; bands appear on every curve whose
    points carry replication summaries.
    """
    eff_reps = reps if reps is not None else spec.reps
    eff_ci = ci_width if ci_width is not None else spec.ci_width
    run_executor: Any = executor
    if eff_reps is not None or eff_ci is not None:
        run_executor = _ReplicationOverride(current_executor(executor),
                                            eff_reps, eff_ci)
    curves: List[Curve] = []
    has_pattern = False
    for cs in spec.curves:
        if cs.method == "pattern":
            has_pattern = True
            base = PatternConfig(msg_bytes=msg_bytes,
                                 work_interval_iters=work_interval_iters)
            curves.append(pattern_scaling(
                _SYSTEMS[cs.system](), cs.pattern, rank_counts,
                cs.topology, base, label=cs.label or None,
                executor=run_executor,
            ))
        else:
            curves.extend(_sweep_curves(
                cs, per_decade, sizes if sizes is not None else PAPER_SIZES,
                msg_bytes, grid, run_executor,
            ))
    notes = spec.notes
    if has_pattern and "{" in notes:
        notes = notes.format(msg_kb=msg_bytes // KB,
                             work_interval_iters=work_interval_iters)
    return FigureData(
        fig_id=spec.fig_id,
        title=spec.title,
        xlabel=spec.xlabel,
        ylabel=spec.ylabel,
        curves=curves,
        xscale=spec.xscale,
        yscale=spec.yscale,
        notes=notes,
    )


# ------------------------------------------------------------------ table
_POLL_X = "Poll Interval (loop iterations)"
_WORK_X = "Work Interval (loop iterations)"
_AVAIL_X = "CPU Available to User (fraction of time)"
_AVAIL_Y = "CPU Availability (fraction to user)"
_BW_Y = "Bandwidth (MB/s)"

FIGURE_SPECS: Dict[str, FigureSpec] = {
    "fig04": FigureSpec(
        "fig04", "Polling Method: CPU Availability (Portals)",
        _POLL_X, _AVAIL_Y,
        (CurveSpec("polling", "portals", "availability",
                   lo=1e1, hi=1e8, fan_sizes=True),),
        notes="Low, stable plateau while messages flow (interrupt overhead); "
              "steep climb once the poll interval stalls the message flow.",
    ),
    "fig05": FigureSpec(
        "fig05", "Polling Method: Bandwidth (Portals)",
        _POLL_X, _BW_Y,
        (CurveSpec("polling", "portals", "bandwidth_MBps",
                   lo=1e1, hi=1e8, fan_sizes=True),),
        notes="Plateau of maximum sustained bandwidth, then steep decline "
              "when all in-flight messages complete within one interval.",
    ),
    "fig06": FigureSpec(
        "fig06", "PWW Method: CPU Availability (Portals)",
        _WORK_X, _AVAIL_Y,
        (CurveSpec("pww", "portals", "availability",
                   lo=1e4, hi=1e7, fan_sizes=True),),
        notes="No low plateau: the wait phase suppresses availability until "
              "the work interval fills the delay (paper §4).",
    ),
    "fig07": FigureSpec(
        "fig07", "PWW Method: Bandwidth (Portals)",
        _WORK_X, _BW_Y,
        (CurveSpec("pww", "portals", "bandwidth_MBps",
                   lo=1e3, hi=1e8, fan_sizes=True),),
        notes="More gradual decline than the polling method.",
    ),
    "fig08": FigureSpec(
        "fig08", "Polling Method: Bandwidth for GM and Portals",
        _POLL_X, _BW_Y,
        (CurveSpec("polling", "gm", "bandwidth_MBps", lo=1e1, hi=1e8),
         CurveSpec("polling", "portals", "bandwidth_MBps", lo=1e1, hi=1e8)),
        notes="GM (OS-bypass, no interrupts/copies) sustains significantly "
              "higher bandwidth than kernel Portals on identical hardware.",
    ),
    "fig09": FigureSpec(
        "fig09", "PWW Method: Bandwidth for GM and Portals",
        _WORK_X, _BW_Y,
        (CurveSpec("pww", "gm", "bandwidth_MBps", lo=1e4, hi=1e7),
         CurveSpec("pww", "portals", "bandwidth_MBps", lo=1e4, hi=1e7)),
        notes="GM wins at small work intervals; curves converge once the "
              "work interval dominates the cycle.",
    ),
    "fig10": FigureSpec(
        "fig10", "PWW Method: Average Post Time (100 KB)",
        _WORK_X, "Time to Post (us)",
        (CurveSpec("pww", "gm", "post_per_msg_s", lo=1e4, hi=1e7,
                   y_unit=1e6),
         CurveSpec("pww", "portals", "post_per_msg_s", lo=1e4, hi=1e7,
                   y_unit=1e6)),
        notes="Portals posts trap into the kernel; GM posts are user-level "
              "descriptor writes.",
    ),
    "fig11": FigureSpec(
        "fig11", "PWW Method: Average Wait Time (100 KB)",
        _WORK_X, "Time Per Message (us)",
        (CurveSpec("pww", "gm", "wait_s", lo=1e4, hi=1e7, y_unit=1e6),
         CurveSpec("pww", "portals", "wait_s", lo=1e4, hi=1e7, y_unit=1e6)),
        notes="Given a large enough work interval Portals virtually completes "
              "messaging (application offload) whereas GM does not.",
    ),
    "fig12": FigureSpec(
        "fig12", "PWW Method: CPU Overhead for Portals",
        _WORK_X, "Average Time Per Message (us)",
        (CurveSpec("pww", "portals", "work_s", label="Work with MH",
                   y_unit=1e6),
         CurveSpec("pww", "portals", "work_dry_s", label="Work Only",
                   y_unit=1e6)),
        xscale="linear",
        notes="The gap is the overhead of interrupts processing Portals "
              "messages during the work phase.",
    ),
    "fig13": FigureSpec(
        "fig13", "PWW Method: CPU Overhead for GM",
        _WORK_X, "Average Time Per Message (us)",
        (CurveSpec("pww", "gm", "work_s", label="Work with MH", y_unit=1e6),
         CurveSpec("pww", "gm", "work_dry_s", label="Work Only",
                   y_unit=1e6)),
        xscale="linear",
        notes="Work takes the same time with or without communication: GM "
              "steals no cycles — but also moves no data — during the work "
              "phase.",
    ),
    "fig14": FigureSpec(
        "fig14", "Polling Method: Bandwidth Versus CPU Overhead for GM",
        _AVAIL_X, _BW_Y,
        (CurveSpec("polling", "gm", "bandwidth_MBps", x_attr="availability",
                   lo=1e1, hi=1e8, fan_sizes=True),),
        xscale="linear",
        notes="Maximum sustained bandwidth with virtually all CPU cycles "
              "left to the application — except 10 KB, whose eager sends "
              "cost ~45 µs of host CPU each.",
    ),
    "fig15": FigureSpec(
        "fig15", "Polling Method: Bandwidth Versus CPU Overhead for Portals",
        _AVAIL_X, _BW_Y,
        (CurveSpec("polling", "portals", "bandwidth_MBps",
                   x_attr="availability", lo=1e1, hi=1e8, fan_sizes=True),),
        xscale="linear",
        notes="Communication overhead restricts maximum sustained bandwidth "
              "to the lower ranges of CPU availability.",
    ),
    "fig16": FigureSpec(
        "fig16", "Polling and PWW Method: Bandwidth for GM",
        _AVAIL_X, _BW_Y,
        (CurveSpec("polling", "gm", "bandwidth_MBps", x_attr="availability",
                   label="Poll", lo=1e1, hi=1e8),
         CurveSpec("pww", "gm", "bandwidth_MBps", x_attr="availability",
                   label="PWW", lo=1e3, hi=1e8)),
        xscale="linear",
        notes="Without application offload, PWW bandwidth collapses as "
              "availability rises; polling sustains it.",
    ),
    "fig17": FigureSpec(
        "fig17", "Polling and Modified PWW Method: Bandwidth for GM",
        _AVAIL_X, _BW_Y,
        (CurveSpec("polling", "gm", "bandwidth_MBps", x_attr="availability",
                   label="Poll", lo=1e1, hi=1e8),
         CurveSpec("pww", "gm", "bandwidth_MBps", x_attr="availability",
                   label="PWW + Test", lo=1e3, hi=1e8, tests_in_work=1),
         CurveSpec("pww", "gm", "bandwidth_MBps", x_attr="availability",
                   label="PWW", lo=1e3, hi=1e8)),
        xscale="linear",
        notes="One MPI_Test inserted early in the work phase lets the "
              "library launch the rendezvous data transfer, extending "
              "sustained bandwidth into higher availabilities.",
    ),
    "scale_halo": FigureSpec(
        "scale_halo", "Halo-exchange availability scaling",
        "ranks", "CPU availability (median across ranks)",
        (CurveSpec("pattern", "gm", pattern="halo2d", topology="crossbar"),
         CurveSpec("pattern", "gm", pattern="halo2d", topology="fattree"),
         CurveSpec("pattern", "portals", pattern="halo2d",
                   topology="crossbar"),
         CurveSpec("pattern", "portals", pattern="halo2d",
                   topology="fattree")),
        notes="pattern=halo2d, {msg_kb} KB, "
              "work interval {work_interval_iters} iters",
    ),
    "scale_allreduce": FigureSpec(
        "scale_allreduce", "Allreduce availability scaling",
        "ranks", "CPU availability (median across ranks)",
        (CurveSpec("pattern", "gm", pattern="allreduce",
                   topology="crossbar"),
         CurveSpec("pattern", "gm", pattern="allreduce", topology="fattree"),
         CurveSpec("pattern", "portals", pattern="allreduce",
                   topology="crossbar"),
         CurveSpec("pattern", "portals", pattern="allreduce",
                   topology="fattree")),
        notes="pattern=allreduce, {msg_kb} KB, "
              "work interval {work_interval_iters} iters",
    ),
}

# CI-band variants: the same table rows, replicated measurement demanded
# at the registry level.  Claims are inherited from the base figure.
FIGURE_SPECS["fig04_ci"] = dataclasses.replace(
    FIGURE_SPECS["fig04"], fig_id="fig04_ci", claims_id="fig04",
    reps=5, ci_width=0.02,
)
FIGURE_SPECS["fig11_ci"] = dataclasses.replace(
    FIGURE_SPECS["fig11"], fig_id="fig11_ci", claims_id="fig11",
    reps=5, ci_width=0.02,
)
