"""Cross-system comparison tables.

The paper prints no numeric tables, but its §4 analysis reads like one:
latency, peak bandwidth, availability at peak, overhead, offload verdict,
post/wait costs.  :func:`system_comparison` computes that table for any set
of systems — the "is my new NIC design worth it?" summary a COMB user
actually wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..baselines.pingpong import run_pingpong
from ..config import SystemConfig
from ..core.polling import PollingConfig, run_polling
from ..core.suite import CombSuite
from ..sim.units import to_mbps, to_usec


@dataclass
class SystemSummary:
    """One row of the comparison table."""

    system: str
    #: Half round-trip for a zero-byte message.
    latency0_s: float
    #: Polling-method aggregate bandwidth at a plateau interval (100 KB).
    peak_bandwidth_Bps: float
    #: CPU availability at that plateau point.
    availability_at_peak: float
    #: PWW work-phase stretch at a long interval (communication overhead).
    overhead_s: float
    #: PWW post cost per message.
    post_per_msg_s: float
    #: PWW residual wait at a long work interval.
    wait_long_s: float
    #: Application offload verdict.
    offloaded: bool

    def row(self) -> List[str]:
        """Formatted table cells."""
        return [
            self.system,
            f"{to_usec(self.latency0_s):7.1f}",
            f"{to_mbps(self.peak_bandwidth_Bps):7.1f}",
            f"{self.availability_at_peak:6.3f}",
            f"{to_usec(self.overhead_s):8.1f}",
            f"{to_usec(self.post_per_msg_s):7.1f}",
            f"{to_usec(self.wait_long_s):8.1f}",
            "yes" if self.offloaded else "NO",
        ]


HEADERS = [
    "system", "lat0(us)", "bw(MB/s)", "avail", "ovh(us)", "post(us)",
    "wait(us)", "offload",
]


def summarize_system(
    system: SystemConfig,
    msg_bytes: int = 100 * 1024,
    plateau_interval_iters: int = 1_000,
) -> SystemSummary:
    """Compute one comparison row (a handful of short runs)."""
    suite = CombSuite(system)
    ping = run_pingpong(system, 0, repeats=8, warmup_msgs=2)
    plateau = run_polling(system, PollingConfig(
        msg_bytes=msg_bytes, poll_interval_iters=plateau_interval_iters,
        measure_s=0.04,
    ))
    verdict = suite.offload_verdict(msg_bytes=msg_bytes)
    long_pww = suite.pww(
        msg_bytes=msg_bytes, work_interval_iters=10_000_000,
        batches=4, warmup_batches=1,
    )
    return SystemSummary(
        system=system.name,
        latency0_s=ping.latency_s,
        peak_bandwidth_Bps=plateau.bandwidth_Bps,
        availability_at_peak=plateau.availability,
        overhead_s=long_pww.overhead_s,
        post_per_msg_s=long_pww.post_per_msg_s,
        wait_long_s=long_pww.wait_s,
        offloaded=verdict.offloaded,
    )


def system_comparison(
    systems: Sequence[SystemConfig], msg_bytes: int = 100 * 1024
) -> List[SystemSummary]:
    """Comparison rows for several systems."""
    return [summarize_system(s, msg_bytes=msg_bytes) for s in systems]


def format_table(rows: Sequence[SystemSummary]) -> str:
    """Render rows as an aligned text table."""
    cells = [HEADERS] + [r.row() for r in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(HEADERS))]
    lines = []
    for j, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
