"""CSV/JSON export of regenerated figures."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Union

from .figures import FigureData


def write_csv(fig: FigureData, path: Union[str, Path]) -> Path:
    """Write one figure as a long-format CSV (curve, x, y)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["curve", fig.xlabel, fig.ylabel])
        for curve in fig.curves:
            for x, y in zip(curve.x, curve.y):
                writer.writerow([curve.label, repr(x), repr(y)])
    return path


def write_json(fig: FigureData, path: Union[str, Path]) -> Path:
    """Write one figure as JSON (all metadata included)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(fig.to_dict(), indent=2))
    return path


def export_figures(
    figs: Iterable[FigureData],
    directory: Union[str, Path],
    svg: bool = True,
) -> list:
    """Write CSV + JSON (+ browser-viewable SVG) per figure."""
    from .svg_plot import write_svg

    directory = Path(directory)
    written = []
    for fig in figs:
        written.append(write_csv(fig, directory / f"{fig.fig_id}.csv"))
        written.append(write_json(fig, directory / f"{fig.fig_id}.json"))
        if svg:
            written.append(write_svg(fig, directory / f"{fig.fig_id}.svg"))
    return written
