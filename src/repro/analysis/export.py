"""CSV/JSON export of regenerated figures."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Union

from .figures import FigureData


def write_csv(fig: FigureData, path: Union[str, Path]) -> Path:
    """Write one figure as a long-format CSV (curve, x, y).

    Curves carrying replication CI bands get two extra columns
    (``y_lo``/``y_hi``); band-free figures keep the historical 3-column
    layout byte for byte.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    banded = any(c.y_lo is not None and c.y_hi is not None
                 for c in fig.curves)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        header = ["curve", fig.xlabel, fig.ylabel]
        if banded:
            header += ["y_lo", "y_hi"]
        writer.writerow(header)
        for curve in fig.curves:
            has_band = curve.y_lo is not None and curve.y_hi is not None
            for i, (x, y) in enumerate(zip(curve.x, curve.y)):
                row = [curve.label, repr(x), repr(y)]
                if banded:
                    if has_band:
                        row += [repr(curve.y_lo[i]), repr(curve.y_hi[i])]
                    else:
                        row += ["", ""]
                writer.writerow(row)
    return path


def write_json(fig: FigureData, path: Union[str, Path]) -> Path:
    """Write one figure as JSON (all metadata included)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(fig.to_dict(), indent=2))
    return path


def export_figures(
    figs: Iterable[FigureData],
    directory: Union[str, Path],
    svg: bool = True,
) -> list:
    """Write CSV + JSON (+ browser-viewable SVG) per figure."""
    from .svg_plot import write_svg

    directory = Path(directory)
    written = []
    for fig in figs:
        written.append(write_csv(fig, directory / f"{fig.fig_id}.csv"))
        written.append(write_json(fig, directory / f"{fig.fig_id}.json"))
        if svg:
            written.append(write_svg(fig, directory / f"{fig.fig_id}.svg"))
    return written
