"""Machine-checkable versions of the paper's qualitative claims.

Each checker consumes the regenerated :class:`FigureData` of its figure and
verifies the paper's statement about the *shape* (who wins, where knees
fall, what collapses).  The integration tests and the EXPERIMENTS.md report
both run these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from .figures import FigureData


@dataclass
class ClaimResult:
    """Outcome of checking one claim."""

    fig_id: str
    claim: str
    ok: bool
    detail: str


def _first_last(curve) -> tuple:
    return curve.y[0], curve.y[-1]


def check_fig04(fig: FigureData) -> List[ClaimResult]:
    """Availability: low stable plateau, then a steep rise towards ~1."""
    out = []
    for c in fig.curves:
        lo, hi = c.y[0], max(c.y)
        ok = lo < 0.45 and hi > 0.9
        out.append(ClaimResult(
            "fig04",
            f"{c.label}: availability rises from a low plateau to ~1",
            ok, f"start={lo:.3f}, max={hi:.3f}",
        ))
    return out


def check_fig05(fig: FigureData) -> List[ClaimResult]:
    """Bandwidth: plateau then steep decline; plateau near 50 MB/s."""
    out = []
    for c in fig.curves:
        peak, tail = max(c.y), c.y[-1]
        out.append(ClaimResult(
            "fig05",
            f"{c.label}: plateau then decline (tail < 20% of peak)",
            tail < 0.2 * peak, f"peak={peak:.1f} MB/s, tail={tail:.1f} MB/s",
        ))
    big = [c for c in fig.curves if c.label in ("100 KB", "300 KB")]
    for c in big:
        # The plateau is the small-interval region (before the knee, and
        # before the batched-reply bump near it).
        plateau_vals = [y for x, y in zip(c.x, c.y) if x <= 1e4]
        plateau = float(np.median(plateau_vals)) if plateau_vals else 0.0
        out.append(ClaimResult(
            "fig05", f"{c.label}: plateau in the paper's 35–60 MB/s band",
            35 <= plateau <= 60, f"plateau={plateau:.1f} MB/s",
        ))
    return out


def check_fig06(fig: FigureData) -> List[ClaimResult]:
    """Availability rises monotonically-ish; no initial flat plateau."""
    out = []
    for c in fig.curves:
        ok = c.y[0] < 0.2 and max(c.y) > 0.8 and c.y[-1] > 0.6
        out.append(ClaimResult(
            "fig06", f"{c.label}: wait suppresses availability at small work",
            ok, f"start={c.y[0]:.3f}, max={max(c.y):.3f}",
        ))
    return out


def check_fig07(fig: FigureData) -> List[ClaimResult]:
    """Bandwidth declines as the work interval grows."""
    out = []
    for c in fig.curves:
        out.append(ClaimResult(
            "fig07", f"{c.label}: bandwidth declines with work interval",
            c.y[-1] < 0.25 * max(c.y),
            f"peak={max(c.y):.1f}, tail={c.y[-1]:.1f} MB/s",
        ))
    return out


def check_fig08(fig: FigureData) -> List[ClaimResult]:
    """GM plateau significantly above Portals (≈88 vs ≈50 MB/s)."""
    gm, po = max(fig.curve("GM").y), max(fig.curve("Portals").y)
    return [
        ClaimResult("fig08", "GM bandwidth significantly exceeds Portals",
                    gm > 1.4 * po, f"GM={gm:.1f}, Portals={po:.1f} MB/s"),
        ClaimResult("fig08", "GM plateau in the paper's 80–95 MB/s band",
                    80 <= gm <= 95, f"GM={gm:.1f} MB/s"),
    ]


def check_fig09(fig: FigureData) -> List[ClaimResult]:
    """GM > Portals at small work intervals; curves converge later."""
    gm, po = fig.curve("GM"), fig.curve("Portals")
    small_gap = gm.y[0] > 1.2 * po.y[0]
    tail_close = abs(gm.y[-1] - po.y[-1]) < 0.35 * max(gm.y[-1], po.y[-1], 1e-9)
    return [
        ClaimResult("fig09", "GM wins at small work intervals",
                    small_gap, f"GM={gm.y[0]:.1f}, Portals={po.y[0]:.1f} MB/s"),
        ClaimResult("fig09", "curves converge at large work intervals",
                    tail_close, f"GM={gm.y[-1]:.1f}, Portals={po.y[-1]:.1f} MB/s"),
    ]


def check_fig10(fig: FigureData) -> List[ClaimResult]:
    """GM post times far below Portals (user-level vs kernel trap)."""
    gm = float(np.mean(fig.curve("GM").y))
    po = float(np.mean(fig.curve("Portals").y))
    return [ClaimResult(
        "fig10", "GM significantly outperforms Portals on post time",
        gm * 3 < po, f"GM={gm:.1f} µs, Portals={po:.1f} µs per message",
    )]


def check_fig11(fig: FigureData) -> List[ClaimResult]:
    """Portals wait → ~0 at large work (offload); GM wait stays high."""
    gm, po = fig.curve("GM"), fig.curve("Portals")
    return [
        ClaimResult("fig11", "Portals virtually completes messaging in work",
                    po.y[-1] < 200, f"Portals tail wait={po.y[-1]:.0f} µs"),
        ClaimResult("fig11", "GM does not (no application offload)",
                    gm.y[-1] > 1200, f"GM tail wait={gm.y[-1]:.0f} µs"),
    ]


def check_fig12(fig: FigureData) -> List[ClaimResult]:
    """Portals work-with-MH exceeds work-only (interrupt overhead)."""
    mh = np.asarray(fig.curve("Work with MH").y)
    dry = np.asarray(fig.curve("Work Only").y)
    gap = float(np.mean(mh - dry))
    return [ClaimResult(
        "fig12", "work with message handling takes longer (overhead gap)",
        bool(np.all(mh >= dry)) and gap > 300,
        f"mean gap={gap:.0f} µs",
    )]


def check_fig13(fig: FigureData) -> List[ClaimResult]:
    """GM shows virtually no communication overhead in the work phase."""
    mh = np.asarray(fig.curve("Work with MH").y)
    dry = np.asarray(fig.curve("Work Only").y)
    gap = float(np.max(np.abs(mh - dry)))
    return [ClaimResult(
        "fig13", "work time identical with/without communication",
        gap < 50, f"max gap={gap:.1f} µs",
    )]


def check_fig14(fig: FigureData) -> List[ClaimResult]:
    """GM holds max bandwidth at high availability; 10 KB is the exception."""
    out = []
    for c in fig.curves:
        peak = max(c.y)
        # Highest availability at which ≥90% of peak bandwidth is sustained.
        avail_at_peak = max(
            (a for a, b in zip(c.x, c.y) if b >= 0.9 * peak), default=0.0
        )
        if c.label == "10 KB":
            ok = avail_at_peak < 0.8
            claim = "10 KB: eager sends depress availability at peak bw"
        else:
            ok = avail_at_peak > 0.85
            claim = f"{c.label}: max bandwidth at ≥0.85 availability"
        out.append(ClaimResult("fig14", claim, ok,
                               f"availability at peak={avail_at_peak:.2f}"))
    return out


def check_fig15(fig: FigureData) -> List[ClaimResult]:
    """Portals max bandwidth confined to low availability."""
    out = []
    for c in fig.curves:
        peak = max(c.y)
        avail_at_peak = max(
            (a for a, b in zip(c.x, c.y) if b >= 0.9 * peak), default=0.0
        )
        out.append(ClaimResult(
            "fig15", f"{c.label}: max bandwidth only at low availability",
            avail_at_peak < 0.6, f"availability at peak={avail_at_peak:.2f}",
        ))
    return out


def _bw_at_availability(curve, lo: float, hi: float) -> float:
    vals = [b for a, b in zip(curve.x, curve.y) if lo <= a <= hi]
    return max(vals) if vals else 0.0


def check_fig16(fig: FigureData) -> List[ClaimResult]:
    """At mid/high availability, polling sustains far more bandwidth than
    PWW on GM."""
    poll = _bw_at_availability(fig.curve("Poll"), 0.7, 0.97)
    pww = _bw_at_availability(fig.curve("PWW"), 0.7, 0.97)
    return [ClaimResult(
        "fig16", "polling sustains bandwidth at availabilities where PWW "
                 "has collapsed",
        poll > 2 * pww, f"poll={poll:.1f}, pww={pww:.1f} MB/s @ avail 0.7–0.97",
    )]


def _max_avail_with_bw(curve, bw_min: float) -> float:
    vals = [a for a, b in zip(curve.x, curve.y) if b >= bw_min]
    return max(vals) if vals else 0.0


def check_fig17(fig: FigureData) -> List[ClaimResult]:
    """One MPI_Test in the work phase recovers much of the lost overlap:
    the +Test variant sustains useful bandwidth (≥ 30 MB/s) to markedly
    higher CPU availabilities than plain PWW."""
    av_pww = _max_avail_with_bw(fig.curve("PWW"), 30.0)
    av_test = _max_avail_with_bw(fig.curve("PWW + Test"), 30.0)
    return [ClaimResult(
        "fig17", "the added library call aids progressing communication",
        av_test >= av_pww + 0.15,
        f"30 MB/s sustained to availability {av_test:.2f} with the test vs "
        f"{av_pww:.2f} without",
    )]


#: Claim checkers keyed by figure id.
ALL_CLAIMS: Dict[str, Callable[[FigureData], List[ClaimResult]]] = {
    "fig04": check_fig04, "fig05": check_fig05, "fig06": check_fig06,
    "fig07": check_fig07, "fig08": check_fig08, "fig09": check_fig09,
    "fig10": check_fig10, "fig11": check_fig11, "fig12": check_fig12,
    "fig13": check_fig13, "fig14": check_fig14, "fig15": check_fig15,
    "fig16": check_fig16, "fig17": check_fig17,
}
