"""Memory-copy cost model.

Copies are charged to whichever execution context performs them (kernel
handler or user-level library); this module only computes their durations.
A tiny fixed setup covers function-call and cache-warm costs.
"""

from __future__ import annotations

from ..sim.units import usec

#: Fixed per-copy overhead (call, alignment handling).
COPY_SETUP_S = usec(0.2)


def copy_time(nbytes: int, bandwidth_Bps: float, setup_s: float = COPY_SETUP_S) -> float:
    """Seconds of CPU time to copy ``nbytes`` at ``bandwidth_Bps``.

    Zero-byte copies still pay the fixed setup (matching real memcpy call
    overhead); negative sizes are rejected.
    """
    if nbytes < 0:
        raise ValueError("negative copy size")
    if bandwidth_Bps <= 0:
        raise ValueError("copy bandwidth must be positive")
    return setup_s + nbytes / bandwidth_Bps
