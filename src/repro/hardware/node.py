"""A compute node: CPU(s) + interrupt controller + NIC."""

from __future__ import annotations

from typing import List

from ..config import SystemConfig
from ..os.interrupts import InterruptController
from ..sim.engine import Engine
from .cpu import CPU, CpuContext
from .nic import NIC


class Node:
    """One cluster node of the simulated platform.

    The paper's testbed has a single CPU per node; ``cpus_per_node > 1``
    builds an SMP node (used by the §7 future-work extension).  Interrupts
    are routed to CPU 0, as on the era's uniprocessor-interrupt Linux.
    """

    def __init__(self, engine: Engine, system: SystemConfig, node_id: int,
                 tracer=None):
        self.engine = engine
        self.system = system
        self.node_id = node_id
        self.tracer = tracer
        self.cpus: List[CPU] = [
            CPU(engine, system.machine.cpu, name=f"node{node_id}.cpu{i}")
            for i in range(system.cpus_per_node)
        ]
        self.irq = InterruptController(
            self.cpus[0], system.machine.irq, name=f"node{node_id}.irq"
        )
        self.nic = NIC(
            engine, system.machine.nic, node_id,
            name=f"node{node_id}.nic", tracer=tracer,
        )
        #: The transport instance bound to this node (set by the builder).
        self.transport = None

    @property
    def cpu(self) -> CPU:
        """The boot CPU (interrupt target)."""
        return self.cpus[0]

    def new_context(self, name: str = "", cpu_index: int = 0) -> CpuContext:
        """Create a user execution context on one of this node's CPUs."""
        return self.cpus[cpu_index].new_context(
            name or f"node{self.node_id}.proc"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id} ({self.system.name})>"
