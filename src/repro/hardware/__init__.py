"""Hardware models: CPU, memory, NIC, links, switch, nodes, clusters."""

from .cluster import Cluster
from .cpu import CPU, CpuContext
from .link import Link
from .memory import COPY_SETUP_S, copy_time
from .nic import NIC, SendJob, NIC_TX_BUFFER_PKTS
from .node import Node
from .switch import PortFullError, Switch
from .topology import (
    Crossbar,
    FatTree,
    TOPOLOGIES,
    Topology,
    TopologyError,
    TreeSwitch,
    make_topology,
)

__all__ = [
    "CPU",
    "COPY_SETUP_S",
    "Cluster",
    "CpuContext",
    "Crossbar",
    "FatTree",
    "Link",
    "NIC",
    "NIC_TX_BUFFER_PKTS",
    "Node",
    "PortFullError",
    "SendJob",
    "Switch",
    "TOPOLOGIES",
    "Topology",
    "TopologyError",
    "TreeSwitch",
    "copy_time",
    "make_topology",
]
