"""Point-to-point wire segments.

A :class:`Link` is one *direction* of a cable: packets serialize at the
wire's signalling rate and arrive after the propagation latency.  Two links
make a full-duplex cable; the switch owns the links of its ports.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..config import NicConfig
from ..sim.engine import Engine
from ..sim.resources import Pipe
from ..transport.packets import Packet, PacketKind


class Link:
    """A unidirectional wire with finite bandwidth and latency.

    Parameters
    ----------
    engine:
        Owning engine.
    bandwidth_Bps / latency_s:
        Signalling rate and propagation delay.
    header_bytes:
        Per-packet framing overhead on the wire.
    name:
        Label for traces.
    """

    def __init__(
        self,
        engine: Engine,
        bandwidth_Bps: float,
        latency_s: float,
        header_bytes: int,
        name: str = "link",
        tracer=None,
    ):
        self.engine = engine
        self.header_bytes = header_bytes
        self.name = name
        self.tracer = tracer
        self._pipe = Pipe(
            engine, bandwidth_Bps=bandwidth_Bps, latency_s=latency_s, name=name
        )
        #: Delivery callback, set by whoever sits at the far end.
        self.deliver: Optional[Callable[[Packet], None]] = None
        #: Receiving NIC (set by the cluster on exclusive two-node routes);
        #: enables burst batching across this link.
        self.rx_nic = None
        self.packets_carried = 0
        self.bytes_carried = 0
        self._loss_rate = 0.0
        self._loss_rng = None
        #: DATA packets corrupted/dropped on this link (fault injection).
        self.packets_dropped = 0

    def set_loss(self, rate: float, rng) -> None:
        """Enable fault injection: drop DATA packets with probability
        ``rate`` (control packets are assumed protected; see FaultConfig)."""
        if not (0.0 <= rate < 1.0):
            raise ValueError("loss rate must be in [0, 1)")
        self._loss_rate = rate
        self._loss_rng = rng

    def send(self, packet: Packet) -> None:
        """Enqueue ``packet`` for transmission (FIFO serialization)."""
        if self.deliver is None:
            raise RuntimeError(f"{self.name}: no receiver attached")
        nbytes = packet.wire_bytes(self.header_bytes)
        self.packets_carried += 1
        self.bytes_carried += nbytes
        ev = self._pipe.transfer(nbytes, packet)
        if self.tracer is not None:
            self.tracer.record(self.engine.now, self.name, "wire_tx",
                               (packet.kind.value, packet.msg_id, packet.index))
        ev.callbacks.append(self._on_delivered)

    def _on_delivered(self, ev) -> None:
        packet: Packet = ev.value
        if (
            self._loss_rate > 0.0
            and packet.kind is PacketKind.DATA
            and self._loss_rng.random() < self._loss_rate
        ):
            # The packet occupied the wire but arrives corrupt: dropped.
            self.packets_dropped += 1
            if self.tracer is not None:
                self.tracer.record(self.engine.now, self.name, "wire_drop",
                                   (packet.kind.value, packet.msg_id,
                                    packet.index))
            return
        if self.tracer is not None:
            self.tracer.record(self.engine.now, self.name, "wire_rx",
                               (packet.kind.value, packet.msg_id, packet.index))
        self.deliver(packet)

    @property
    def busy_until(self) -> float:
        """When the wire drains, given the packets queued so far."""
        return self._pipe.busy_until
