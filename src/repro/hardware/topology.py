"""Network topologies: how N nodes are wired together.

The paper's testbed is two nodes on one Myrinet crossbar; its §4 analysis
(and §7 future work) is about how host processing and rendezvous stalls
compose *at scale*.  A :class:`Topology` builds the network side of a
:class:`~repro.hardware.cluster.Cluster`: it creates the switches and
links, attaches every node's NIC, and installs the routing so packets
addressed to node ``dst`` arrive at ``dst``'s NIC.  Two models ship:

* :class:`Crossbar` — the paper's single cut-through switch.  Every pair
  of nodes contends only on the destination's output link; this is the
  seed topology, preserved statement-for-statement so two-node worlds
  stay bit-identical to the recorded golden values (including the
  burst-batching fast path, which only arms on exclusive 2-node routes).
* :class:`FatTree` — a two-level k-ary fat-tree: ``k/2``-host edge
  switches uplinked to ``k/2`` core switches, every inter-switch hop a
  real contended :class:`~repro.hardware.link.Link` plus the cut-through
  switch latency.  Up-routes are selected deterministically by
  destination (``dst % n_core``), so runs are reproducible and the core
  spreads flows the way the era's source-routed Myrinet maps did.

Topologies are hardware-only: transports and MPI endpoints are layered on
by :func:`repro.mpi.world.build_world`, which accepts ``topology=``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

from ..config import NicConfig, SwitchConfig
from ..sim.engine import Engine
from ..transport.packets import Packet
from .link import Link
from .node import Node
from .switch import Switch

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import Cluster


class TopologyError(ValueError):
    """A topology cannot be built for the requested node count."""


class Topology:
    """Contract for cluster network builders.

    ``wire(cluster, n_nodes)`` must populate ``cluster.nodes`` with
    ``n_nodes`` :class:`~repro.hardware.node.Node`\\ s (node ``i`` hosting
    rank ``i``) and connect their NICs so ``nic.uplink`` injects packets
    into the network and packets for node ``i`` reach
    ``cluster.nodes[i].nic.deliver``.  Wire-loss injection
    (``system.machine.fault.data_loss_rate``) applies to the final
    host-facing link of each node, drawing from the cluster's RNG streams
    ``loss.link{i}`` in node order — the stream discipline the crossbar
    established, kept so fault studies stay comparable across topologies.
    """

    #: Registry name (also what scenario/CLI specs use).
    name = "topology"

    def max_nodes(self, cluster: "Cluster") -> int:
        """Largest node count this topology supports for the system."""
        raise NotImplementedError

    def wire(self, cluster: "Cluster", n_nodes: int) -> None:
        """Build switches/links and attach ``n_nodes`` nodes."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human description (CLI output, docs)."""
        return self.name


class Crossbar(Topology):
    """The paper's single cut-through switch (Myrinet 8-port SAN/LAN).

    This is the seed two-node wiring generalized only in name: the
    construction order, RNG stream names, and the exclusive-route burst
    fast path (armed solely on untraced two-node worlds) are identical,
    which the golden-value differential tests pin bit-for-bit.
    """

    name = "crossbar"

    def max_nodes(self, cluster: "Cluster") -> int:
        return cluster.system.machine.switch.ports

    def wire(self, cluster: "Cluster", n_nodes: int) -> None:
        engine = cluster.engine
        system = cluster.system
        tracer = cluster.tracer
        if n_nodes > system.machine.switch.ports:
            raise ValueError(
                f"{n_nodes} nodes exceed the switch's "
                f"{system.machine.switch.ports} ports"
            )
        cluster.switch = Switch(
            engine, system.machine.switch, system.machine.nic, tracer=tracer
        )
        loss = system.machine.fault.data_loss_rate
        for nid in range(n_nodes):
            node = Node(engine, system, nid, tracer=tracer)
            node.nic.uplink = cluster.switch.ingress
            cluster.switch.attach(nid, node.nic.deliver)
            if loss > 0.0:
                cluster.switch.out_link(nid).set_loss(
                    loss, cluster.rng.stream(f"loss.link{nid}")
                )
            cluster.nodes.append(node)
        if n_nodes == 2 and tracer is None and engine.trace is None:
            # Exclusive routes: each wire carries exactly one sender's
            # traffic, so the NICs can run the event-lean fast pump and
            # burst-batch multi-fragment messages (see NIC.enable_fast).
            # Traced runs keep the legacy per-packet path so observer and
            # sanitizer see the exact per-packet record stream.
            from ..sim.resources import BurstDomain

            domain = BurstDomain()
            routes = {nid: cluster.switch.out_link(nid)
                      for nid in range(n_nodes)}
            for nid in range(n_nodes):
                routes[nid].rx_nic = cluster.nodes[nid].nic
                cluster.nodes[nid].nic.host_bus.domain = domain
                routes[nid]._pipe.domain = domain
            for node in cluster.nodes:
                node.nic.enable_fast(cluster.switch, routes, domain)

    def describe(self) -> str:
        return "crossbar (single cut-through switch)"


class TreeSwitch:
    """A routed cut-through switch stage of the fat-tree.

    Unlike the crossbar :class:`~repro.hardware.switch.Switch` (whose
    output ports *are* the destinations), a tree switch forwards by a
    routing table mapping destination node ids to named ports; the port's
    :class:`~repro.hardware.link.Link` may lead to a host NIC or to
    another switch's ingress.  Forwarding charges the same cut-through
    latency and serializes on the chosen output link, so shared up/down
    links are genuine contention points.
    """

    def __init__(
        self,
        engine: Engine,
        config: SwitchConfig,
        nic_config: NicConfig,
        name: str,
        tracer=None,
    ):
        self.engine = engine
        self.config = config
        self.nic_config = nic_config
        self.name = name
        self.tracer = tracer
        #: port key -> output link.
        self._ports: Dict[str, Link] = {}
        #: destination node id -> port key.
        self._route: Dict[int, str] = {}
        self.packets_forwarded = 0

    def add_port(self, key: str, deliver: Callable[[Packet], None]) -> Link:
        """Create an output link on port ``key`` delivering to ``deliver``."""
        if key in self._ports:
            raise ValueError(f"{self.name}: port {key!r} already wired")
        if len(self._ports) >= self.config.ports:
            raise TopologyError(
                f"{self.name}: all {self.config.ports} ports in use"
            )
        link = Link(
            self.engine,
            bandwidth_Bps=self.nic_config.wire_bandwidth_Bps,
            latency_s=self.nic_config.wire_latency_s,
            header_bytes=self.nic_config.header_bytes,
            name=f"{self.name}.{key}",
            tracer=self.tracer,
        )
        link.deliver = deliver
        self._ports[key] = link
        return link

    def set_route(self, dst: int, port: str) -> None:
        """Route packets for node ``dst`` out of ``port``."""
        if port not in self._ports:
            raise ValueError(f"{self.name}: no port {port!r}")
        self._route[dst] = port

    def port_link(self, key: str) -> Link:
        """The output link on ``key`` (introspection/fault seam)."""
        return self._ports[key]

    def ingress(self, packet: Packet) -> None:
        """Forward an arriving packet along its routed port."""
        try:
            out = self._ports[self._route[packet.dst]]
        except KeyError:
            raise RuntimeError(
                f"{self.name}: no route to node {packet.dst}"
            ) from None
        self.packets_forwarded += 1
        # Cut-through forwarding latency, then serialize on the output link.
        self.engine.schedule_callback(
            self.config.latency_s, lambda p=packet: out.send(p)
        )


class FatTree(Topology):
    """A two-level k-ary fat-tree with per-hop link/switch contention.

    Shape (``k`` = :attr:`arity`, default the system switch's port count):

    * up to ``k`` *edge* switches, each hosting ``k/2`` nodes on its down
      ports and uplinked to every core switch on its ``k/2`` up ports;
    * ``k/2`` *core* switches, each with one down link per edge switch;
    * capacity ``k * k/2`` nodes (32 for the Myrinet-era ``k = 8``).

    Node ``i`` lives on edge switch ``i // (k/2)``.  Intra-edge traffic
    takes one switch hop (host → edge → host); inter-edge traffic takes
    three (edge → core → edge), crossing two shared inter-switch links.
    The up-route is chosen per destination (``core = dst % n_core``), so
    routing is deterministic and flows to distinct destinations spread
    over the core.  Every hop is a real :class:`Link` — contention shows
    up as serialization on the shared up/down links, which is exactly
    what distinguishes the fat-tree from the ideal crossbar at scale.
    """

    name = "fattree"

    def __init__(self, arity: int = 0):
        if arity and (arity < 2 or arity % 2):
            raise TopologyError(
                f"fat-tree arity must be an even number >= 2, got {arity}"
            )
        #: Switch radix ``k``; 0 defers to the system's switch port count.
        self.arity = arity
        #: Edge switches, filled by :meth:`wire` (introspection seam).
        self.edges: List[TreeSwitch] = []
        #: Core switches, filled by :meth:`wire`.
        self.cores: List[TreeSwitch] = []

    def _k(self, cluster: "Cluster") -> int:
        k = self.arity or cluster.system.machine.switch.ports
        if k < 2 or k % 2:
            raise TopologyError(
                f"fat-tree arity must be an even number >= 2, got {k}"
            )
        return k

    def max_nodes(self, cluster: "Cluster") -> int:
        k = self._k(cluster)
        return k * (k // 2)

    def wire(self, cluster: "Cluster", n_nodes: int) -> None:
        engine = cluster.engine
        system = cluster.system
        tracer = cluster.tracer
        k = self._k(cluster)
        hosts_per_edge = k // 2
        n_core = k // 2
        if n_nodes > k * hosts_per_edge:
            raise ValueError(
                f"{n_nodes} nodes exceed the k={k} fat-tree's "
                f"{k * hosts_per_edge}-host capacity"
            )
        n_edge = -(-n_nodes // hosts_per_edge)  # ceil division
        sw_cfg = system.machine.switch
        nic_cfg = system.machine.nic
        self.edges = [
            TreeSwitch(engine, sw_cfg, nic_cfg, f"edge{e}", tracer=tracer)
            for e in range(n_edge)
        ]
        self.cores = [
            TreeSwitch(engine, sw_cfg, nic_cfg, f"core{c}", tracer=tracer)
            for c in range(n_core)
        ]

        # Hosts: NIC uplinks inject at the owning edge switch; the edge's
        # host-facing down link is where wire loss is injected (same RNG
        # stream names and draw order as the crossbar).
        loss = system.machine.fault.data_loss_rate
        for nid in range(n_nodes):
            node = Node(engine, system, nid, tracer=tracer)
            edge = self.edges[nid // hosts_per_edge]
            node.nic.uplink = edge.ingress
            link = edge.add_port(f"host{nid}", node.nic.deliver)
            edge.set_route(nid, f"host{nid}")
            if loss > 0.0:
                link.set_loss(loss, cluster.rng.stream(f"loss.link{nid}"))
            cluster.nodes.append(node)

        # Inter-switch fabric: every edge uplinks to every core, every
        # core downlinks to every edge.
        for e, edge in enumerate(self.edges):
            for c, core in enumerate(self.cores):
                edge.add_port(f"up{c}", core.ingress)
                core.add_port(f"down{e}", edge.ingress)

        # Routing tables: edges send foreign destinations up to the
        # destination-selected core; cores send down to the owning edge.
        for e, edge in enumerate(self.edges):
            for dst in range(n_nodes):
                dst_edge = dst // hosts_per_edge
                if dst_edge != e:
                    edge.set_route(dst, f"up{dst % n_core}")
        for core in self.cores:
            for dst in range(n_nodes):
                core.set_route(dst, f"down{dst // hosts_per_edge}")

    def hops(self, src: int, dst: int, cluster: "Cluster") -> int:
        """Switch hops a packet takes from ``src`` to ``dst``."""
        hpe = self._k(cluster) // 2
        return 1 if src // hpe == dst // hpe else 3

    def describe(self) -> str:
        k = self.arity or "system"
        return f"2-level k-ary fat-tree (k={k})"


#: Registered topology builders, keyed by spec name.
TOPOLOGIES = {
    Crossbar.name: Crossbar,
    FatTree.name: FatTree,
}


def make_topology(spec: str, arity: int = 0) -> Topology:
    """Build a topology from its spec name (``crossbar`` / ``fattree``).

    ``arity`` applies to the fat-tree only (0 = the system's switch port
    count); the crossbar rejects a nonzero arity rather than ignoring it.
    """
    try:
        cls = TOPOLOGIES[spec]
    except KeyError:
        raise TopologyError(
            f"unknown topology {spec!r}; have {sorted(TOPOLOGIES)}"
        ) from None
    if cls is FatTree:
        return FatTree(arity=arity)
    if arity:
        raise TopologyError(f"topology {spec!r} takes no arity")
    return cls()
