"""Preemptible host-CPU model with exact time accounting.

The CPU runs two classes of work:

* **user contexts** — application code consuming CPU time via
  :meth:`CpuContext.compute`; several contexts share the CPU round-robin
  with a configurable quantum (one context per node in the paper's setup,
  two in the netperf baseline);
* **kernel work** — interrupt handlers and traps submitted via
  :meth:`CPU.kernel_work`; kernel work always preempts user work and is
  serviced FIFO.

The model is exact: a ``compute(d)`` call occupies the CPU for precisely
``d`` seconds of *user* time, stretched in wall-clock time by any kernel
work that arrives meanwhile.  The conservation law

    ``user_time + kernel_time + idle_time == elapsed``

holds at every instant and is enforced by tests — it is what makes COMB's
availability metric meaningful.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..config import CpuConfig
from ..sim.engine import Engine
from ..sim.errors import SimulationError
from ..sim.events import Event


class CpuContext:
    """A schedulable user-level execution context (one process's share).

    Create via :meth:`CPU.new_context`.  A context may have at most one
    outstanding :meth:`compute` call; application processes interleave
    ``compute`` with waits on other events (message completions, timers),
    during which the context does not occupy the CPU.
    """

    __slots__ = ("cpu", "name", "user_time_s", "_remaining", "_event",
                 "_spin_release", "_in_trap")

    def __init__(self, cpu: "CPU", name: str):
        self.cpu = cpu
        self.name = name
        #: Total user CPU seconds consumed so far (completed segments only;
        #: use :meth:`CPU.context_time` for an up-to-the-instant figure).
        self.user_time_s = 0.0
        self._remaining: Optional[float] = None
        self._event: Optional[Event] = None
        #: Set when a spin's awaited event fired while this context was
        #: off-CPU; the spin then ends the instant the context runs again.
        self._spin_release = False
        #: Nesting depth of outstanding traps (see :meth:`trap`).
        self._in_trap = 0

    def trap(self, cost_s: float, fn=None, label: str = "") -> Event:
        """Synchronous kernel work on behalf of this context (a syscall).

        Unlike :meth:`CPU.kernel_work` (asynchronous interrupt work), a trap
        preserves the calling context's scheduling slot: the process resumes
        its own quantum when the kernel returns instead of rotating to the
        back of the run queue.
        """
        return self.cpu.trap(self, cost_s, fn, label)

    def compute(self, seconds: float) -> Event:
        """Consume ``seconds`` of user CPU time; the event fires when done.

        The wall-clock duration is at least ``seconds`` and grows with any
        preempting kernel work or competing user contexts.
        """
        return self.cpu._submit_compute(self, seconds)

    @property
    def busy(self) -> bool:
        """``True`` while a compute request is outstanding."""
        return self._event is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CpuContext {self.name!r} user={self.user_time_s:.6f}s>"


class _KernelJob:
    __slots__ = ("cost", "fn", "event", "label")

    def __init__(self, cost: float, fn, event: Optional[Event], label: str):
        self.cost = cost
        self.fn = fn
        self.event = event
        self.label = label


class _Grant:
    """Bookkeeping for the user context currently holding the CPU."""

    __slots__ = ("ctx", "resume_time", "quantum_left", "epoch", "untimed")

    def __init__(self, ctx: CpuContext, now: float, quantum: float):
        self.ctx = ctx
        self.resume_time = now
        self.quantum_left = quantum
        self.epoch = 0
        #: ``True`` when an infinite spin runs with no competitor, so no
        #: rotation timer is armed (it is armed lazily if contention
        #: appears).  Keeps deadlocked spins from generating endless
        #: rotation events — the schedule drains and deadlock is detectable.
        self.untimed = False


class CPU:
    """A single host processor shared by user contexts and kernel work."""

    def __init__(self, engine: Engine, config: CpuConfig, name: str = "cpu"):
        self.engine = engine
        self.config = config
        self.name = name
        self._kernel_queue: Deque[_KernelJob] = deque()
        self._kernel_job: Optional[_KernelJob] = None
        self._kernel_started = 0.0
        self._running: Optional[_Grant] = None
        self._preempted: Optional[_Grant] = None
        self._ready: Deque[CpuContext] = deque()
        #: Completed kernel CPU seconds.
        self.kernel_time_s = 0.0
        #: Completed user CPU seconds, all contexts.
        self.user_time_s = 0.0
        #: Per-label kernel-work profile: label -> [count, total_seconds].
        #: Transports label their traps/handlers ("isend_trap",
        #: "portals_rx", ...), so this breaks down exactly where kernel
        #: time went — the instrument behind the calibration in
        #: EXPERIMENTS.md.
        self.kernel_profile: dict = {}
        self._created = engine.now
        self._contexts: list = []

    # ------------------------------------------------------------- factories
    def new_context(self, name: str = "") -> CpuContext:
        """Create a user context scheduled on this CPU."""
        ctx = CpuContext(self, name or f"{self.name}.ctx{len(self._contexts)}")
        self._contexts.append(ctx)
        return ctx

    # ------------------------------------------------------------ kernel side
    def kernel_work(
        self,
        cost_s: float,
        fn: Optional[Callable[[], None]] = None,
        label: str = "",
        want_event: bool = True,
    ) -> Optional[Event]:
        """Submit ``cost_s`` seconds of kernel-mode work (FIFO, preempts user).

        ``fn`` runs when the work completes (use it to commit the state
        change the kernel work represents, e.g. "copy done").  The returned
        event fires at the same instant.  Callers that only care about
        ``fn`` (interrupt delivery) pass ``want_event=False`` and get
        ``None`` back — no completion event is allocated.
        """
        if cost_s < 0:
            raise ValueError("negative kernel work cost")
        job = _KernelJob(cost_s, fn, Event(self.engine) if want_event else None, label)
        self._kernel_queue.append(job)
        if self._running is not None:
            self._pause_user()
        if self._kernel_job is None:
            self._start_next_kernel()
        return job.event

    def trap(self, ctx: CpuContext, cost_s: float, fn=None, label: str = "") -> Event:
        """Kernel work on behalf of ``ctx`` that keeps its scheduling slot.

        While the trap is outstanding, ``ctx``'s parked grant does not lapse
        in :meth:`_dispatch`, so the context continues its quantum when the
        kernel returns — matching real syscall semantics.
        """
        ctx._in_trap += 1
        ev = self.kernel_work(cost_s, fn, label=label)
        assert ev is not None

        def _leave(_ev) -> None:
            ctx._in_trap -= 1

        ev.callbacks.append(_leave)
        return ev

    @property
    def in_kernel(self) -> bool:
        """``True`` while kernel work occupies the CPU."""
        return self._kernel_job is not None


    # -------------------------------------------------------------- user side
    def _submit_compute(self, ctx: CpuContext, seconds: float) -> Event:
        if seconds < 0:
            raise ValueError("negative compute duration")
        if ctx._event is not None:
            raise SimulationError(f"{ctx.name} already has an outstanding compute")
        ev = Event(self.engine)
        if seconds == 0.0:
            ev.succeed()
            return ev
        ctx._event = ev
        ctx._remaining = seconds
        self._enqueue_ctx(ctx)
        self._dispatch()
        return ev

    def _enqueue_ctx(self, ctx: CpuContext) -> None:
        """Queue a context for dispatch, honouring quantum continuation.

        A context whose previous grant is parked in ``_preempted`` (it just
        finished a compute segment, or ended a spin, within its timeslice)
        continues on that grant rather than re-queueing behind other ready
        contexts — real schedulers let the running process keep its quantum
        across back-to-back system calls.
        """
        if self._preempted is not None and self._preempted.ctx is ctx:
            return  # _dispatch resumes the parked grant
        self._ready.append(ctx)
        # Contention appeared: a lazily-untimed spinner must now rotate.
        grant = self._running
        if grant is not None and grant.untimed:
            grant.untimed = False
            self._arm_timer(grant)

    def spin_until(self, ctx: CpuContext, event: Event) -> Event:
        """Busy-wait: occupy the CPU with ``ctx`` until ``event`` fires.

        Models an MPI-style busy-wait loop without simulating each loop
        iteration: the context consumes user CPU time (preemptible by kernel
        work, sharing round-robin with other contexts) until the moment
        ``event`` triggers.  The returned event fires at that moment.

        The caller can measure the user time actually consumed with
        :meth:`context_time` before/after — under kernel preemption it is
        less than the wall-clock wait.
        """
        done = Event(self.engine)
        if event.triggered:
            done.succeed()
            return done
        if ctx._event is not None:
            raise SimulationError(f"{ctx.name} already has an outstanding compute")
        ctx._event = done
        ctx._remaining = float("inf")
        self._enqueue_ctx(ctx)
        self._dispatch()

        def _stop(_ev) -> None:
            self._finish_spin(ctx)

        event.callbacks.append(_stop)
        return done

    def _finish_spin(self, ctx: CpuContext) -> None:
        ev = ctx._event
        if ev is None or ev.triggered:
            return
        grant = self._running
        if grant is not None and grant.ctx is ctx:
            # The spinner holds the CPU: it observes the event right now.
            now = self.engine._now
            elapsed_s = now - grant.resume_time
            ctx.user_time_s += elapsed_s
            self.user_time_s += elapsed_s
            grant.quantum_left -= elapsed_s
            grant.epoch += 1
            self._running = None
            # Park the grant: the spinner usually issues its next CPU
            # request immediately (progress pass) and should keep its slot.
            self._preempted = grant
            ctx._event = None
            ctx._remaining = None
            ev.succeed()
            if self._ready or self._kernel_queue:
                self._defer_dispatch()
            # Otherwise nothing can claim the CPU except a fresh request,
            # and every entry point (_submit_compute, spin_until,
            # kernel_work) dispatches itself — the parked grant either
            # continues or lapses there, with identical semantics.
        else:
            # Off-CPU (preempted by kernel work or waiting in the ready
            # queue): a busy-wait loop only *observes* the event once it is
            # scheduled again, so keep spinning on the queue and release at
            # the next grant (see _dispatch).
            ctx._spin_release = True

    def _defer_dispatch(self) -> None:
        """Dispatch at the end of the current timestamp.

        Gives processes resumed by events at this instant the chance to
        re-request the CPU (continuing their quantum) before the slot is
        handed to another ready context.
        """
        ev = Event(self.engine)
        ev._ok = True
        ev._value = None
        ev.callbacks.append(self._dispatch_cb)
        self.engine._enqueue(ev, 1)

    def _dispatch_cb(self, _ev) -> None:
        self._dispatch()

    # ------------------------------------------------------------- accounting
    def elapsed(self) -> float:
        """Wall-clock seconds since this CPU was created."""
        return self.engine.now - self._created

    def snapshot(self) -> dict:
        """Instantaneous accounting: user, kernel and idle seconds.

        Includes the partially-completed current segment, so the three
        figures always sum to :meth:`elapsed`.
        """
        now = self.engine.now
        user = self.user_time_s
        kernel = self.kernel_time_s
        if self._running is not None:
            user += now - self._running.resume_time
        if self._kernel_job is not None:
            kernel += now - self._kernel_started
        idle = self.elapsed() - user - kernel
        return {"user_s": user, "kernel_s": kernel, "idle_s": idle}

    def profile_report(self) -> str:
        """Human-readable kernel-time breakdown by label."""
        lines = [f"{self.name}: kernel {self.kernel_time_s * 1e3:.3f} ms"]
        for label, (count, total) in sorted(
            self.kernel_profile.items(), key=lambda kv: -kv[1][1]
        ):
            lines.append(
                f"  {label or '<unlabelled>':20s} n={count:<7d} "
                f"total={total * 1e3:9.3f} ms  "
                f"mean={total / count * 1e6:7.2f} us"
            )
        return "\n".join(lines)

    def context_time(self, ctx: CpuContext) -> float:
        """User CPU seconds consumed by ``ctx`` up to this instant."""
        t = ctx.user_time_s
        if self._running is not None and self._running.ctx is ctx:
            t += self.engine._now - self._running.resume_time
        return t

    # --------------------------------------------------------------- internal
    def _start_next_kernel(self) -> None:
        job = self._kernel_queue.popleft()
        self._kernel_job = job
        self._kernel_started = self.engine._now
        # Raw pre-triggered event: same heap insertion and float arithmetic
        # as engine.timeout(job.cost), minus the Timeout wrapper.  The job
        # rides in the event value (a completion ``fn`` may submit further
        # kernel work before this callback finishes, so ``_kernel_job`` is
        # not reliable at fire time) — a bound method replaces a per-job
        # closure.
        timer = Event(self.engine)
        timer._ok = True
        timer._value = job
        timer.callbacks.append(self._kernel_done_cb)
        self.engine._enqueue(timer, 1, job.cost)

    def _kernel_done_cb(self, timer: Event) -> None:
        job = timer._value
        self.kernel_time_s += job.cost
        entry = self.kernel_profile.get(job.label)
        if entry is None:
            entry = self.kernel_profile[job.label] = [0, 0.0]
        entry[0] += 1
        entry[1] += job.cost
        self._kernel_job = None
        if job.fn is not None:
            job.fn()
        ev = job.event
        if ev is not None and not ev.triggered:
            if ev.callbacks:
                ev.succeed()
            else:
                # Nobody is listening (fn-style interrupt work): complete
                # in place instead of a heap round-trip.  A later yield
                # of this event still resumes inline via the
                # processed-event path in Process._resume.
                ev._ok = True
                ev._value = None
                ev._processed = True
                ev.callbacks = None
        if self._kernel_queue:
            self._start_next_kernel()
        else:
            self._dispatch()

    def _pause_user(self) -> None:
        grant = self._running
        assert grant is not None
        now = self.engine._now
        elapsed_s = now - grant.resume_time
        grant.ctx._remaining -= elapsed_s
        grant.ctx.user_time_s += elapsed_s
        self.user_time_s += elapsed_s
        grant.quantum_left -= elapsed_s
        grant.epoch += 1
        self._running = None
        self._preempted = grant

    def _dispatch(self) -> None:
        if self._kernel_job is not None or self._running is not None:
            return
        if self._kernel_queue:
            self._start_next_kernel()
            return
        grant: Optional[_Grant] = None
        if self._preempted is not None:
            grant = self._preempted
            self._preempted = None
            if grant.ctx._event is None:
                if grant.ctx._in_trap > 0:
                    # Mid-trap (syscall in flight): the context keeps its
                    # slot; retry once the trap unwinds.
                    self._preempted = grant
                    self._defer_dispatch()
                    return
                # The context did not re-request the CPU: it yielded
                # voluntarily, so the parked grant lapses.
                grant = None
            elif grant.quantum_left <= 0:
                # Quantum exhausted while preempted: rotate to the tail.
                if self._ready:
                    self._ready.append(grant.ctx)
                    grant = None
                else:
                    grant.quantum_left = self.config.timeslice_s
        if grant is None:
            if not self._ready:
                return
            ctx = self._ready.popleft()
            grant = _Grant(ctx, self.engine._now, self.config.timeslice_s)
        grant.resume_time = self.engine._now
        self._running = grant
        if grant.ctx._spin_release:
            # The awaited event fired while this context was off-CPU: the
            # spin ends the instant the context is scheduled again.
            self._release_spin_grant(grant)
            return
        self._arm_timer(grant)

    def _release_spin_grant(self, grant: _Grant) -> None:
        ctx = grant.ctx
        ctx._spin_release = False
        grant.epoch += 1
        self._running = None
        self._preempted = grant
        ev = ctx._event
        ctx._event = None
        ctx._remaining = None
        if ev is not None and not ev.triggered:
            ev.succeed()
        if self._ready or self._kernel_queue:
            self._defer_dispatch()

    def _arm_timer(self, grant: _Grant) -> None:
        ctx = grant.ctx
        # An uncontended infinite spin needs no rotation timer; it is armed
        # lazily by _enqueue_ctx if a competitor shows up.
        if (ctx._remaining == float("inf") and not self._ready
                and self._preempted is None):
            grant.untimed = True
            return
        grant.untimed = False
        # The timer may be (re)armed mid-run (lazy arming): account for the
        # stretch already executed since the grant resumed.
        already = self.engine._now - grant.resume_time
        # Clamp float drift: repeated preemption subtracts elapsed times and
        # can leave remainders a few ulp below zero.
        quantum = max(grant.quantum_left - already, 0.0)
        remaining = max(ctx._remaining - already, 0.0)
        completes = remaining <= quantum
        run_for = remaining if completes else quantum

        # Timer state rides in the (otherwise unused) event value; a bound
        # method replaces a per-arm closure on this hot path.
        timer = Event(self.engine)
        timer._ok = True
        timer._value = (grant, grant.epoch, completes)
        timer.callbacks.append(self._timer_cb)
        self.engine._enqueue(timer, 1, run_for)

    def _timer_cb(self, timer: Event) -> None:
        grant, epoch, completes = timer._value
        if self._running is not grant or grant.epoch != epoch:
            return  # stale timer: grant was preempted meanwhile
        ctx = grant.ctx
        now = self.engine._now
        elapsed_s = now - grant.resume_time
        ctx.user_time_s += elapsed_s
        self.user_time_s += elapsed_s
        ctx._remaining -= elapsed_s
        grant.quantum_left -= elapsed_s
        self._running = None
        if completes:
            ev = ctx._event
            ctx._event = None
            ctx._remaining = None
            if ev is not None and not ev.triggered:
                ev.succeed()
            # Park the grant so an immediate follow-up request from the
            # same context continues its quantum.
            self._preempted = grant
            if self._ready or self._kernel_queue:
                self._defer_dispatch()
        else:
            # Quantum expiry: rotate to the tail of the ready queue.
            self._ready.append(ctx)
            self._dispatch()
