"""Crossbar switch model (Myrinet 8-port SAN/LAN switch).

The switch is cut-through: a packet entering port *i* destined for node on
port *j* is forwarded after the switch latency, serializing only on the
*output* link of port *j* (input links are the senders' own wires, owned by
their NICs).  With COMB's two-node setup contention never occurs, but the
model supports full N-port fan-in so multi-node tests exercise it.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..config import NicConfig, SwitchConfig
from ..sim.engine import Engine
from .link import Link
from ..transport.packets import Packet


class PortFullError(RuntimeError):
    """All switch ports are occupied."""


class Switch:
    """A cut-through crossbar with one output :class:`Link` per port."""

    def __init__(
        self,
        engine: Engine,
        config: SwitchConfig,
        nic_config: NicConfig,
        name: str = "switch",
        tracer=None,
    ):
        self.engine = engine
        self.config = config
        self.nic_config = nic_config
        self.name = name
        self.tracer = tracer
        #: node id -> output link towards that node.
        self._out: Dict[int, Link] = {}
        self.packets_forwarded = 0

    def attach(self, node_id: int, deliver: Callable[[Packet], None]) -> None:
        """Connect a node: ``deliver`` receives packets addressed to it."""
        if len(self._out) >= self.config.ports:
            raise PortFullError(
                f"{self.name}: all {self.config.ports} ports in use"
            )
        if node_id in self._out:
            raise ValueError(f"node {node_id} already attached")
        link = Link(
            self.engine,
            bandwidth_Bps=self.nic_config.wire_bandwidth_Bps,
            latency_s=self.nic_config.wire_latency_s,
            header_bytes=self.nic_config.header_bytes,
            name=f"{self.name}.out{node_id}",
            tracer=self.tracer,
        )
        link.deliver = deliver
        self._out[node_id] = link

    def out_link(self, node_id: int) -> Link:
        """The output link towards ``node_id`` (fault-injection seam)."""
        return self._out[node_id]

    def ingress(self, packet: Packet) -> None:
        """A packet arriving from some node's uplink; forward it."""
        try:
            out = self._out[packet.dst]
        except KeyError:
            raise RuntimeError(
                f"{self.name}: packet for unattached node {packet.dst}"
            ) from None
        self.packets_forwarded += 1
        # Cut-through forwarding latency, then serialize on the output link.
        self.engine.schedule_callback(
            self.config.latency_s, lambda p=packet: out.send(p)
        )
