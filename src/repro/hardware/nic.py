"""Network-interface model (Myrinet LANai-class).

The NIC owns:

* the **host bus** — one DMA pipe shared by transmit and receive (the
  32/33 PCI bus of the era), which is what actually bounds aggregate MPI
  bandwidth;
* a **transmit engine** — streams packetized send jobs: DMA from host
  memory, then serialization onto the uplink, with bounded on-NIC buffering
  (wire credits) and a priority lane for small control packets;
* the **receive path** — inbound DATA packets are DMA'd to host memory
  (user buffer, bounce buffer or kernel ring — the transport decides what
  that memory *means*), then handed to the transport's ``rx_handler``;
  control packets skip the bus.

The NIC itself never touches the host CPU: interrupts, if any, are raised
by the transport from ``rx_handler``.  That separation is exactly the
OS-bypass vs. kernel-transport distinction COMB probes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from ..config import NicConfig
from ..sim.engine import Engine
from ..sim.events import Event
from ..sim.resources import Pipe, Store
from ..transport.packets import Packet, PacketKind

#: Maximum packets buffered on the NIC between host DMA and the wire.
NIC_TX_BUFFER_PKTS = 8

#: Fast-pump continuation codes (see :meth:`NIC._hop`).
_HOP_NEXT_PKT = 0
_HOP_JOB_DONE = 1
_HOP_NEXT_JOB = 2


class SendJob:
    """A packetized transmit request.

    Parameters
    ----------
    packets:
        Wire packets, in order.
    on_packet_out:
        Called after each packet has been DMA'd off host memory.
    on_done:
        Called once the *last* packet has left host memory (MPI local
        completion: the send buffer is reusable).
    urgent:
        Control-lane jobs (RTS/CTS/ACK) that jump ahead of bulk data.
    """

    __slots__ = ("packets", "on_packet_out", "on_done", "urgent")

    def __init__(
        self,
        packets: List[Packet],
        on_packet_out: Optional[Callable[[Packet], None]] = None,
        on_done: Optional[Callable[[], None]] = None,
        urgent: bool = False,
    ):
        if not packets:
            raise ValueError("SendJob needs at least one packet")
        self.packets = packets
        self.on_packet_out = on_packet_out
        self.on_done = on_done
        self.urgent = urgent


class NIC:
    """One node's network interface."""

    def __init__(
        self,
        engine: Engine,
        config: NicConfig,
        node_id: int,
        name: str = "",
        tracer=None,
    ):
        self.engine = engine
        self.config = config
        self.node_id = node_id
        self.name = name or f"node{node_id}.nic"
        self.tracer = tracer
        #: Shared host DMA pipe (PCI): transmit and receive contend here.
        self.host_bus = Pipe(
            engine,
            bandwidth_Bps=config.host_dma_bandwidth_Bps,
            setup_s=config.dma_setup_s,
            name=f"{self.name}.bus",
        )
        #: Uplink towards the switch; set by the cluster builder.
        self.uplink: Optional[Callable[[Packet], None]] = None
        #: Inbound packet handler; set by the transport.
        self.rx_handler: Optional[Callable[[Packet], None]] = None
        self._bulk: Deque[SendJob] = deque()
        self._urgent: Deque[SendJob] = deque()
        self._job_ready = Store(engine, name=f"{self.name}.txq")
        self._credits = NIC_TX_BUFFER_PKTS
        self._credit_waiters: Deque[Event] = deque()
        self.tx_packets = 0
        self.rx_packets = 0
        # Fast transmit pump (see enable_fast): populated by the cluster
        # builder on exclusive two-node routes; None/False selects the
        # legacy per-packet generator loop below.
        self._fast = False
        self._tx_busy = False
        self._switch = None
        self._routes: dict = {}
        self._domain = None
        engine.spawn(self._tx_loop(), name=f"{self.name}.tx")

    # ------------------------------------------------------------- fast path
    def enable_fast(self, switch, routes: dict, domain) -> None:
        """Arm the event-lean transmit pump for an exclusive route group.

        Requires: no tracer attached (traced runs take the legacy path so
        per-packet records stay byte-identical), and a credit window wide
        enough that wire credits can never block — emissions are spaced at
        least ``dma_setup_s`` apart, so at most
        ``ceil(nic_processing_s / dma_setup_s)`` credits are ever in
        flight.  When armed, per-packet bookkeeping events (credit grants,
        NIC-processing and switch-latency timeouts) fold into analytically
        computed wire reservations, and multi-fragment DATA jobs ride a
        single lazy :class:`~repro.sim.resources.BurstDomain` burst.
        """
        cfg = self.config
        if self.tracer is not None or self.engine.trace is not None:
            return
        if cfg.dma_setup_s <= 0.0:
            return
        if cfg.nic_processing_s > NIC_TX_BUFFER_PKTS * cfg.dma_setup_s:
            return
        self._switch = switch
        self._routes = routes
        self._domain = domain
        self._fast = True

    # -------------------------------------------------------------- transmit
    def submit(self, job: SendJob) -> None:
        """Queue a send job (urgent jobs preempt bulk jobs between packets)."""
        if job.urgent:
            self._urgent.append(job)
        else:
            self._bulk.append(job)
        if self._fast:
            if not self._tx_busy:
                self._tx_busy = True
                # One zero-delay hop before the first reservation, mirroring
                # the legacy Store.get wake: pending same-instant events
                # (deliveries, in particular) stay ordered ahead of us.
                self._hop(_HOP_NEXT_JOB, None, 0)
        else:
            self._job_ready.put(None)

    def _pump_next(self) -> None:
        """Fast pump: start the next queued job (urgent lane first)."""
        job = self._next_job()
        if job is None:
            self._tx_busy = False
            return
        pkts = job.packets
        if len(pkts) > 1 and job.on_packet_out is None:
            link = self._routes.get(pkts[0].dst)
            if (
                link is not None
                and link._loss_rate == 0.0
                and getattr(link, "rx_nic", None) is not None
                and all(p.kind is PacketKind.DATA for p in pkts)
            ):
                _Burst(self, job, link)
                return
        self._pump_pkt(job, 0)

    def _pump_pkt(self, job: SendJob, i: int) -> None:
        cfg = self.config
        pkt = job.packets[i]
        # The DMA-done event's value is unused downstream, so it carries the
        # (job, index) continuation state — a bound method replaces a
        # per-packet closure.
        if pkt.kind is PacketKind.DATA:
            ev = self.host_bus.transfer(pkt.wire_bytes(cfg.header_bytes), (job, i))
        else:
            # Control descriptors live on the NIC; fixed setup only.
            ev = Event(self.engine)
            ev._ok = True
            ev._value = (job, i)
            self.engine._enqueue(ev, 1, cfg.dma_setup_s)
        ev.callbacks.append(self._pkt_out_cb)

    def _pkt_out_cb(self, ev: Event) -> None:
        job, i = ev._value
        self._pkt_out(job, i)

    def _pkt_out(self, job: SendJob, i: int) -> None:
        """DMA finished for packet ``i``: emit and continue the job.

        Merged emission: the legacy path spends two timeout events getting
        a DMA'd packet onto the wire (``nic_processing_s`` on the NIC, then
        the cut-through switch latency).  Both offsets are constants, and
        on an exclusive route nothing else can reserve the wire in the
        window — so the wire slot is reserved *now* at its exact future
        instant, with arithmetic matching the legacy callback chain term
        for term.
        """
        pkt = job.packets[i]
        if job.on_packet_out is not None:
            job.on_packet_out(pkt)
        self.tx_packets += 1
        link = self._routes[pkt.dst]
        s = (self.engine._now + self.config.nic_processing_s) \
            + self._switch.config.latency_s
        self._switch.packets_forwarded += 1
        nbytes = pkt.wire_bytes(link.header_bytes)
        link.packets_carried += 1
        link.bytes_carried += nbytes
        wev = link._pipe.transfer_at(s, nbytes, pkt)
        wev.callbacks.append(link._on_delivered)
        # Continue through a zero-delay hop, never synchronously: the legacy
        # loop resumes via a fresh credit-grant event, so every event already
        # pending at this instant — a same-instant arrival contending for the
        # shared host bus, above all — acts before the next reservation.
        # Job-to-job transitions take two hops (credit, then Store.get).
        if i + 1 < len(job.packets):
            self._hop(_HOP_NEXT_PKT, job, i + 1)
        else:
            self._hop(_HOP_JOB_DONE, job, 0)

    def _hop(self, code: int, job: Optional[SendJob], i: int) -> None:
        """Schedule a zero-delay continuation event (fresh heap sequence)."""
        ev = Event(self.engine)
        ev._ok = True
        ev._value = (code, job, i)
        ev.callbacks.append(self._hop_cb)
        self.engine._enqueue(ev, 1)

    def _hop_cb(self, ev: Event) -> None:
        code, job, i = ev._value
        if code == _HOP_NEXT_PKT:
            self._pump_pkt(job, i)
        elif code == _HOP_JOB_DONE:
            if job.on_done is not None:
                job.on_done()
            if self._urgent or self._bulk:
                self._hop(_HOP_NEXT_JOB, None, 0)
            else:
                # Nothing queued: the legacy loop would block in Store.get
                # here and resume via one fresh event on the next submit —
                # exactly the hop that submit() schedules when it finds the
                # pump idle.  Skipping the dead hop changes no ordering.
                self._tx_busy = False
        else:
            self._pump_next()

    def _next_job(self) -> Optional[SendJob]:
        if self._urgent:
            return self._urgent.popleft()
        if self._bulk:
            return self._bulk.popleft()
        return None

    def _tx_loop(self):
        cfg = self.config
        while True:
            yield self._job_ready.get()
            job = self._next_job()
            if job is None:  # token raced with an earlier drain
                continue
            for pkt in job.packets:
                if pkt.kind is PacketKind.DATA:
                    yield self.host_bus.transfer(pkt.wire_bytes(cfg.header_bytes))
                else:
                    # Control descriptors live on the NIC; fixed setup only.
                    yield self.engine.timeout(cfg.dma_setup_s)
                if job.on_packet_out is not None:
                    job.on_packet_out(pkt)
                yield self._take_credit()
                self.tx_packets += 1
                if self.tracer is not None:
                    self.tracer.record(self.engine.now, self.name, "packet_tx",
                                       (pkt.kind.value, pkt.msg_id, pkt.index))
                self.engine.schedule_callback(
                    cfg.nic_processing_s, lambda p=pkt: self._emit(p)
                )
                # Between packets of a bulk job, let urgent jobs cut in.
                if not job.urgent and self._urgent and pkt is not job.packets[-1]:
                    pass  # handled naturally: urgent jobs are separate jobs
            if job.on_done is not None:
                job.on_done()

    def _emit(self, pkt: Packet) -> None:
        if self.uplink is None:
            raise RuntimeError(f"{self.name}: not wired to a switch")
        self.uplink(pkt)
        self._return_credit()

    def _take_credit(self) -> Event:
        ev = Event(self.engine)
        if self._credits > 0:
            self._credits -= 1
            ev.succeed()
        else:
            self._credit_waiters.append(ev)
        return ev

    def _return_credit(self) -> None:
        if self._credit_waiters:
            self._credit_waiters.popleft().succeed()
        else:
            self._credits += 1

    # --------------------------------------------------------------- receive
    def deliver(self, packet: Packet) -> None:
        """Entry point for packets arriving from the switch."""
        self.rx_packets += 1
        if self.rx_handler is None:
            raise RuntimeError(f"{self.name}: no transport attached")
        if self.tracer is not None:
            # One record per *delivery attempt*: the conservation monitor
            # counts these to catch duplicated packets.
            self.tracer.record(self.engine.now, self.name, "nic_rx",
                               (packet.kind.value, packet.msg_id, packet.index))
        if packet.kind is PacketKind.DATA:
            ev = self.host_bus.transfer(
                packet.wire_bytes(self.config.header_bytes), packet
            )
            ev.callbacks.append(self._rx_done_cb)
        else:
            ev = Event(self.engine)
            ev._ok = True
            ev._value = packet
            ev.callbacks.append(self._rx_done_cb)
            self.engine._enqueue(ev, 1, self.config.nic_processing_s)

    def _rx_done_cb(self, ev: Event) -> None:
        self.rx_handler(ev._value)


class _TxStream:
    """Burst-side lazy stream: host-bus DMA reservations of the sender."""

    __slots__ = ("b", "seq")
    is_rx = False

    def __init__(self, b: "_Burst"):
        self.b = b

    def next_res(self):
        b = self.b
        return b.tx_next if b.i < b.n else None

    def commit_next(self) -> bool:
        return self.b._commit_tx()


class _RxStream:
    """Burst-side lazy stream: host-bus DMA reservations of the receiver."""

    __slots__ = ("b", "seq")
    is_rx = True

    def __init__(self, b: "_Burst"):
        self.b = b

    def next_res(self):
        arr = self.b.arrivals
        return arr[0] if arr else None

    def commit_next(self) -> bool:
        return self.b._commit_rx()


class _Burst:
    """A contiguous run of DATA fragments carried as one lazy transfer.

    All per-fragment timing — sender DMA chain, NIC processing + switch
    latency offsets, wire serialization, receiver DMA chain — is computed
    with exactly the arithmetic of the legacy per-packet path, but
    reservations are committed lazily through the route's
    :class:`~repro.sim.resources.BurstDomain` merge instead of one heap
    event per fragment per hop.  Only two heap events fire per burst in
    the uncontended case: sender completion (``on_done``, MPI local
    completion) at the last DMA-out, and receiver completion
    (``rx_handler`` with the first and last fragments) at the last DMA-in.
    Both are scheduled at optimistic lower-bound estimates and re-armed
    forward when foreign bus traffic stretches the chain.
    """

    __slots__ = (
        "nic", "rx_nic", "job", "pkts", "link", "switch", "engine", "domain",
        "sizes", "n", "bus", "wire", "rx_bus", "np_s", "sl_s",
        "i", "tx_next", "tx_done", "arrivals", "j", "rx_done",
    )

    def __init__(self, nic: NIC, job: SendJob, link):
        self.nic = nic
        self.rx_nic = link.rx_nic
        self.job = job
        self.pkts = job.packets
        self.link = link
        self.switch = nic._switch
        self.engine = nic.engine
        self.domain = nic._domain
        hdr = nic.config.header_bytes
        self.sizes = [p.wire_bytes(hdr) for p in self.pkts]
        self.n = len(self.sizes)
        self.bus = nic.host_bus
        self.wire = link._pipe
        self.rx_bus = self.rx_nic.host_bus
        self.np_s = nic.config.nic_processing_s
        self.sl_s = self.switch.config.latency_s
        self.i = 0
        self.tx_next = self.engine.now
        self.tx_done = 0.0
        self.arrivals: Deque[float] = deque()
        self.j = 0
        self.rx_done = 0.0
        dom = self.domain
        alone = not dom.streams
        dom.add(_TxStream(self))
        dom.add(_RxStream(self))
        # No eager materialize: the first fragment's reservation sits at
        # exactly `now`, and committing it here would jump ahead of any
        # arrival still pending at this instant (legacy order: arrivals
        # reserve the shared bus first).  The estimates below run the same
        # arithmetic over the uncommitted chain — one pass for both ends.
        if alone:
            tx_at, rx_at = self._chain_ends(want_rx=True)
        else:
            tx_at, rx_at = _project(dom, self, want_rx=True)
        self._arm(tx_at, self._tx_end)
        self._arm(rx_at, self._rx_end)

    # ------------------------------------------------------------ commits
    #
    # Every timestamp below reproduces the legacy per-packet event chain's
    # float arithmetic *exactly*, including the ``call + (x - call)``
    # round-trip the engine's delay-based scheduling performs — the legacy
    # chain observes event fire times, not the raw ``done`` values, and the
    # two can differ by a ulp.  Bit-identity of the figures depends on it.
    def _commit_tx(self) -> bool:
        i = self.i
        sz = self.sizes[i]
        bus = self.bus
        call = self.tx_next
        start = call
        if bus._busy_until > start:
            start = bus._busy_until
        # occupancy_time inlined here and below — parenthesized to keep the
        # exact float association of start + (setup + nbytes / bandwidth).
        done = start + (bus.setup_s + sz / bus.bandwidth_Bps)
        bus._busy_until = done
        bus.total_bytes += sz
        bus.total_items += 1
        fire = call + (done - call)  # host bus has zero latency
        self.tx_next = fire
        self.nic.tx_packets += 1
        # Merged emission onto the (exclusive) wire.
        s = (fire + self.np_s) + self.sl_s
        wire = self.wire
        wstart = s if wire._busy_until <= s else wire._busy_until
        wdone = wstart + (wire.setup_s + sz / wire.bandwidth_Bps)
        wire._busy_until = wdone
        wire.total_bytes += sz
        wire.total_items += 1
        self.switch.packets_forwarded += 1
        link = self.link
        link.packets_carried += 1
        link.bytes_carried += sz
        self.arrivals.append(s + ((wdone + wire.latency_s) - s))
        self.i = i + 1
        if self.i == self.n:
            self.tx_done = fire
            return True
        return False

    def _commit_rx(self) -> bool:
        w = self.arrivals.popleft()
        bus = self.rx_bus
        sz = self.sizes[self.j]
        start = w if bus._busy_until <= w else bus._busy_until
        done = start + (bus.setup_s + sz / bus.bandwidth_Bps)
        bus._busy_until = done
        bus.total_bytes += sz
        bus.total_items += 1
        self.j += 1
        if self.j == self.n:
            self.rx_done = w + (done - w)
            return True
        return False

    # --------------------------------------------------------- end events
    def _arm(self, at_s: float, fn) -> None:
        engine = self.engine
        ev = Event(engine)
        ev._ok = True
        # Absolute insertion: converting to a delay and back would cost a
        # ulp and desynchronize the fire time from the estimate.
        engine._enqueue_at(ev, 1, at_s if at_s > engine._now else engine._now)
        ev.callbacks.append(fn)

    def _tx_end(self, _ev) -> None:
        now = self.engine._now
        dom = self.domain
        if dom.streams:
            # tx_strict cannot stall: every reservation time is the
            # *previous* fragment's fire time, strictly below this event's.
            dom.materialize(now, tx_strict=True)
        if self.i == self.n and self.tx_done <= now:
            # on_done and the next job go through the NIC's hops, exactly
            # where the legacy loop's credit + Store.get events put them.
            self.nic._hop(_HOP_JOB_DONE, self.job, 0)
        else:
            self._arm(self._estimate_tx(), self._tx_end)

    def _rx_end(self, _ev) -> None:
        now = self.engine._now
        dom = self.domain
        if dom.streams:
            dom.materialize(now, tx_strict=True)
        if self.j == self.n and self.rx_done <= now:
            rx_nic = self.rx_nic
            rx_nic.rx_packets += self.n
            handler = rx_nic.rx_handler
            handler(self.pkts[0])
            handler(self.pkts[-1])
        else:
            self._arm(self._estimate_rx(), self._rx_end)

    # ---------------------------------------------------------- estimates
    #
    # Estimates project the *whole domain's* merged commit order forward on
    # shadow state — opposing bursts contending for the same host buses are
    # accounted exactly, so the end event fires once unless non-domain
    # traffic (control packets on the wire, a foreign DMA) lands after the
    # estimate.  Even then the projection stays a lower bound — foreign
    # reservations only push chains later — and the fire re-arms forward.
    # Crucially the shadow commits run the same float operations (including
    # the fire-time round-trips) as the real ones, so an undisturbed
    # estimate equals the eventual end time bit for bit.
    def _estimate_tx(self) -> float:
        if self.i == self.n:
            return self.tx_done
        if self._alone():
            return self._chain_ends(want_rx=False)[0]
        return _project(self.domain, self, want_rx=False)[0]

    def _estimate_rx(self) -> float:
        if self.j == self.n:
            return self.rx_done
        if self._alone():
            return self._chain_ends(want_rx=True)[1]
        return _project(self.domain, self, want_rx=True)[1]

    def _alone(self) -> bool:
        """True when every pending stream in the domain is this burst's —
        the common case, where projection needs no merge at all."""
        for s in self.domain.streams:
            if s.b is not self:
                return False
        return True

    def _chain_ends(self, want_rx: bool):
        """Straight-line projection for an uncontended burst.

        The transmit chain touches the sender bus and the wire; the
        receive chain touches only the receiver bus — with no other burst
        in the domain the merge order is immaterial and both chains
        simulate as plain loops.  Identical float operations to
        :func:`_project` and to the commits.
        """
        sizes = self.sizes
        arr = list(self.arrivals)
        t = self.tx_next
        if self.i < self.n:
            bus = self.bus
            wire = self.wire
            busy = bus._busy_until
            wbusy = wire._busy_until
            # occupancy_time inlined with hoisted attribute loads; the
            # parenthesization keeps start + (setup + n / bandwidth) exact.
            b_setup = bus.setup_s
            b_bw = bus.bandwidth_Bps
            w_setup = wire.setup_s
            w_bw = wire.bandwidth_Bps
            w_lat = wire.latency_s
            for k in range(self.i, self.n):
                start = t if busy <= t else busy
                done = start + (b_setup + sizes[k] / b_bw)
                busy = done
                t = t + (done - t)
                s = (t + self.np_s) + self.sl_s
                wstart = s if wbusy <= s else wbusy
                wdone = wstart + (w_setup + sizes[k] / w_bw)
                wbusy = wdone
                arr.append(s + ((wdone + w_lat) - s))
        if not want_rx:
            return t, 0.0
        rx_bus = self.rx_bus
        rbusy = rx_bus._busy_until
        r_setup = rx_bus.setup_s
        r_bw = rx_bus.bandwidth_Bps
        end = rbusy
        j = self.j
        for idx, w in enumerate(arr):
            start = w if rbusy <= w else rbusy
            done = start + (r_setup + sizes[j + idx] / r_bw)
            rbusy = done
            end = w + (done - w)
        return t, end


def _project(domain, target: _Burst, want_rx: bool):
    """Replay the domain's pending reservations on shadow state; return
    ``(tx_end, rx_end)`` for ``target`` (``rx_end`` is 0.0 unless
    ``want_rx``, which runs the replay through to the receive chain).

    The replay picks streams in exactly :meth:`BurstDomain.materialize`'s
    order — (reservation time, receive-before-transmit, stream seq) — so
    absent foreign traffic it *is* the future, bit for bit.
    """
    tx_end = target.tx_done  # already exact when the tx chain is done
    # Shadow state: per burst [i, tx_next, arrivals, j]; per pipe busy_until.
    pipes: dict = {}
    st: dict = {}
    for s in domain.streams:
        b = s.b
        if b not in st:
            st[b] = [b.i, b.tx_next, list(b.arrivals), b.j]
            for p in (b.bus, b.wire, b.rx_bus):
                if p not in pipes:
                    pipes[p] = p._busy_until
    while True:
        best = None
        best_key = (0.0, 0, 0)
        for s in domain.streams:
            state = st[s.b]
            if s.is_rx:
                if not state[2]:
                    continue
                key = (state[2][0], 0, s.seq)
            else:
                if state[0] >= s.b.n:
                    continue
                key = (state[1], 1, s.seq)
            if best is None or key < best_key:
                best, best_key = s, key
        if best is None:  # pragma: no cover - target pends, so unreachable
            raise RuntimeError("burst projection failed to converge")
        b = best.b
        state = st[b]
        if best.is_rx:
            w = state[2].pop(0)
            bus = b.rx_bus
            busy = pipes[bus]
            start = w if busy <= w else busy
            done = start + (bus.setup_s + b.sizes[state[3]] / bus.bandwidth_Bps)
            pipes[bus] = done
            state[3] += 1
            if want_rx and b is target and state[3] == b.n:
                return tx_end, w + (done - w)
        else:
            i = state[0]
            sz = b.sizes[i]
            bus = b.bus
            call = state[1]
            busy = pipes[bus]
            start = call if busy <= call else busy
            done = start + (bus.setup_s + sz / bus.bandwidth_Bps)
            pipes[bus] = done
            fire = call + (done - call)
            state[1] = fire
            s_ = (fire + b.np_s) + b.sl_s
            wire = b.wire
            wbusy = pipes[wire]
            wstart = s_ if wbusy <= s_ else wbusy
            wdone = wstart + (wire.setup_s + sz / wire.bandwidth_Bps)
            pipes[wire] = wdone
            state[2].append(s_ + ((wdone + wire.latency_s) - s_))
            state[0] = i + 1
            if b is target and state[0] == b.n:
                tx_end = fire
                if not want_rx:
                    return tx_end, 0.0
