"""Network-interface model (Myrinet LANai-class).

The NIC owns:

* the **host bus** — one DMA pipe shared by transmit and receive (the
  32/33 PCI bus of the era), which is what actually bounds aggregate MPI
  bandwidth;
* a **transmit engine** — streams packetized send jobs: DMA from host
  memory, then serialization onto the uplink, with bounded on-NIC buffering
  (wire credits) and a priority lane for small control packets;
* the **receive path** — inbound DATA packets are DMA'd to host memory
  (user buffer, bounce buffer or kernel ring — the transport decides what
  that memory *means*), then handed to the transport's ``rx_handler``;
  control packets skip the bus.

The NIC itself never touches the host CPU: interrupts, if any, are raised
by the transport from ``rx_handler``.  That separation is exactly the
OS-bypass vs. kernel-transport distinction COMB probes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from ..config import NicConfig
from ..sim.engine import Engine
from ..sim.events import Event
from ..sim.resources import Pipe, Store
from ..transport.packets import Packet, PacketKind

#: Maximum packets buffered on the NIC between host DMA and the wire.
NIC_TX_BUFFER_PKTS = 8


class SendJob:
    """A packetized transmit request.

    Parameters
    ----------
    packets:
        Wire packets, in order.
    on_packet_out:
        Called after each packet has been DMA'd off host memory.
    on_done:
        Called once the *last* packet has left host memory (MPI local
        completion: the send buffer is reusable).
    urgent:
        Control-lane jobs (RTS/CTS/ACK) that jump ahead of bulk data.
    """

    __slots__ = ("packets", "on_packet_out", "on_done", "urgent")

    def __init__(
        self,
        packets: List[Packet],
        on_packet_out: Optional[Callable[[Packet], None]] = None,
        on_done: Optional[Callable[[], None]] = None,
        urgent: bool = False,
    ):
        if not packets:
            raise ValueError("SendJob needs at least one packet")
        self.packets = packets
        self.on_packet_out = on_packet_out
        self.on_done = on_done
        self.urgent = urgent


class NIC:
    """One node's network interface."""

    def __init__(
        self,
        engine: Engine,
        config: NicConfig,
        node_id: int,
        name: str = "",
        tracer=None,
    ):
        self.engine = engine
        self.config = config
        self.node_id = node_id
        self.name = name or f"node{node_id}.nic"
        self.tracer = tracer
        #: Shared host DMA pipe (PCI): transmit and receive contend here.
        self.host_bus = Pipe(
            engine,
            bandwidth_Bps=config.host_dma_bandwidth_Bps,
            setup_s=config.dma_setup_s,
            name=f"{self.name}.bus",
        )
        #: Uplink towards the switch; set by the cluster builder.
        self.uplink: Optional[Callable[[Packet], None]] = None
        #: Inbound packet handler; set by the transport.
        self.rx_handler: Optional[Callable[[Packet], None]] = None
        self._bulk: Deque[SendJob] = deque()
        self._urgent: Deque[SendJob] = deque()
        self._job_ready = Store(engine, name=f"{self.name}.txq")
        self._credits = NIC_TX_BUFFER_PKTS
        self._credit_waiters: Deque[Event] = deque()
        self.tx_packets = 0
        self.rx_packets = 0
        engine.spawn(self._tx_loop(), name=f"{self.name}.tx")

    # -------------------------------------------------------------- transmit
    def submit(self, job: SendJob) -> None:
        """Queue a send job (urgent jobs preempt bulk jobs between packets)."""
        if job.urgent:
            self._urgent.append(job)
        else:
            self._bulk.append(job)
        self._job_ready.put(None)

    def _next_job(self) -> Optional[SendJob]:
        if self._urgent:
            return self._urgent.popleft()
        if self._bulk:
            return self._bulk.popleft()
        return None

    def _tx_loop(self):
        cfg = self.config
        while True:
            yield self._job_ready.get()
            job = self._next_job()
            if job is None:  # token raced with an earlier drain
                continue
            for pkt in job.packets:
                if pkt.kind is PacketKind.DATA:
                    yield self.host_bus.transfer(pkt.wire_bytes(cfg.header_bytes))
                else:
                    # Control descriptors live on the NIC; fixed setup only.
                    yield self.engine.timeout(cfg.dma_setup_s)
                if job.on_packet_out is not None:
                    job.on_packet_out(pkt)
                yield self._take_credit()
                self.tx_packets += 1
                if self.tracer is not None:
                    self.tracer.record(self.engine.now, self.name, "packet_tx",
                                       (pkt.kind.value, pkt.msg_id, pkt.index))
                self.engine.schedule_callback(
                    cfg.nic_processing_s, lambda p=pkt: self._emit(p)
                )
                # Between packets of a bulk job, let urgent jobs cut in.
                if not job.urgent and self._urgent and pkt is not job.packets[-1]:
                    pass  # handled naturally: urgent jobs are separate jobs
            if job.on_done is not None:
                job.on_done()

    def _emit(self, pkt: Packet) -> None:
        if self.uplink is None:
            raise RuntimeError(f"{self.name}: not wired to a switch")
        self.uplink(pkt)
        self._return_credit()

    def _take_credit(self) -> Event:
        ev = Event(self.engine)
        if self._credits > 0:
            self._credits -= 1
            ev.succeed()
        else:
            self._credit_waiters.append(ev)
        return ev

    def _return_credit(self) -> None:
        if self._credit_waiters:
            self._credit_waiters.popleft().succeed()
        else:
            self._credits += 1

    # --------------------------------------------------------------- receive
    def deliver(self, packet: Packet) -> None:
        """Entry point for packets arriving from the switch."""
        self.rx_packets += 1
        if self.rx_handler is None:
            raise RuntimeError(f"{self.name}: no transport attached")
        if self.tracer is not None:
            # One record per *delivery attempt*: the conservation monitor
            # counts these to catch duplicated packets.
            self.tracer.record(self.engine.now, self.name, "nic_rx",
                               (packet.kind.value, packet.msg_id, packet.index))
        if packet.kind is PacketKind.DATA:
            ev = self.host_bus.transfer(
                packet.wire_bytes(self.config.header_bytes), packet
            )
            ev.callbacks.append(lambda e: self.rx_handler(e.value))
        else:
            self.engine.schedule_callback(
                self.config.nic_processing_s,
                lambda p=packet: self.rx_handler(p),
            )
