"""Cluster builder: nodes wired through a network topology."""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from ..sim.engine import Engine
from ..sim.rng import RngRegistry
from ..sim.trace import Tracer
from .node import Node
from .switch import Switch
from .topology import Crossbar, Topology


class Cluster:
    """A set of :class:`Node`\\ s connected by a :class:`Topology`.

    This is hardware only; transports and MPI endpoints are layered on by
    :func:`repro.mpi.world.build_world`.  The default topology is the
    paper's single crossbar switch; pass ``topology=`` to build N-rank
    worlds on other fabrics (see :mod:`repro.hardware.topology`).
    """

    def __init__(
        self,
        engine: Engine,
        system: SystemConfig,
        n_nodes: int = 2,
        tracer: Optional[Tracer] = None,
        topology: Optional[Topology] = None,
    ):
        if n_nodes < 2:
            raise ValueError("a cluster needs at least two nodes")
        self.engine = engine
        self.system = system
        self.tracer = tracer
        self.rng = RngRegistry(system.seed)
        self.topology = topology if topology is not None else Crossbar()
        #: The crossbar's switch (``None`` on multi-switch topologies).
        self.switch: Optional[Switch] = None
        self.nodes: List[Node] = []
        self.topology.wire(self, n_nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, idx: int) -> Node:
        return self.nodes[idx]
