"""Cluster builder: nodes wired through the switch."""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from ..sim.engine import Engine
from ..sim.rng import RngRegistry
from ..sim.trace import Tracer
from .node import Node
from .switch import Switch


class Cluster:
    """A set of :class:`Node`\\ s connected by one cut-through switch.

    This is hardware only; transports and MPI endpoints are layered on by
    :func:`repro.mpi.world.build_world`.
    """

    def __init__(
        self,
        engine: Engine,
        system: SystemConfig,
        n_nodes: int = 2,
        tracer: Optional[Tracer] = None,
    ):
        if n_nodes < 2:
            raise ValueError("a cluster needs at least two nodes")
        if n_nodes > system.machine.switch.ports:
            raise ValueError(
                f"{n_nodes} nodes exceed the switch's "
                f"{system.machine.switch.ports} ports"
            )
        self.engine = engine
        self.system = system
        self.tracer = tracer
        self.rng = RngRegistry(system.seed)
        self.switch = Switch(
            engine, system.machine.switch, system.machine.nic, tracer=tracer
        )
        self.nodes: List[Node] = []
        loss = system.machine.fault.data_loss_rate
        for nid in range(n_nodes):
            node = Node(engine, system, nid, tracer=tracer)
            node.nic.uplink = self.switch.ingress
            self.switch.attach(nid, node.nic.deliver)
            if loss > 0.0:
                self.switch.out_link(nid).set_loss(
                    loss, self.rng.stream(f"loss.link{nid}")
                )
            self.nodes.append(node)
        if n_nodes == 2 and tracer is None and engine.trace is None:
            # Exclusive routes: each wire carries exactly one sender's
            # traffic, so the NICs can run the event-lean fast pump and
            # burst-batch multi-fragment messages (see NIC.enable_fast).
            # Traced runs keep the legacy per-packet path so observer and
            # sanitizer see the exact per-packet record stream.
            from ..sim.resources import BurstDomain

            domain = BurstDomain()
            routes = {nid: self.switch.out_link(nid) for nid in range(n_nodes)}
            for nid in range(n_nodes):
                routes[nid].rx_nic = self.nodes[nid].nic
                self.nodes[nid].nic.host_bus.domain = domain
                routes[nid]._pipe.domain = domain
            for node in self.nodes:
                node.nic.enable_fast(self.switch, routes, domain)

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, idx: int) -> Node:
        return self.nodes[idx]
