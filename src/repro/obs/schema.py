"""Declared trace-event schemas: the contract between emitters and consumers.

Every :meth:`~repro.obs.tracer.ObsTracer.record` call site emits a
``(time_s, source, kind, detail)`` tuple; the observer, the span
stitcher, the attribution pass, and the exporters all index into
``detail`` positionally.  Until now the field layout of each kind lived
in scattered ``# Schema:`` comments next to the emitters — drift (an
emitter growing a field, a consumer reading a stale index) was only
caught when an exporter test happened to cover the changed kind.

This registry is the single declared source of truth.  comb-lint's
OBS001 cross-checks every emitter call site against it, so schema drift
fails at lint time; consumers can import :func:`schema_for` to name
their indices instead of hard-coding them.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: kind → positional field names of ``detail`` (a tuple at the emitter).
#: A declared kind whose detail is not a tuple (``kernel`` carries a
#: repr string, ``q_*`` carry ``None``) names its single payload field.
EVENT_SCHEMAS: Dict[str, Tuple[str, ...]] = {
    # -- engine -----------------------------------------------------------
    "kernel": ("event_repr",),
    "schedule_past": ("delay_s",),
    # -- wire / NIC (one shape, so span stitching joins on position) ------
    "packet_tx": ("packet_kind", "msg_id", "packet_index"),
    "wire_tx": ("packet_kind", "msg_id", "packet_index"),
    "wire_drop": ("packet_kind", "msg_id", "packet_index"),
    "wire_rx": ("packet_kind", "msg_id", "packet_index"),
    "nic_rx": ("packet_kind", "msg_id", "packet_index"),
    # -- transport protocol ----------------------------------------------
    "rts_rx": ("msg_id",),
    "get_issued": ("msg_id",),
    "gm_tokens": ("node", "tokens_left", "tokens_max"),
    "gm_token_wait": ("msg_id", "dest_node"),
    # -- MPI request lifecycle -------------------------------------------
    "req_post": ("req_id", "kind", "peer", "tag", "nbytes"),
    "req_complete": ("req_id", "kind"),
    "msg_bind": ("req_id", "msg_id", "kind"),
    # -- method drivers ---------------------------------------------------
    "pww_phase": ("batch_index", "cycle_start_s", "post_s", "work_s",
                  "wait_s"),
    "poll": ("completed",),
    "poll_empty": ("empty_cycles",),
    "poll_window": ("t_start_s", "elapsed_s", "work_total_s", "polls",
                    "empty_poll_s"),
    # -- executor point markers ------------------------------------------
    "point_start": ("kind", "system", "msg_bytes", "interval_iters",
                    "warmup_windows"),
    "point_end": ("kind",),
    "point_cached": ("kind",),
}

#: Kind-name prefixes emitted with dynamically composed kinds: the fault
#: injector (``fault_<name>``) and the queue-depth observers (``q_<op>``
#: / ``q_unex_<op>``).  Call sites under these prefixes carry free-form
#: details and are exempt from positional field checking.
WILDCARD_KIND_PREFIXES: Tuple[str, ...] = ("fault_", "q_")


def schema_for(kind: str) -> Optional[Tuple[str, ...]]:
    """Declared field names of ``kind``'s detail tuple, if declared."""
    return EVENT_SCHEMAS.get(kind)


def is_known_kind(kind: str) -> bool:
    """Is ``kind`` declared, exactly or under a wildcard prefix?"""
    return kind in EVENT_SCHEMAS or kind.startswith(WILDCARD_KIND_PREFIXES)


__all__ = [
    "EVENT_SCHEMAS",
    "WILDCARD_KIND_PREFIXES",
    "schema_for",
    "is_known_kind",
]
