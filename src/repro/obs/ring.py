"""Bounded ring buffer for trace events.

Long sweeps can emit millions of events; an unbounded list (what the
plain :class:`~repro.sim.trace.Tracer` keeps) would make tracing a
memory hazard at production scale.  The ring keeps the *newest*
``capacity`` items and counts what it overwrote, so exporters can state
their truncation honestly instead of silently presenting a partial
timeline as complete.
"""

from __future__ import annotations

from typing import Any, Iterator, List


class RingBuffer:
    """Fixed-capacity FIFO that overwrites its oldest entries when full.

    Iteration yields items oldest-to-newest.  :attr:`dropped` counts how
    many items have been overwritten since construction (0 until the
    buffer wraps).
    """

    __slots__ = ("capacity", "dropped", "_items", "_head")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: Items overwritten (lost) since construction.
        self.dropped = 0
        self._items: List[Any] = []
        self._head = 0  # index of the oldest item once the buffer is full

    def append(self, item: Any) -> None:
        """Add ``item``, evicting the oldest entry if at capacity."""
        if len(self._items) < self.capacity:
            self._items.append(item)
        else:
            self._items[self._head] = item
            self._head += 1
            if self._head == self.capacity:
                self._head = 0
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        if self._head == 0:
            return iter(list(self._items))
        return iter(self._items[self._head:] + self._items[: self._head])

    def to_list(self) -> List[Any]:
        """The retained items, oldest first."""
        return list(self)

    def clear(self) -> None:
        """Drop every retained item (``dropped`` keeps its count)."""
        self._items.clear()
        self._head = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RingBuffer {len(self._items)}/{self.capacity}"
            f" dropped={self.dropped}>"
        )
