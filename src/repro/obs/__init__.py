"""``repro.obs`` — the observability layer: tracing, metrics, profiling.

The subsystem rides the same ambient-attach pattern as the sanitizer
(:mod:`repro.verify`): an :class:`Observer` made ambient with
:func:`use_observer` attaches its :class:`ObsTracer` to every world built
inside the block through the simulator's ``Tracer`` seam.  Detached, the
hot paths pay a single ``is None`` check per emission site — zero
allocation, zero I/O.

Three layers, usable independently:

* :class:`ObsTracer` — a structured event tracer that records
  engine/MPI/transport events into per-kind ring buffers
  (:class:`RingBuffer`), bounding memory regardless of run length.
* :class:`MetricsRegistry` — named :class:`Counter`\\ s, :class:`Gauge`\\ s
  and fixed-bucket :class:`Histogram`\\ s; the :class:`Observer` derives
  simulation metrics (phase breakdowns, poll hit/miss, rendezvous stalls,
  queue depths) from trace events, and :class:`~repro.core.executor.
  SweepExecutor` feeds wall-clock stage profiles into the same registry.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (loads in
  ``about:tracing`` / Perfetto) and CSV timelines, stamped with
  :data:`TRACE_SCHEMA_VERSION`.

The observer never influences the simulation: every hook is a passive
read, which is what keeps observed runs bit-identical to bare runs (the
differential battery in ``tests/test_golden.py`` and
``tests/test_obs_properties.py`` enforces exactly that).
"""

from .attribution import (
    ALL_CAUSES,
    PointAttribution,
    attribute_events,
    attribute_window,
    format_attribution,
)
from .compare import (
    CompareReport,
    MetricComparison,
    compare_history,
    compare_paths,
    compare_samples,
)
from .context import current_observer, use_observer
from .ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    format_history,
    history_aggregate,
    read_records,
)
from .live import (
    TELEMETRY_SCHEMA_VERSION,
    TelemetryChannel,
    validate_stream_event,
    validate_stream_line,
)
from .live_consumers import (
    ProgressRenderer,
    StreamWriter,
    SweepState,
    TelemetryHub,
)
from .export import (
    TRACE_SCHEMA_VERSION,
    chrome_trace,
    write_chrome_trace,
    write_csv_timeline,
    write_metrics,
)
from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS_S,
    DEFAULT_SIM_TIME_BUCKETS_S,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .observer import Observer
from .ring import RingBuffer
from .spans import MessageSpans, Span, SpanForest, stitch
from .tracer import ObsEvent, ObsTracer

__all__ = [
    "ALL_CAUSES",
    "CompareReport",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_SIM_TIME_BUCKETS_S",
    "Gauge",
    "Histogram",
    "LEDGER_SCHEMA_VERSION",
    "MessageSpans",
    "MetricComparison",
    "MetricsRegistry",
    "ObsEvent",
    "ObsTracer",
    "Observer",
    "PointAttribution",
    "ProgressRenderer",
    "RingBuffer",
    "RunLedger",
    "Span",
    "SpanForest",
    "StreamWriter",
    "SweepState",
    "TELEMETRY_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "TelemetryChannel",
    "TelemetryHub",
    "attribute_events",
    "attribute_window",
    "chrome_trace",
    "compare_history",
    "compare_paths",
    "compare_samples",
    "current_observer",
    "format_attribution",
    "format_history",
    "history_aggregate",
    "read_records",
    "stitch",
    "use_observer",
    "validate_stream_event",
    "validate_stream_line",
    "write_chrome_trace",
    "write_csv_timeline",
    "write_metrics",
]
