"""Trace and metrics exporters: Chrome ``trace_event`` JSON, CSV, sidecars.

The Chrome format is the `trace_event` JSON-array flavour consumed by
``about:tracing`` and Perfetto: one object per event with ``ph`` (phase),
``ts``/``dur`` in *microseconds*, and integer ``pid``/``tid``.  Mapping:

* ``pww_phase`` events expand into three ``"X"`` (complete) slices —
  post, work, wait — so the PWW cycle structure is visible as nested
  bars on the worker's row;
* queue-depth (``q_*``) and GM-token events become ``"C"`` (counter)
  tracks;
* every other event is an ``"i"`` (instant) mark on its source's row.

Each export carries :data:`TRACE_SCHEMA_VERSION` in ``otherData``.
Compatibility rule: within one schema version, changes are strictly
additive (new kinds, new ``args`` keys); renaming or removing a kind, or
changing the meaning of an existing ``detail`` tuple slot, bumps the
version.  Consumers must ignore kinds and args they do not know.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from .metrics import MetricsRegistry
from .observer import _DEPTH_DELTA
from .tracer import ObsEvent

#: Version stamp written into every trace/metrics export (see the module
#: docstring for the compatibility rule).
TRACE_SCHEMA_VERSION = 1

#: The sweep executor's markers render as their own *process* (sim events
#: stay on pid 0), so executor stages align with sim spans side by side.
EXECUTOR_PID = 1

#: Tracer kinds the executor emits around points (source ``executor``).
_EXECUTOR_KINDS = ("point_start", "point_end", "point_cached")

_SEC_TO_US = 1e6


def _jsonable(value: Any) -> Any:
    """JSON-safe form of an event detail (repr fallback, never raises)."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def _executor_rows(
    sim_events: Sequence[ObsEvent],
    exec_events: Sequence[ObsEvent],
) -> List[Dict[str, Any]]:
    """``"X"`` slices / instant marks for the executor process row.

    Executor markers carry no sim timestamp of their own (points start
    at sim t=0 on fresh worlds), so each slice's extent is derived from
    the sim events *enclosed* between its ``point_start`` and
    ``point_end`` in global seq order.  A pair enclosing no sim events
    (fully evicted rings) degrades to a zero-length slice at t=0.
    """
    rows: List[Dict[str, Any]] = []
    merged = sorted(
        list(sim_events) + list(exec_events), key=lambda ev: ev.seq
    )
    current: Optional[ObsEvent] = None
    lo_s: Optional[float] = None
    hi_s: Optional[float] = None
    for ev in merged:
        if ev.source == "executor" and ev.kind in _EXECUTOR_KINDS:
            if ev.kind == "point_start":
                current, lo_s, hi_s = ev, None, None
            elif ev.kind == "point_end" and current is not None:
                kind, system, msg_bytes, interval_iters, _warmup_windows = (
                    current.detail
                )
                start_s = lo_s if lo_s is not None else 0.0
                dur_s = (hi_s - lo_s) if lo_s is not None \
                    and hi_s is not None else 0.0
                rows.append({
                    "ph": "X", "name": f"point.{kind}", "cat": "executor",
                    "pid": EXECUTOR_PID, "tid": 1,
                    "ts": start_s * _SEC_TO_US, "dur": dur_s * _SEC_TO_US,
                    "args": {
                        "system": system,
                        "msg_bytes": msg_bytes,
                        "interval_iters": interval_iters,
                    },
                })
                current = None
            elif ev.kind == "point_cached":
                rows.append({
                    "ph": "i", "name": "point.cached", "cat": "executor",
                    "s": "t", "pid": EXECUTOR_PID, "tid": 1, "ts": 0,
                    "args": {"kind": _jsonable(ev.detail)},
                })
        elif current is not None:
            lo_s = ev.time_s if lo_s is None else min(lo_s, ev.time_s)
            hi_s = ev.time_s if hi_s is None else max(hi_s, ev.time_s)
    return rows


def chrome_trace(
    events: Sequence[ObsEvent],
    label: str = "comb",
    dropped: Optional[Dict[str, int]] = None,
) -> Dict[str, Any]:
    """Render ``events`` as a Chrome ``trace_event`` JSON document.

    ``dropped`` is the tracer's per-kind ring-buffer drop accounting
    (:meth:`~repro.obs.tracer.ObsTracer.dropped`); when given, it lands
    both in ``otherData["dropped_events"]`` and as visible instant marks
    on a dedicated ``obs.tracer`` row, so a truncated trace states its
    own truncation inside Perfetto instead of hiding it.

    Executor point markers (source ``executor``) render as a separate
    process (:data:`EXECUTOR_PID`): each ``point_start``/``point_end``
    pair becomes one ``"X"`` slice spanning the sim-time extent of the
    events it encloses, and ``point_cached`` becomes an instant mark —
    so sweep structure and per-point sim activity line up in Perfetto.
    """
    exec_events = [
        ev for ev in events
        if ev.source == "executor" and ev.kind in _EXECUTOR_KINDS
    ]
    events = [
        ev for ev in events
        if not (ev.source == "executor" and ev.kind in _EXECUTOR_KINDS)
    ]
    sources = sorted({ev.source for ev in events})
    tid_of = {source: tid for tid, source in enumerate(sources, start=1)}
    out: List[Dict[str, Any]] = [
        {
            "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
            "args": {"name": f"{label} (simulated time)"},
        }
    ]
    for source, tid in tid_of.items():
        out.append({
            "ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
            "args": {"name": source},
        })

    depth_by_source: Dict[str, int] = {}
    for ev in events:
        tid = tid_of[ev.source]
        ts_us = ev.time_s * _SEC_TO_US
        if ev.kind == "pww_phase":
            batch, t0_s, post_s, work_s, wait_s = ev.detail
            start_s = t0_s
            for phase, dur_s in (
                ("post", post_s), ("work", work_s), ("wait", wait_s)
            ):
                out.append({
                    "ph": "X", "name": f"pww.{phase}", "cat": "pww",
                    "pid": 0, "tid": tid,
                    "ts": start_s * _SEC_TO_US, "dur": dur_s * _SEC_TO_US,
                    "args": {"batch": batch},
                })
                start_s += dur_s
        elif ev.kind in _DEPTH_DELTA:
            depth = depth_by_source.get(ev.source, 0) + _DEPTH_DELTA[ev.kind]
            depth_by_source[ev.source] = depth
            out.append({
                "ph": "C", "name": f"{ev.source}.depth", "cat": "queue",
                "pid": 0, "tid": tid, "ts": ts_us,
                "args": {"depth": depth},
            })
        elif ev.kind == "gm_tokens":
            node, tokens, _max_tokens = ev.detail
            out.append({
                "ph": "C", "name": f"gm.tokens.node{node}", "cat": "gm",
                "pid": 0, "tid": tid, "ts": ts_us,
                "args": {"tokens": tokens},
            })
        else:
            out.append({
                "ph": "i", "name": ev.kind, "cat": "sim", "s": "t",
                "pid": 0, "tid": tid, "ts": ts_us,
                "args": {"detail": _jsonable(ev.detail)},
            })
    if exec_events:
        out.append({
            "ph": "M", "name": "process_name", "pid": EXECUTOR_PID,
            "tid": 0, "args": {"name": f"{label} (executor)"},
        })
        out.append({
            "ph": "M", "name": "thread_name", "pid": EXECUTOR_PID,
            "tid": 1, "args": {"name": "sweep points"},
        })
        out.extend(_executor_rows(events, exec_events))
    other_data: Dict[str, Any] = {
        "schema_version": TRACE_SCHEMA_VERSION,
        "generator": "comb-obs",
        "time_base": "simulated seconds, exported as microseconds",
    }
    if dropped is not None:
        other_data["dropped_events"] = dict(sorted(dropped.items()))
        if dropped:
            drop_tid = len(sources) + 1
            out.append({
                "ph": "M", "name": "thread_name", "pid": 0, "tid": drop_tid,
                "args": {"name": "obs.tracer"},
            })
            for kind, count in sorted(dropped.items()):
                out.append({
                    "ph": "i", "name": f"dropped.{kind}", "cat": "obs",
                    "s": "g", "pid": 0, "tid": drop_tid, "ts": 0,
                    "args": {"dropped": count},
                })
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": other_data,
    }


def write_chrome_trace(
    events: Sequence[ObsEvent],
    path: Union[str, Path],
    label: str = "comb",
    dropped: Optional[Dict[str, int]] = None,
) -> Path:
    """Write the Chrome trace JSON for ``events`` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace(events, label=label, dropped=dropped)) + "\n"
    )
    return path


def write_csv_timeline(
    events: Sequence[ObsEvent],
    path: Union[str, Path],
    dropped: Optional[Dict[str, int]] = None,
) -> Path:
    """Write ``events`` as a flat CSV timeline (one row per event).

    When ``dropped`` is given, one trailing row per truncated kind
    (source ``obs.tracer``, kind ``dropped``, seq ``-1``) records how
    many events of that kind the ring buffers evicted.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["seq", "time_s", "source", "kind", "detail"])
        for ev in events:
            writer.writerow([
                ev.seq, repr(ev.time_s), ev.source, ev.kind,
                json.dumps(_jsonable(ev.detail)),
            ])
        if dropped:
            for kind, count in sorted(dropped.items()):
                writer.writerow([
                    -1, repr(0.0), "obs.tracer", "dropped",
                    json.dumps({"kind": kind, "dropped": count}),
                ])
    return path


def write_metrics(
    metrics: Union[MetricsRegistry, Dict[str, Any]],
    path: Union[str, Path],
    extra: Union[Dict[str, Any], None] = None,
) -> Path:
    """Write a metrics sidecar JSON next to a result set.

    ``metrics`` may be a registry (snapshotted here) or an
    already-snapshotted document; ``extra`` merges additional top-level
    keys (run configuration, wall time) into the sidecar.
    """
    doc: Dict[str, Any] = {
        "schema_version": TRACE_SCHEMA_VERSION,
        "metrics": metrics.to_dict()
        if isinstance(metrics, MetricsRegistry) else metrics,
    }
    if extra:
        doc.update(extra)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
