"""Persistent run ledger: an append-only JSONL history of every sweep.

"MPI Benchmarking Revisited" (Hunold & Carpen-Amarie) argues that a
single benchmark invocation is a sample, not a measurement — meaning is
in the *history*.  The ledger makes that history a first-class artifact:
every executor-driven run appends one ``point`` record per point
outcome (config hash, method, system, hit/miss, wall, seed) and one
closing ``run`` record (totals, cache stats, compiled flag, replicate
count) to ``results/ledger/ledger.jsonl``.

Append-only JSONL is deliberate: concurrent runs interleave whole lines
(single ``write`` per line, under ``O_APPEND`` semantics), a crashed run
leaves at most one torn final line (tolerated and counted by
:func:`read_records`), and the file needs no migration — old and new
record shapes coexist, distinguished by ``rec`` and ``v``.

Consumers: ``comb history`` (filter / aggregate / per-figure wall
trend via :func:`history_aggregate`), and ``comb compare``, which
accepts a ledger file as a run-history source (each ``run`` record
becomes one sample; see :func:`run_record_samples`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Tuple

#: Version stamp on every ledger record; additive-only within a version.
LEDGER_SCHEMA_VERSION = 1

#: Where runs append by default (override with ``--ledger-dir``).
DEFAULT_LEDGER_DIR = Path("results/ledger")

#: The single append-only file inside the ledger dir.
LEDGER_FILENAME = "ledger.jsonl"


def ledger_path(ledger_dir: Path) -> Path:
    return ledger_dir / LEDGER_FILENAME


class RunLedger:
    """Appends one run's records to the ledger file.

    Opening errors propagate as ``OSError`` (the CLI renders the
    one-line message); once open, each record is a single flushed
    ``write`` of one line, so concurrent runs interleave cleanly.
    """

    def __init__(self, ledger_dir: Path, run_id: str, cmd: str) -> None:
        self.run_id = run_id
        self.cmd = cmd
        self.points = 0
        ledger_dir.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] = ledger_path(ledger_dir).open("a")

    def _append(self, doc: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()

    def record_point(
        self,
        key: str,
        kind: str,
        system: str,
        outcome: str,
        wall_s: Optional[float],
        seed: int,
        figure: Optional[str] = None,
    ) -> None:
        """One point outcome: ``hit`` | ``miss`` | ``duplicate``."""
        self.points += 1
        self._append({
            "v": LEDGER_SCHEMA_VERSION,
            "rec": "point",
            "run_id": self.run_id,
            "key": key,
            "kind": kind,
            "system": system,
            "outcome": outcome,
            "wall_s": wall_s,
            "seed": seed,
            "figure": figure,
        })

    def record_run(
        self,
        wall_s: float,
        timestamp: str,
        compiled: bool,
        reps: int,
        cache: Dict[str, Any],
        figures: Optional[Dict[str, float]] = None,
        total_s: Optional[float] = None,
        claims_ok: Optional[bool] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        """The closing record summarizing the whole run."""
        doc: Dict[str, Any] = {
            "v": LEDGER_SCHEMA_VERSION,
            "rec": "run",
            "run_id": self.run_id,
            "cmd": self.cmd,
            "timestamp": timestamp,
            "wall_s": wall_s,
            "total_s": total_s if total_s is not None else wall_s,
            "compiled": compiled,
            "reps": reps,
            "points": self.points,
            "cache": {k: cache[k] for k in sorted(cache)},
            "figures": (
                {k: figures[k] for k in sorted(figures)}
                if figures else {}
            ),
            "claims_ok": claims_ok,
        }
        if extra:
            doc.update(extra)
        self._append(doc)

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - teardown race
            pass


def read_records(path: Path) -> Tuple[List[Dict[str, Any]], int]:
    """All parseable records in file order, plus the corrupt-line count.

    A torn final line from a crashed run (or any non-JSON garbage) is
    skipped and *counted*, never fatal — the ledger's honesty contract
    matches the telemetry queue's: loss is reported, not hidden.
    """
    records: List[Dict[str, Any]] = []
    corrupt = 0
    try:
        text = path.read_text()
    except OSError:
        return [], 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            corrupt += 1
            continue
        if isinstance(doc, dict) and doc.get("rec") in ("point", "run"):
            records.append(doc)
        else:
            corrupt += 1
    return records, corrupt


def filter_records(
    records: List[Dict[str, Any]],
    rec: Optional[str] = None,
    figure: Optional[str] = None,
    system: Optional[str] = None,
    kind: Optional[str] = None,
    last: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """``comb history``'s filters; ``last`` keeps the newest N *runs*.

    ``figure`` matches point records by their ``figure`` field and run
    records by figure presence in their ``figures`` map.
    """
    out = records
    if rec is not None:
        out = [r for r in out if r.get("rec") == rec]
    if figure is not None:
        out = [
            r for r in out
            if r.get("figure") == figure
            or (isinstance(r.get("figures"), dict)
                and figure in r["figures"])
        ]
    if system is not None:
        out = [r for r in out if r.get("system") == system
               or r.get("rec") == "run"]
    if kind is not None:
        out = [r for r in out if r.get("kind") == kind
               or r.get("rec") == "run"]
    if last is not None and last >= 0:
        run_ids: List[str] = []
        for record in out:
            run_id = str(record.get("run_id"))
            if run_id not in run_ids:
                run_ids.append(run_id)
        keep = set(run_ids[-last:])
        out = [r for r in out if str(r.get("run_id")) in keep]
    return out


def history_aggregate(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Deterministic aggregates over ledger records (file order).

    Repeated invocations over the same ledger produce byte-identical
    output: iteration is file order, every map is key-sorted, and no
    wall-clock or randomness enters.
    """
    runs = [r for r in records if r.get("rec") == "run"]
    points = [r for r in records if r.get("rec") == "point"]
    outcomes: Dict[str, int] = {}
    miss_wall_s = 0.0
    miss_n = 0
    per_kind: Dict[str, int] = {}
    for record in points:
        outcome = str(record.get("outcome"))
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        kind = str(record.get("kind"))
        per_kind[kind] = per_kind.get(kind, 0) + 1
        wall_s = record.get("wall_s")
        if outcome == "miss" and isinstance(wall_s, (int, float)):
            miss_wall_s += float(wall_s)
            miss_n += 1
    trend: Dict[str, List[float]] = {}
    run_walls: List[float] = []
    for record in runs:
        wall_s = record.get("wall_s")
        if isinstance(wall_s, (int, float)):
            run_walls.append(float(wall_s))
        figures = record.get("figures")
        if isinstance(figures, dict):
            for fig_id in sorted(figures):
                fig_wall = figures[fig_id]
                if isinstance(fig_wall, (int, float)):
                    trend.setdefault(fig_id, []).append(float(fig_wall))
    return {
        "runs": len(runs),
        "points": len(points),
        "outcomes": {k: outcomes[k] for k in sorted(outcomes)},
        "points_by_kind": {k: per_kind[k] for k in sorted(per_kind)},
        "mean_miss_wall_s": (miss_wall_s / miss_n) if miss_n else None,
        "run_wall_s": run_walls,
        "figure_wall_trend_s": {k: trend[k] for k in sorted(trend)},
    }


def format_history(
    aggregate: Dict[str, Any], corrupt: int = 0
) -> str:
    """Human rendering of :func:`history_aggregate` (deterministic)."""
    lines = [
        f"ledger: {aggregate['runs']} runs, {aggregate['points']} "
        f"point records"
    ]
    outcomes = aggregate.get("outcomes") or {}
    if outcomes:
        lines.append(
            "  outcomes: "
            + ", ".join(f"{k}={v}" for k, v in outcomes.items())
        )
    by_kind = aggregate.get("points_by_kind") or {}
    if by_kind:
        lines.append(
            "  kinds:    "
            + ", ".join(f"{k}={v}" for k, v in by_kind.items())
        )
    mean_miss_wall_s = aggregate.get("mean_miss_wall_s")
    if mean_miss_wall_s is not None:
        lines.append(f"  mean miss wall: {mean_miss_wall_s:.4f}s")
    run_walls = aggregate.get("run_wall_s") or []
    if run_walls:
        walls = " ".join(f"{w:.2f}" for w in run_walls)
        lines.append(f"  run wall trend (s): {walls}")
    for fig_id, trend in (aggregate.get("figure_wall_trend_s") or {}).items():
        walls = " ".join(f"{w:.3f}" for w in trend)
        lines.append(f"  {fig_id} wall trend (s): {walls}")
    if corrupt:
        lines.append(f"  ({corrupt} corrupt lines skipped)")
    return "\n".join(lines)


def run_record_samples(path: Path) -> List[Dict[str, Any]]:
    """The ledger's ``run`` records, for ``comb compare`` sampling.

    Each run record already carries the ``total_s`` / ``figures`` shape
    :func:`repro.obs.compare.scalar_profile` understands, so a ledger
    file plugs straight in as a history source.
    """
    records, _corrupt = read_records(path)
    return [r for r in records if r.get("rec") == "run"]


__all__ = [
    "DEFAULT_LEDGER_DIR",
    "LEDGER_FILENAME",
    "LEDGER_SCHEMA_VERSION",
    "RunLedger",
    "filter_records",
    "format_history",
    "history_aggregate",
    "ledger_path",
    "read_records",
    "run_record_samples",
]
