"""Live sweep telemetry: a streaming channel from workers to the parent.

The rest of :mod:`repro.obs` is post-hoc — traces, metrics, and
attribution exist only after a run finishes.  This module is the
*during*: :class:`TelemetryChannel` carries point lifecycle events
(``point_start`` / ``point_end`` / ``point_cached``) and periodic
per-worker heartbeats (events processed, sim-clock position) from
:class:`~repro.core.executor.SweepExecutor` spawn-pool workers to the
parent over a bounded multiprocessing-safe queue.

The channel follows the ring buffers' honesty contract: it never blocks
the simulation to deliver telemetry.  Emissions into a full queue are
*dropped and counted*, per event kind per process, and every subsequent
successful lifecycle/heartbeat emission carries the emitting process's
cumulative drop counts — so the parent can always state how much
telemetry was lost, even under saturation.  Lifecycle events
(``point_start`` / ``point_end``) block for at most
:data:`LIFECYCLE_PUT_TIMEOUT_S` before dropping; heartbeats never block.

Telemetry is observation-only and strictly detachable: with no channel
attached the executor takes its exact previous code path, and simulated
results are bit-identical with or without a channel (the stream carries
wall-clock metadata *about* points, never anything that feeds back into
them).

The NDJSON stream schema (one JSON object per line, every line stamped
``"v": TELEMETRY_SCHEMA_VERSION``) is declared in
:data:`STREAM_EVENT_FIELDS` and checked by :func:`validate_stream_event`
— the same validator CI runs over every emitted line, and the contract
the future HTTP serving layer will subscribe to.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_mod
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Version stamp carried by every stream event.  Compatibility rule
#: (same as the trace exporters): within one version changes are
#: strictly additive — new kinds, new optional fields; renaming or
#: removing a kind or a declared field bumps the version.  Consumers
#: must ignore kinds and fields they do not know.
TELEMETRY_SCHEMA_VERSION = 1

#: Default bound on the in-flight event queue.  Small enough that a
#: runaway emitter cannot balloon parent memory; drops are counted.
DEFAULT_QUEUE_CAPACITY = 1024

#: Default wall-clock period between per-worker heartbeats.
DEFAULT_HEARTBEAT_S = 0.5

#: Longest a lifecycle emission may block on a saturated queue before
#: being dropped (heartbeats never block at all).
LIFECYCLE_PUT_TIMEOUT_S = 0.1

#: Grace added to the heartbeat period when joining its thread.
_JOIN_GRACE_S = 1.0

#: Fields every stream event carries.
COMMON_FIELDS: Tuple[str, ...] = ("v", "kind", "t_wall_s", "pid")

#: kind → required event-specific fields.  ``dropped`` values are
#: cumulative per-kind drop counts of the *emitting process* (the
#: honesty contract); ``key`` is the point's content hash
#: (:func:`repro.core.executor.task_key`), the same identity the point
#: cache and the run ledger use.
STREAM_EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "run_start": ("run_id", "cmd", "jobs"),
    "figure_start": ("figure",),
    "figure_end": ("figure", "wall_s"),
    "batch": ("n_tasks", "n_hits", "n_pending"),
    "point_cached": ("key", "method", "system", "outcome"),
    "point_start": ("key", "method", "system", "msg_bytes",
                    "interval_iters"),
    "point_end": ("key", "method", "wall_s", "dropped"),
    "heartbeat": ("sim_now_s", "events_processed", "points_done",
                  "current_key", "dropped"),
    "stall": ("key", "elapsed_s", "predicted_s", "factor"),
    "progress": ("done", "cached", "running", "eta_s"),
    "run_end": ("wall_s", "done", "cached", "stalls", "dropped"),
}

#: Fields that must be numbers when present (beyond the common ones).
_NUMERIC_FIELDS = frozenset([
    "t_wall_s", "wall_s", "jobs", "n_tasks", "n_hits", "n_pending",
    "msg_bytes", "interval_iters", "sim_now_s", "events_processed",
    "points_done", "elapsed_s", "predicted_s", "factor", "done",
    "cached", "running", "stalls", "pid",
])


def validate_stream_event(doc: Any) -> List[str]:
    """Errors that make ``doc`` an invalid stream event (empty = valid).

    The published schema contract: unknown *extra* fields are legal
    (additive evolution); missing declared fields, an unknown kind, or a
    wrong schema version are not.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"event is not a JSON object: {type(doc).__name__}"]
    if doc.get("v") != TELEMETRY_SCHEMA_VERSION:
        errors.append(
            f"schema version {doc.get('v')!r} != {TELEMETRY_SCHEMA_VERSION}"
        )
    kind = doc.get("kind")
    if not isinstance(kind, str) or kind not in STREAM_EVENT_FIELDS:
        errors.append(f"unknown event kind {kind!r}")
        return errors
    for field in COMMON_FIELDS + STREAM_EVENT_FIELDS[kind]:
        if field not in doc:
            errors.append(f"{kind}: missing field {field!r}")
    for field, value in doc.items():
        if field in _NUMERIC_FIELDS and value is not None \
                and not isinstance(value, (int, float)):
            errors.append(f"{kind}: field {field!r} not a number: {value!r}")
    dropped = doc.get("dropped")
    if dropped is not None and not isinstance(dropped, dict):
        errors.append(f"{kind}: 'dropped' must be an object")
    return errors


def validate_stream_line(line: str) -> List[str]:
    """Errors for one NDJSON line (parse failure is an error)."""
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        return [f"line is not JSON: {exc}"]
    return validate_stream_event(doc)


def make_event(kind: str, **fields: Any) -> Dict[str, Any]:
    """A schema-stamped stream event (for parent-side synthetic kinds)."""
    return _build_event(kind, fields)


def _build_event(kind: str, fields: Mapping[str, Any]) -> Dict[str, Any]:
    doc: Dict[str, Any] = {
        "v": TELEMETRY_SCHEMA_VERSION,
        "kind": kind,
        "t_wall_s": time.time(),
        "pid": os.getpid(),
    }
    doc.update(fields)
    return doc


class TelemetryChannel:
    """Bounded multiprocessing-safe event channel, parent side.

    One channel per observed run.  The parent (and, via
    :func:`pool_worker_init`, every pool worker) emits into
    :attr:`queue`; a consumer (:class:`~repro.obs.live_consumers.
    TelemetryHub`) drains it.  Spawn-context queue, so it ships to
    spawn-pool workers through ``Pool(initargs=...)``.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_QUEUE_CAPACITY,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        ctx = multiprocessing.get_context("spawn")
        self.queue: Any = ctx.Queue(capacity)
        self.capacity = capacity
        self.heartbeat_s = heartbeat_s
        #: Parent-side drops, per event kind (workers count their own and
        #: report them inside their events — see the module docstring).
        self.dropped: Dict[str, int] = {}

    # ---------------------------------------------------------------- emit
    def emit(self, kind: str, **fields: Any) -> bool:
        """Enqueue one event; on a full queue, drop it and count.

        Returns ``True`` when the event was enqueued.  Never blocks
        beyond :data:`LIFECYCLE_PUT_TIMEOUT_S` and never raises on
        saturation — telemetry must not be able to stall the sweep.
        """
        doc = _build_event(kind, fields)
        try:
            self.queue.put(doc, timeout=LIFECYCLE_PUT_TIMEOUT_S)
            return True
        except queue_mod.Full:
            self.dropped[kind] = self.dropped.get(kind, 0) + 1
            return False

    def emit_nowait(self, kind: str, **fields: Any) -> bool:
        """Like :meth:`emit` but without any blocking grace."""
        doc = _build_event(kind, fields)
        try:
            self.queue.put_nowait(doc)
            return True
        except queue_mod.Full:
            self.dropped[kind] = self.dropped.get(kind, 0) + 1
            return False

    # --------------------------------------------------------------- drain
    def drain(self, timeout_s: float = 0.2) -> Optional[Dict[str, Any]]:
        """Next pending event, or ``None`` after ``timeout_s``."""
        try:
            doc = self.queue.get(timeout=timeout_s)
            return doc if isinstance(doc, dict) else None
        except queue_mod.Empty:
            return None

    def drain_nowait(self) -> Optional[Dict[str, Any]]:
        """Next pending event, or ``None`` immediately."""
        try:
            doc = self.queue.get_nowait()
            return doc if isinstance(doc, dict) else None
        except queue_mod.Empty:
            return None

    def close(self) -> None:
        """Release the queue's resources (idempotent)."""
        try:
            self.queue.close()
        except (OSError, ValueError):  # pragma: no cover - teardown race
            pass


# ------------------------------------------------------------ worker side
class _WorkerState:
    """Per-process emitter state: queue handle, drop counts, heartbeat.

    One instance per armed process — each pool worker (via
    :func:`pool_worker_init`) and, for serial sweeps, the parent itself
    (via :func:`arm_worker`).  The heartbeat thread samples the engine
    registered by :func:`attach_engine_probe` — purely a read of
    ``engine.now`` / ``engine.events_processed``, which the simulation
    computes anyway, so heartbeats never perturb results.
    """

    def __init__(self, out_queue: Any, heartbeat_s: float) -> None:
        self.queue = out_queue
        self.heartbeat_s = heartbeat_s
        #: Cumulative drops in this process, per event kind.
        self.dropped: Dict[str, int] = {}
        #: Engine currently simulating in this process (probe target).
        self.engine: Optional[Any] = None
        #: ``(key, method, start_wall_s)`` of the running point, if any.
        self.current: Optional[Tuple[str, str, float]] = None
        self.points_done = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ---------------------------------------------------------------- emit
    def emit(self, kind: str, block: bool, fields: Dict[str, Any]) -> bool:
        doc = _build_event(kind, fields)
        try:
            if block:
                self.queue.put(doc, timeout=LIFECYCLE_PUT_TIMEOUT_S)
            else:
                self.queue.put_nowait(doc)
            return True
        except queue_mod.Full:
            self.dropped[kind] = self.dropped.get(kind, 0) + 1
            return False
        except (OSError, ValueError):  # pragma: no cover - parent gone
            return False

    def drops_snapshot(self) -> Dict[str, int]:
        return dict(sorted(self.dropped.items()))

    # ------------------------------------------------------------ heartbeat
    def start_heartbeat(self) -> None:
        if self._thread is not None or self.heartbeat_s <= 0:
            return
        self._thread = threading.Thread(
            target=self._heartbeat_loop, name="comb-telemetry-heartbeat",
            daemon=True,
        )
        self._thread.start()

    def stop_heartbeat(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.heartbeat_s + _JOIN_GRACE_S)
            self._thread = None

    def heartbeat_fields(self) -> Dict[str, Any]:
        """One heartbeat payload: sim-clock position + progress counters."""
        engine = self.engine
        sim_now_s: Optional[float] = None
        events_processed = 0
        if engine is not None:
            # Racy cross-thread reads of a float and an int — safe under
            # the GIL, and purely observational (a stale sample is fine).
            try:
                sim_now_s = float(engine.now)
                events_processed = int(engine.events_processed)
            except AttributeError:  # pragma: no cover - foreign engine
                pass
        current = self.current
        busy_s = time.time() - current[2] if current is not None else None
        return {
            "sim_now_s": sim_now_s,
            "events_processed": events_processed,
            "points_done": self.points_done,
            "current_key": current[0] if current is not None else None,
            "busy_s": busy_s,
            "dropped": self.drops_snapshot(),
        }

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            self.emit("heartbeat", False, self.heartbeat_fields())


#: The armed emitter of this process, if any.  Written only while a
#: telemetry channel is attached; process-local by design (each pool
#: worker arms its own copy via the pool initializer).
_worker: Optional[_WorkerState] = None


def arm_worker(out_queue: Any, heartbeat_s: float = DEFAULT_HEARTBEAT_S) -> None:
    """Arm this process as a telemetry emitter (starts the heartbeat)."""
    global _worker
    disarm_worker()
    _worker = _WorkerState(out_queue, heartbeat_s)  # comb-lint: disable=EXEC001
    _worker.start_heartbeat()


def disarm_worker() -> None:
    """Detach this process's emitter (idempotent)."""
    global _worker
    if _worker is not None:
        _worker.stop_heartbeat()
    _worker = None  # comb-lint: disable=EXEC001


def pool_worker_init(out_queue: Any, heartbeat_s: float) -> None:
    """Spawn-pool initializer: arm every worker process as an emitter."""
    arm_worker(out_queue, heartbeat_s)


def attach_engine_probe(engine: Any) -> None:
    """Expose a freshly built engine to this process's heartbeat thread.

    Called by :func:`repro.mpi.world.build_world`; a no-op (one global
    read) when no telemetry is armed, so bare runs pay nothing.
    """
    if _worker is not None:
        _worker.engine = engine


def note_point_start(key: str, method: str, fields: Dict[str, Any]) -> None:
    """Record + emit a point starting in this process (no-op unarmed)."""
    worker = _worker
    if worker is None:
        return
    worker.current = (key, method, time.time())
    payload = dict(fields)
    payload.update({"key": key, "method": method})
    worker.emit("point_start", True, payload)


def note_point_end(key: str, method: str, wall_s: float) -> None:
    """Record + emit a point finishing in this process (no-op unarmed).

    The event carries the process's cumulative drop counts, so the last
    delivered ``point_end`` from each worker states that worker's
    telemetry loss even if every later heartbeat is dropped.
    """
    worker = _worker
    if worker is None:
        return
    worker.current = None
    worker.points_done += 1
    worker.engine = None
    worker.emit("point_end", True, {
        "key": key,
        "method": method,
        "wall_s": wall_s,
        "points_done": worker.points_done,
        "dropped": worker.drops_snapshot(),
    })


def worker_armed() -> bool:
    """Is this process currently armed as a telemetry emitter?"""
    return _worker is not None


__all__ = [
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_QUEUE_CAPACITY",
    "LIFECYCLE_PUT_TIMEOUT_S",
    "STREAM_EVENT_FIELDS",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryChannel",
    "arm_worker",
    "attach_engine_probe",
    "disarm_worker",
    "make_event",
    "note_point_end",
    "note_point_start",
    "pool_worker_init",
    "validate_stream_event",
    "validate_stream_line",
    "worker_armed",
]
