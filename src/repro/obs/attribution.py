"""Critical-path attribution: decompose waits and availability loss into causes.

The paper's §4 argument is causal: GM's PWW wait time is high for large
messages *because* the rendezvous handshake only progresses inside MPI
calls (the Progress Rule), so the data transfer that should have
overlapped the work phase is forced into the wait phase.  This module
turns that argument into a measurement: every PWW wait window (and every
polling availability-loss window) is partitioned, second by second, into
named causes whose sum equals the measured window exactly.

Two steps per window:

1. **Structural sweep** — the window is cut at every boundary of every
   overlapping span (:mod:`repro.obs.spans`); each elementary segment is
   labelled by the highest-priority active cause (token starvation >
   rendezvous stall > host copy > completion stall > wire), and time no
   span covers becomes ``library_other``.  Because this is a partition,
   cause seconds sum to the window length by construction.
2. **Counterfactual reattribution** — wire time inside the window whose
   transfer *could* have run earlier (the message's first stall span
   started before the window opened, i.e. the handshake was answerable
   during the work phase but the library never progressed it) is
   relabelled ``rendezvous_stall``, bounded by how much earlier the
   transfer could have started.  This is what blames GM's forced-serial
   data transfer on the Progress Rule while leaving genuinely
   unoverlappable wire time (handshake completed inside the window)
   attributed to the wire.

Attribution is a pure function of the event stream — it never touches
the simulator, so traced runs stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .spans import (
    SPAN_COMPLETION,
    SPAN_CTS_WIRE,
    SPAN_DATA_WIRE,
    SPAN_HANDSHAKE_STALL,
    SPAN_PROGRESS_STALL,
    SPAN_RTS_WIRE,
    SPAN_TOKEN_STALL,
    SpanForest,
    stitch,
)
from .tracer import ObsEvent

#: Cause taxonomy (see docs/observability.md for the full narrative).
CAUSE_RENDEZVOUS = "rendezvous_stall"
CAUSE_WIRE = "wire"
CAUSE_HOST_COPY = "host_copy"
CAUSE_TOKEN = "token_starvation"
CAUSE_COMPLETION = "completion_stall"
CAUSE_POLL = "poll_overhead"
CAUSE_OTHER = "library_other"

#: Every cause a window decomposition may contain, display order.
ALL_CAUSES = (
    CAUSE_RENDEZVOUS,
    CAUSE_WIRE,
    CAUSE_HOST_COPY,
    CAUSE_TOKEN,
    CAUSE_COMPLETION,
    CAUSE_POLL,
    CAUSE_OTHER,
)

#: Structural span → cause.  ``completion`` is resolved per message
#: (eager receives spend it in the host-CPU bounce-buffer copy).
_SPAN_CAUSE = {
    SPAN_TOKEN_STALL: CAUSE_TOKEN,
    SPAN_HANDSHAKE_STALL: CAUSE_RENDEZVOUS,
    SPAN_PROGRESS_STALL: CAUSE_RENDEZVOUS,
    SPAN_RTS_WIRE: CAUSE_WIRE,
    SPAN_CTS_WIRE: CAUSE_WIRE,
    SPAN_DATA_WIRE: CAUSE_WIRE,
}

#: When spans overlap, the highest-priority active cause wins a segment.
_PRIORITY = (
    CAUSE_TOKEN,
    CAUSE_RENDEZVOUS,
    CAUSE_HOST_COPY,
    CAUSE_COMPLETION,
    CAUSE_WIRE,
)
_RANK = {cause: i for i, cause in enumerate(_PRIORITY)}


def attribute_window(
    forest: SpanForest, w0_s: float, w1_s: float
) -> Dict[str, float]:
    """Partition the window ``[w0_s, w1_s]`` into cause seconds.

    The returned dict's values sum to ``w1_s - w0_s`` exactly (the
    residual is assigned to ``library_other``), which is what makes the
    per-point fractions sum to 1 ± ulp.
    """
    window_s = w1_s - w0_s
    causes = {cause: 0.0 for cause in ALL_CAUSES}
    if window_s <= 0.0:
        return causes

    intervals: List[Tuple[float, float, str]] = []
    budget_s = 0.0
    for msg in forest:
        for span in msg.children:
            cause = _SPAN_CAUSE.get(span.name)
            if cause is None and span.name == SPAN_COMPLETION:
                cause = CAUSE_HOST_COPY if msg.eager else CAUSE_COMPLETION
            if cause is None:
                continue
            t0_s = max(span.t0_s, w0_s)
            t1_s = min(span.t1_s, w1_s)
            if t1_s > t0_s:
                intervals.append((t0_s, t1_s, cause))
        # Counterfactual budget: the transfer could have started earlier
        # by the delay the library injected into the handshake (its stall
        # spans), capped at how long before the window the handshake
        # became answerable.  An offloaded transport's stalls are ≈ 0,
        # so its in-window wire time stays attributed to the wire.
        stall_start_s = msg.stall_start_s
        data = msg.child(SPAN_DATA_WIRE)
        if (
            stall_start_s is not None
            and stall_start_s < w0_s
            and data is not None
            and data.t1_s > w0_s
            and data.t0_s < w1_s
        ):
            budget_s = max(
                budget_s, min(w0_s - stall_start_s, msg.stall_total_s)
            )

    # Structural sweep: partition the window at every interval boundary.
    cuts = sorted(
        {w0_s, w1_s}
        | {t0_s for t0_s, _t1_s, _c in intervals}
        | {t1_s for _t0_s, t1_s, _c in intervals}
    )
    assigned_s = 0.0
    for seg0_s, seg1_s in zip(cuts, cuts[1:]):
        active = [
            c for t0_s, t1_s, c in intervals
            if t0_s <= seg0_s and t1_s >= seg1_s
        ]
        if not active:
            continue
        winner = min(active, key=lambda c: _RANK[c])
        seg_s = seg1_s - seg0_s
        causes[winner] += seg_s
        assigned_s += seg_s
    causes[CAUSE_OTHER] = max(0.0, window_s - assigned_s)

    # Counterfactual reattribution (step 2 of the module docstring).
    moved_s = min(budget_s, causes[CAUSE_WIRE])
    if moved_s > 0.0:
        causes[CAUSE_WIRE] -= moved_s
        causes[CAUSE_RENDEZVOUS] += moved_s
    return causes


@dataclass
class PointAttribution:
    """Cause decomposition of one sweep point's wait / availability loss."""

    method: str
    system: Optional[str] = None
    msg_bytes: Optional[int] = None
    interval_iters: Optional[int] = None
    #: Total attributed seconds (sum of measured PWW wait windows, or the
    #: polling point's availability loss).
    total_s: float = 0.0
    #: Windows folded into this point (PWW batches / polling windows).
    windows: int = 0
    causes: Dict[str, float] = field(default_factory=dict)

    def fractions(self) -> Dict[str, float]:
        """Cause fractions of :attr:`total_s` (empty when total is 0)."""
        if self.total_s <= 0.0:
            return {}
        return {
            cause: seconds_s / self.total_s
            for cause, seconds_s in self.causes.items()
        }

    @property
    def dominant(self) -> Optional[str]:
        """The cause with the most seconds (``None`` when nothing is
        attributed); ties break in :data:`ALL_CAUSES` order."""
        best: Optional[str] = None
        best_s = 0.0
        for cause in ALL_CAUSES:
            seconds_s = self.causes.get(cause, 0.0)
            if seconds_s > best_s:
                best, best_s = cause, seconds_s
        return best

    def to_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "system": self.system,
            "msg_bytes": self.msg_bytes,
            "interval_iters": self.interval_iters,
            "total_s": self.total_s,
            "windows": self.windows,
            "causes": dict(self.causes),
            "fractions": self.fractions(),
            "dominant": self.dominant,
        }


@dataclass(frozen=True)
class _PointMeta:
    method: Optional[str] = None
    system: Optional[str] = None
    msg_bytes: Optional[int] = None
    interval_iters: Optional[int] = None
    warmup_windows: int = 0


def _split_points(
    events: Sequence[ObsEvent],
) -> List[Tuple[_PointMeta, List[ObsEvent]]]:
    """Cut the stream at the executor's ``point_start`` / ``point_end``
    markers.  Without markers the whole stream is one anonymous point."""
    ordered = sorted(events, key=lambda ev: ev.seq)
    if not any(ev.kind == "point_start" for ev in ordered):
        return [(_PointMeta(), list(ordered))]
    points: List[Tuple[_PointMeta, List[ObsEvent]]] = []
    meta: Optional[_PointMeta] = None
    bucket: List[ObsEvent] = []
    for ev in ordered:
        if ev.kind == "point_start":
            meta = _PointMeta(
                method=str(ev.detail[0]),
                system=str(ev.detail[1]),
                msg_bytes=int(ev.detail[2]),
                interval_iters=int(ev.detail[3]),
                warmup_windows=int(ev.detail[4]),
            )
            bucket = []
        elif ev.kind == "point_end":
            if meta is not None:
                points.append((meta, bucket))
            meta, bucket = None, []
        elif meta is not None:
            bucket.append(ev)
    if meta is not None:  # stream truncated before point_end
        points.append((meta, bucket))
    return points


def _attribute_pww_point(
    meta: _PointMeta, events: Sequence[ObsEvent], method: str = "pww"
) -> PointAttribution:
    """Wait-window decomposition for one PWW-shaped point.

    Patterns reuse the ``pww_phase`` schema (one event per rank per
    measured iteration, emitted from ``rank{r}.pattern``), so a
    multi-rank pattern point folds every rank's wait windows into one
    decomposition — ``method`` keeps the table row honest about which
    driver produced them.
    """
    forest = stitch(events)
    point = PointAttribution(
        method=method,
        system=meta.system,
        msg_bytes=meta.msg_bytes,
        interval_iters=meta.interval_iters,
        causes={cause: 0.0 for cause in ALL_CAUSES},
    )
    for ev in events:
        if ev.kind != "pww_phase":
            continue
        batch, _t0_s, _post_s, _work_s, wait_s = ev.detail
        if int(batch) < meta.warmup_windows:
            continue  # match the measured (post-warmup) wait time
        w1_s = ev.time_s
        w0_s = w1_s - wait_s
        for cause, seconds_s in attribute_window(forest, w0_s, w1_s).items():
            point.causes[cause] += seconds_s
        point.total_s += wait_s
        point.windows += 1
    return point


def _attribute_polling_point(
    meta: _PointMeta, events: Sequence[ObsEvent]
) -> PointAttribution:
    """Availability-loss decomposition for one polling point.

    The loss (window minus pure work time) splits into the poll tax
    (completion tests × the empty-pass cost, both carried by the
    ``poll_window`` event), host-CPU copy time visible as spans, and a
    ``library_other`` residual (per-call posting/matching costs the
    event stream cannot see individually).
    """
    forest = stitch(events)
    point = PointAttribution(
        method="polling",
        system=meta.system,
        msg_bytes=meta.msg_bytes,
        interval_iters=meta.interval_iters,
        causes={cause: 0.0 for cause in ALL_CAUSES},
    )
    for ev in events:
        if ev.kind != "poll_window":
            continue
        t_start_s, elapsed_s, work_total_s, polls, empty_poll_s = ev.detail
        loss_s = max(0.0, elapsed_s - work_total_s)
        poll_tax_s = min(loss_s, polls * empty_poll_s)
        copy_s = attribute_window(
            forest, t_start_s, t_start_s + elapsed_s
        )[CAUSE_HOST_COPY]
        copy_s = min(copy_s, loss_s - poll_tax_s)
        point.causes[CAUSE_POLL] += poll_tax_s
        point.causes[CAUSE_HOST_COPY] += copy_s
        point.causes[CAUSE_OTHER] += loss_s - poll_tax_s - copy_s
        point.total_s += loss_s
        point.windows += 1
    return point


def attribute_events(events: Sequence[ObsEvent]) -> List[PointAttribution]:
    """Per-point cause decompositions for a whole observed run.

    The stream is segmented at the executor's point markers (each marker
    names the method, system, message size, interval, and warmup window
    count); a marker-free stream — e.g. ``comb trace pww`` driving one
    point directly — is treated as a single point whose method is
    inferred from the phase events present.
    """
    out: List[PointAttribution] = []
    for meta, point_events in _split_points(events):
        method = meta.method
        if method is None:
            phases = [ev for ev in point_events if ev.kind == "pww_phase"]
            if phases:
                method = ("pattern" if any(
                    ev.source.endswith(".pattern") for ev in phases
                ) else "pww")
            elif any(ev.kind == "poll_window" for ev in point_events):
                method = "polling"
            else:
                continue
        if method == "pww":
            out.append(_attribute_pww_point(meta, point_events))
        elif method == "pattern":
            out.append(_attribute_pww_point(meta, point_events,
                                            method="pattern"))
        elif method == "polling":
            out.append(_attribute_polling_point(meta, point_events))
    return out


def format_attribution(points: Sequence[PointAttribution]) -> str:
    """Human table: one row per sweep point, cause fractions + verdict."""
    if not points:
        return "attribution: no decomposable windows in the event stream"
    lines = [
        "per-point attribution (cause fractions of measured wait / "
        "availability loss):",
        f"  {'method':7s} {'system':10s} {'size':>7s} {'interval':>9s} "
        f"{'total':>10s}  breakdown",
    ]
    for pt in points:
        size_label = f"{pt.msg_bytes // 1024}KB" if pt.msg_bytes else "-"
        interval_iters = str(pt.interval_iters) if pt.interval_iters else "-"
        shares = [
            f"{cause}={frac:.0%}"
            for cause, frac in sorted(
                pt.fractions().items(), key=lambda kv: -kv[1]
            )
            if frac >= 0.005
        ]
        lines.append(
            f"  {pt.method:7s} {(pt.system or '-'):10s} {size_label:>7s} "
            f"{interval_iters:>9s} {pt.total_s * 1e6:9.1f}us  "
            + (" ".join(shares) if shares else "(zero)")
        )
    return "\n".join(lines)
