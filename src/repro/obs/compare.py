"""Statistical regression sentinel over run profiles.

Benchmark numbers from single runs are noise (Hunold & Carpen-Amarie,
"MPI Benchmarking Revisited"); this module compares *samples* of runs
nonparametrically — per-metric medians with a bootstrap confidence
interval on the median difference — and only calls something a
regression when the whole interval clears a minimum relative slowdown.

Inputs are the JSON documents the suite already writes: ``BENCH_<n>.json``
trajectory records (``tools/bench_report.py``) and ``metrics.json``
sidecars (``comb … --metrics``).  A *run* argument may be a single file
or a directory of them (every ``BENCH_*.json`` / ``*metrics*.json``
inside becomes one sample).

The bootstrap RNG is seeded, so comparisons are reproducible; two
identical samples always yield a zero-width interval at zero and hence
zero regressions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Bootstrap resamples for the median-difference CI.
DEFAULT_RESAMPLES = 2000
#: Two-sided confidence level of the interval.
DEFAULT_CONFIDENCE = 0.95
#: A regression additionally needs at least this relative slowdown.
DEFAULT_MIN_REL = 0.05
#: Baseline samples required before a metric is judged at all.
DEFAULT_MIN_RECORDS = 2
#: Seed for the bootstrap RNG (fixed: comparisons must be reproducible).
BOOTSTRAP_SEED = 20260806


def scalar_profile(doc: Dict[str, object]) -> Dict[str, float]:
    """Flatten one run document into ``{metric_name: seconds}``.

    Understands both record shapes the suite writes; unknown keys are
    ignored, so old and new records mix freely in one history dir.
    Only time-like scalars are extracted — counters of work volume
    (cache hits, points simulated) are configuration echoes, not
    performance, and would false-positive on grid changes.
    """
    out: Dict[str, float] = {}
    total = doc.get("total_s")
    if isinstance(total, (int, float)):
        out["total_s"] = float(total)
    figures = doc.get("figures")
    if isinstance(figures, dict):
        for fig_id, wall_s in sorted(figures.items()):
            if isinstance(wall_s, (int, float)):
                out[f"figures.{fig_id}"] = float(wall_s)
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        counters = metrics.get("counters")
        if isinstance(counters, dict):
            wall = counters.get("executor.simulate_wall_s")
            if isinstance(wall, (int, float)):
                out["executor.simulate_wall_s"] = float(wall)
        histograms = metrics.get("histograms")
        if isinstance(histograms, dict):
            for name, hist in sorted(histograms.items()):
                if not (isinstance(hist, dict) and name.endswith("_s")):
                    continue
                count = hist.get("count")
                total_h = hist.get("sum")
                if (
                    isinstance(count, (int, float)) and count
                    and isinstance(total_h, (int, float))
                ):
                    out[f"{name}.mean"] = float(total_h) / float(count)
    return out


def load_samples(run: Path) -> Dict[str, List[float]]:
    """Per-metric samples from a run file or a directory of run files.

    ``.jsonl`` files are read as run ledgers (:mod:`repro.obs.ledger`):
    every ``run`` record inside becomes one sample, so a long-lived
    ledger serves directly as a many-sample history source.
    """
    if run.is_dir():
        paths = sorted(
            set(run.glob("BENCH_*.json"))
            | set(run.glob("*metrics*.json"))
            | set(run.glob("*.jsonl"))
        )
    else:
        paths = [run]
    samples: Dict[str, List[float]] = {}
    docs: List[Dict[str, object]] = []
    for path in paths:
        if path.suffix == ".jsonl":
            from .ledger import run_record_samples

            docs.extend(run_record_samples(path))
            continue
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue  # unreadable / non-JSON: not a sample
        if isinstance(doc, dict):
            docs.append(doc)
    for doc in docs:
        for name, value in scalar_profile(doc).items():
            samples.setdefault(name, []).append(value)
    return samples


@dataclass(frozen=True)
class MetricComparison:
    """One metric's verdict: B (candidate) against A (baseline)."""

    name: str
    n_a: int
    n_b: int
    median_a: float
    median_b: float
    #: Bootstrap CI of ``median(B) - median(A)`` (positive = B slower).
    ci_low: float
    ci_high: float
    regression: bool

    @property
    def rel_delta(self) -> float:
        if self.median_a == 0.0:
            return 0.0
        return (self.median_b - self.median_a) / self.median_a

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready verdict for one metric (``--format json``)."""
        return {
            "name": self.name,
            "n_baseline": self.n_a,
            "n_candidate": self.n_b,
            "median_baseline_s": self.median_a,
            "median_candidate_s": self.median_b,
            "rel_delta": self.rel_delta,
            "ci_low_s": self.ci_low,
            "ci_high_s": self.ci_high,
            "regression": self.regression,
        }


@dataclass
class CompareReport:
    """Full sentinel verdict over every shared metric."""

    comparisons: List[MetricComparison] = field(default_factory=list)
    #: Metrics present in only one side, or with too little history.
    skipped: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricComparison]:
        return [c for c in self.comparisons if c.regression]

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable verdict (``comb compare --format json``).

        Carries the exit status *and its rationale*: a metric regresses
        only when the whole bootstrap CI of the median difference is
        above zero and the relative slowdown clears the minimum — the
        same rule :meth:`format` renders for humans.
        """
        n = len(self.regressions)
        return {
            "schema_version": 1,
            "comparisons": [c.to_dict() for c in self.comparisons],
            "skipped": list(self.skipped),
            "regressions": [c.name for c in self.regressions],
            "exit_code": self.exit_code,
            "exit_rationale": (
                f"{n} regression{'s' if n != 1 else ''}: a metric "
                "regresses only when the entire bootstrap CI of the "
                "median difference is above zero and the relative "
                "slowdown exceeds the minimum threshold"
            ),
        }

    def format(self) -> str:
        if not self.comparisons and not self.skipped:
            return (
                "compare: no overlapping metrics between the two runs "
                "(nothing judged)"
            )
        lines: List[str] = []
        if self.comparisons:
            lines.append(
                f"  {'metric':34s} {'baseline':>10s} {'candidate':>10s} "
                f"{'delta':>8s}  CI of median diff"
            )
            for c in self.comparisons:
                mark = "REGRESSION" if c.regression else "ok"
                lines.append(
                    f"  {c.name:34s} {c.median_a:10.4f} {c.median_b:10.4f} "
                    f"{c.rel_delta:+7.1%}  "
                    f"[{c.ci_low:+.4f}, {c.ci_high:+.4f}] {mark}"
                )
        for name in self.skipped:
            lines.append(f"  {name:34s} (skipped: insufficient history)")
        n = len(self.regressions)
        lines.append(
            f"compare: {n} regression{'s' if n != 1 else ''} across "
            f"{len(self.comparisons)} metric"
            f"{'s' if len(self.comparisons) != 1 else ''}"
        )
        return "\n".join(lines)


def bootstrap_median_diff(
    a: Sequence[float],
    b: Sequence[float],
    resamples: int = DEFAULT_RESAMPLES,
    confidence: float = DEFAULT_CONFIDENCE,
    seed: int = BOOTSTRAP_SEED,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI of ``median(b) - median(a)``.

    Degenerate but legal inputs (singleton samples, identical samples)
    collapse the interval rather than erroring: identical runs always
    produce ``(0.0, 0.0)``.
    """
    arr_a = np.asarray(a, dtype=float)
    arr_b = np.asarray(b, dtype=float)
    rng = np.random.default_rng(seed)
    idx_a = rng.integers(0, len(arr_a), size=(resamples, len(arr_a)))
    idx_b = rng.integers(0, len(arr_b), size=(resamples, len(arr_b)))
    diffs = np.median(arr_b[idx_b], axis=1) - np.median(arr_a[idx_a], axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(diffs, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


def compare_samples(
    samples_a: Dict[str, List[float]],
    samples_b: Dict[str, List[float]],
    min_rel: float = DEFAULT_MIN_REL,
    min_records: int = DEFAULT_MIN_RECORDS,
    resamples: int = DEFAULT_RESAMPLES,
    confidence: float = DEFAULT_CONFIDENCE,
) -> CompareReport:
    """Judge candidate B against baseline A metric by metric.

    A metric regresses only when the *entire* bootstrap interval of the
    median difference is above zero **and** the relative slowdown
    clears ``min_rel`` — a significant-but-tiny drift stays "ok".
    Metrics with fewer than ``min_records`` baseline samples are
    reported as skipped, never judged.
    """
    report = CompareReport()
    for name in sorted(set(samples_a) | set(samples_b)):
        a = samples_a.get(name, [])
        b = samples_b.get(name, [])
        if not a or not b or len(a) < min_records:
            report.skipped.append(name)
            continue
        ci_low, ci_high = bootstrap_median_diff(
            a, b, resamples=resamples, confidence=confidence
        )
        median_a = float(np.median(a))
        median_b = float(np.median(b))
        rel = (median_b - median_a) / median_a if median_a else 0.0
        report.comparisons.append(
            MetricComparison(
                name=name,
                n_a=len(a),
                n_b=len(b),
                median_a=median_a,
                median_b=median_b,
                ci_low=ci_low,
                ci_high=ci_high,
                regression=ci_low > 0.0 and rel > min_rel,
            )
        )
    return report


def compare_paths(
    run_a: Path,
    run_b: Path,
    min_rel: float = DEFAULT_MIN_REL,
    min_records: int = DEFAULT_MIN_RECORDS,
) -> CompareReport:
    """Sentinel entry point over files/directories (see module doc)."""
    return compare_samples(
        load_samples(run_a),
        load_samples(run_b),
        min_rel=min_rel,
        min_records=min_records,
    )


def compare_history(
    history_dir: Path,
    min_rel: float = DEFAULT_MIN_REL,
    min_records: int = DEFAULT_MIN_RECORDS,
) -> Optional[CompareReport]:
    """History mode: newest ``BENCH_<n>.json`` against all older ones.

    Returns ``None`` when the directory holds fewer than
    ``min_records + 1`` records — callers should *skip cleanly* (exit
    0), which is what the CI sentinel job does while the committed
    trajectory is still short.  ``min_records`` is clamped to at least 1
    here: a single-record history has no baseline at all, and judging
    the newest record against an empty sample set would produce
    degenerate (zero-width) confidence intervals, so even
    ``min_records=0`` reports insufficient history instead.
    """
    records: List[Tuple[int, Path]] = []
    for path in history_dir.glob("BENCH_*.json"):
        stem_n = path.stem.split("_", 1)[-1]
        if stem_n.isdigit():
            records.append((int(stem_n), path))
    records.sort()
    if len(records) < max(min_records, 1) + 1:
        return None
    *older, (_, newest) = records
    baseline: Dict[str, List[float]] = {}
    for _, path in older:
        for name, values in load_samples(path).items():
            baseline.setdefault(name, []).extend(values)
    return compare_samples(
        baseline,
        load_samples(newest),
        min_rel=min_rel,
        min_records=min_records,
    )
