"""Metrics primitives: counters, gauges, fixed-bucket histograms.

The registry is deliberately minimal and dependency-free — it exists so
the simulator's *sim-time* breakdowns and the executor's *wall-clock*
stage profiles land in one uniform, JSON-serializable snapshot.  All
snapshots are emitted with sorted names, so two runs producing the same
measurements produce byte-identical sidecar files.

Histograms use fixed bucket bounds chosen at construction (Prometheus
style): ``counts[i]`` counts observations ``<= bounds[i]``, with one
overflow bucket at the end.  The battery in
``tests/test_obs_properties.py`` pins the invariant ``sum(counts) ==
count`` for arbitrary observation streams.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union

MetricValue = Union[int, float]

#: Wall-clock latency buckets (seconds): 1 µs … 30 s, log-spaced.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
    1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0,
)

#: Simulated-time buckets (seconds): 100 ns … 1 s, log-spaced — sized for
#: per-phase durations (posts are ~µs, waits up to ~ms, work up to ~s).
DEFAULT_SIM_TIME_BUCKETS_S: Tuple[float, ...] = (
    1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4,
    1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0,
)


class Counter:
    """Monotonically increasing count (int or float accumulate)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: MetricValue = 0

    def inc(self, amount: MetricValue = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def to_dict(self) -> MetricValue:
        return self.value


class Gauge:
    """Last-written value, with min/max watermarks."""

    __slots__ = ("name", "value", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[MetricValue] = None
        self.min: Optional[MetricValue] = None
        self.max: Optional[MetricValue] = None

    def set(self, value: MetricValue) -> None:
        """Record the current value and update the watermarks."""
        self.value = value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def add(self, delta: MetricValue) -> None:
        """Adjust the current value by ``delta`` (starts from 0)."""
        self.set((self.value or 0) + delta)

    def to_dict(self) -> Dict[str, Optional[MetricValue]]:
        return {"value": self.value, "min": self.min, "max": self.max}


class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` counts values <= ``bounds[i]``.

    The final entry of :attr:`counts` is the overflow bucket (values
    greater than every bound), so ``sum(counts) == count`` always.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError(f"histogram {name}: no buckets")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram {name}: bounds must be strictly increasing"
            )
        self.name = name
        self.bounds = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        #: Sum of every observed value (mean = total / count).
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Count one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create store of named metrics, one namespace per run.

    Names are dotted paths (``sim.pww.wait_s``, ``executor.cache.hits``);
    re-requesting a name returns the existing instrument, and requesting
    it as a different type is an error (a registry-wide uniqueness
    invariant, so a snapshot can flatten without collisions).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get_or_create(
        self,
        name: str,
        cls: type,
        *args: object,
    ) -> Union[Counter, Gauge, Histogram]:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, requested {cls.__name__}"
                )
            return existing
        metric = cls(name, *args)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first request)."""
        metric = self._get_or_create(name, Counter)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first request)."""
        metric = self._get_or_create(name, Gauge)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_SIM_TIME_BUCKETS_S,
    ) -> Histogram:
        """The histogram called ``name`` (created with ``bounds`` on
        first request; later calls ignore ``bounds``)."""
        metric = self._get_or_create(name, Histogram, bounds)
        assert isinstance(metric, Histogram)
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready snapshot, grouped by instrument type, names sorted."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.to_dict()
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.to_dict()
            else:
                out["histograms"][name] = metric.to_dict()
        return out
