"""Structured event tracer backed by per-kind ring buffers.

:class:`ObsTracer` is a :class:`~repro.sim.trace.Tracer` subclass, so
every existing emission site in the engine, hardware models, transports,
and MPI layer feeds it unchanged.  Unlike the base tracer it

* stores :class:`ObsEvent` records (with a global sequence number) in
  one bounded :class:`~repro.obs.ring.RingBuffer` per event kind, so a
  noisy kind (``wire_tx``) cannot evict a rare one (``rts_rx``);
* skips per-kernel-event records unless explicitly asked
  (``kernel=True``) — the kernel stream is one record per processed
  event and is rarely worth its volume;
* optionally forwards each stored event to a dispatch callable — the
  hook :class:`~repro.obs.observer.Observer` uses to derive metrics.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional, Set

from ..sim.trace import Tracer
from .ring import RingBuffer


class ObsEvent(NamedTuple):
    """One traced occurrence, as stored by :class:`ObsTracer`.

    ``seq`` is a tracer-global emission sequence number: merged streams
    sort by it to recover exact emission order even among equal-time
    events.
    """

    seq: int
    time_s: float
    source: str
    kind: str
    detail: Any


class ObsTracer(Tracer):
    """Ring-buffered structured tracer.

    Parameters
    ----------
    kinds:
        If not ``None``, only these event kinds are recorded.
    ring_capacity:
        Per-kind ring size; the newest events of each kind survive.
    kernel:
        Record the per-event kernel stream too (very noisy; off by
        default).
    """

    def __init__(
        self,
        kinds: Optional[Set[str]] = None,
        ring_capacity: int = 65536,
        kernel: bool = False,
    ) -> None:
        super().__init__(kinds=kinds)
        self.ring_capacity = ring_capacity
        self.kernel = kernel
        #: Event kind -> ring of :class:`ObsEvent` (insertion order).
        self.rings: Dict[str, RingBuffer] = {}
        #: Optional per-event hook (used by :class:`Observer` for metrics).
        self.dispatch: Optional[Callable[[ObsEvent], None]] = None
        self._seq = 0

    # ------------------------------------------------------------- recording
    def record(self, time: float, source: str, kind: str, detail: Any = None) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        ev = ObsEvent(self._seq, time, source, kind, detail)
        self._seq += 1
        ring = self.rings.get(kind)
        if ring is None:
            ring = self.rings[kind] = RingBuffer(self.ring_capacity)
        ring.append(ev)
        if self.dispatch is not None:
            self.dispatch(ev)

    def record_kernel(self, time: float, event: Any) -> None:
        if self.kernel:
            self.record(time, "engine", "kernel", repr(event))

    # --------------------------------------------------------------- queries
    def events(self) -> List[ObsEvent]:
        """Every retained event across all kinds, in emission order."""
        out: List[ObsEvent] = []
        for ring in self.rings.values():
            out.extend(ring)
        out.sort(key=lambda ev: ev.seq)
        return out

    def of_kind(self, kind: str) -> List[Any]:
        """Retained events of one kind, oldest first."""
        ring = self.rings.get(kind)
        return ring.to_list() if ring is not None else []

    def counts(self) -> Dict[str, int]:
        """*Total* emission count per kind (retained + dropped)."""
        return {
            kind: len(ring) + ring.dropped
            for kind, ring in sorted(self.rings.items())
        }

    def dropped(self) -> Dict[str, int]:
        """Events lost to ring wraparound, per kind (zero entries omitted)."""
        return {
            kind: ring.dropped
            for kind, ring in sorted(self.rings.items())
            if ring.dropped
        }

    def clear(self) -> None:
        """Drop all retained events (sequence numbering continues)."""
        self.rings.clear()
