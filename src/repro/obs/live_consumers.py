"""Parent-side consumers of the live telemetry stream.

:class:`TelemetryHub` drains a :class:`~repro.obs.live.TelemetryChannel`
on a background thread, folds every event into a :class:`SweepState`,
and fans events out to consumers (plain callables taking one event
dict).  On top of the raw worker events it synthesizes three kinds of
its own — ``stall`` (a running point exceeding
:data:`DEFAULT_STALL_FACTOR` × its predicted cost, or a worker whose
heartbeats stopped mid-point), ``progress`` (periodic counters + ETA
from the cache-aware :class:`CostModel`), and ``run_end`` — which are
delivered to consumers directly, never through the droppable queue.

Shipped consumers: :class:`StreamWriter` (NDJSON to a path or inherited
fd — the machine-readable stream ``comb top`` and the future HTTP layer
read) and :class:`ProgressRenderer` (single-line TTY progress plus a
final stall/drop report).  :func:`run_top` is the ``comb top`` entry
point: it attaches to a running sweep by tailing the stream file and
re-deriving :class:`SweepState` from the lines written so far.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, IO, List, Optional, Set

from .live import TelemetryChannel, make_event, validate_stream_event

#: A consumer is any callable taking one stream-event dict.
Consumer = Callable[[Dict[str, Any]], None]

#: A point is a stall suspect once its elapsed wall exceeds
#: ``factor × predicted`` (and the absolute floor below).
DEFAULT_STALL_FACTOR = 8.0
#: Never flag a stall before this much elapsed wall, whatever the
#: prediction says — tiny points make k× predictions meaninglessly small.
DEFAULT_STALL_FLOOR_S = 2.0
#: A worker whose last event is older than ``factor × heartbeat_s``
#: while it owns a running point is presumed lost (killed / wedged).
DEFAULT_HEARTBEAT_LOSS_FACTOR = 6.0
#: Period of the hub's synthetic ``progress`` events.
DEFAULT_PROGRESS_PERIOD_S = 1.0


class CostModel:
    """Cache-aware point-cost estimate from the walls seen so far.

    Cache hits are free (they never reach a worker); only simulated
    misses contribute samples.  Per-method means fall back to the
    global mean, so predictions exist as soon as *any* point finishes.
    """

    def __init__(self) -> None:
        self._sum_s: Dict[str, float] = {}
        self._n: Dict[str, int] = {}

    def observe(self, method: str, wall_s: float) -> None:
        self._sum_s[method] = self._sum_s.get(method, 0.0) + wall_s
        self._n[method] = self._n.get(method, 0) + 1

    def predicted_s(self, method: str) -> Optional[float]:
        n = self._n.get(method, 0)
        if n:
            return self._sum_s[method] / n
        total_n = sum(self._n.values())
        if total_n:
            return sum(self._sum_s.values()) / total_n
        return None

    def eta_s(self, remaining: int, jobs: int) -> Optional[float]:
        """Wall estimate for ``remaining`` pending misses on ``jobs`` lanes."""
        total_n = sum(self._n.values())
        if not total_n or remaining <= 0:
            return 0.0 if remaining <= 0 else None
        mean_s = sum(self._sum_s.values()) / total_n
        return remaining * mean_s / max(jobs, 1)


class _RunningPoint:
    """Parent-side view of one in-flight point."""

    __slots__ = ("key", "method", "system", "pid", "start_wall_s", "stalled")

    def __init__(self, key: str, method: str, system: str, pid: int,
                 start_wall_s: float) -> None:
        self.key = key
        self.method = method
        self.system = system
        self.pid = pid
        self.start_wall_s = start_wall_s
        self.stalled = False


class _WorkerView:
    """Parent-side view of one worker process, from its heartbeats."""

    __slots__ = ("pid", "last_seen_wall_s", "sim_now_s", "events_processed",
                 "points_done", "current_key", "dropped", "lost")

    def __init__(self, pid: int, now_wall_s: float) -> None:
        self.pid = pid
        self.last_seen_wall_s = now_wall_s
        self.sim_now_s: Optional[float] = None
        self.events_processed = 0
        self.points_done = 0
        self.current_key: Optional[str] = None
        self.dropped: Dict[str, int] = {}
        self.lost = False


class SweepState:
    """Event-sourced state of a sweep: fold stream events in order.

    Both the hub (live queue) and ``comb top`` (stream file) derive
    their view through this one state machine, so what ``top`` renders
    is by construction what the parent saw.
    """

    def __init__(self) -> None:
        self.run_id: Optional[str] = None
        self.cmd: Optional[str] = None
        self.jobs = 1
        self.figure: Optional[str] = None
        self.tasks = 0
        self.cached = 0
        self.done = 0
        self.stall_count = 0
        self.finished = False
        self.wall_s: Optional[float] = None
        self.eta_s: Optional[float] = None
        self.running: Dict[str, _RunningPoint] = {}
        self.workers: Dict[int, _WorkerView] = {}
        self.stalls: List[Dict[str, Any]] = []
        #: Latest cumulative per-kind drops reported by each pid.
        self.worker_dropped: Dict[int, Dict[str, int]] = {}
        #: Parent-side queue drops (merged in by the hub at run end).
        self.parent_dropped: Dict[str, int] = {}
        self.invalid_lines = 0

    # ---------------------------------------------------------------- fold
    def apply(self, doc: Dict[str, Any]) -> None:
        kind = doc.get("kind")
        pid = doc.get("pid")
        now_wall_s = float(doc.get("t_wall_s", 0.0) or 0.0)
        if isinstance(pid, int) and kind in ("heartbeat", "point_start",
                                             "point_end"):
            worker = self.workers.get(pid)
            if worker is None:
                worker = self.workers[pid] = _WorkerView(pid, now_wall_s)
            worker.last_seen_wall_s = max(worker.last_seen_wall_s, now_wall_s)
        if kind == "run_start":
            self.run_id = doc.get("run_id")
            self.cmd = doc.get("cmd")
            self.jobs = int(doc.get("jobs", 1) or 1)
        elif kind == "batch":
            self.tasks += int(doc.get("n_tasks", 0) or 0)
        elif kind == "figure_start":
            self.figure = doc.get("figure")
        elif kind == "figure_end":
            self.figure = None
        elif kind == "point_cached":
            self.cached += 1
        elif kind == "point_start":
            key = str(doc.get("key"))
            self.running[key] = _RunningPoint(
                key, str(doc.get("method")), str(doc.get("system")),
                pid if isinstance(pid, int) else 0, now_wall_s,
            )
            if isinstance(pid, int) and pid in self.workers:
                self.workers[pid].current_key = key
        elif kind == "point_end":
            self.done += 1
            self.running.pop(str(doc.get("key")), None)
            if isinstance(pid, int):
                dropped = doc.get("dropped")
                if isinstance(dropped, dict):
                    self.worker_dropped[pid] = dict(dropped)
                worker = self.workers.get(pid)
                if worker is not None:
                    worker.current_key = None
                    worker.points_done = int(
                        doc.get("points_done", worker.points_done + 1)
                        or worker.points_done + 1
                    )
        elif kind == "heartbeat" and isinstance(pid, int):
            worker = self.workers[pid]
            sim_now_s = doc.get("sim_now_s")
            worker.sim_now_s = (
                float(sim_now_s) if isinstance(sim_now_s, (int, float))
                else None
            )
            worker.events_processed = int(doc.get("events_processed", 0) or 0)
            worker.points_done = int(doc.get("points_done", 0) or 0)
            current_key = doc.get("current_key")
            worker.current_key = (
                current_key if isinstance(current_key, str) else None
            )
            dropped = doc.get("dropped")
            if isinstance(dropped, dict):
                self.worker_dropped[pid] = dict(dropped)
        elif kind == "stall":
            self.stall_count += 1
            self.stalls.append(dict(doc))
            point = self.running.get(str(doc.get("key")))
            if point is not None:
                point.stalled = True
            lost_pid = doc.get("lost_pid")
            if isinstance(lost_pid, int) and lost_pid in self.workers:
                self.workers[lost_pid].lost = True
        elif kind == "progress":
            eta_s = doc.get("eta_s")
            self.eta_s = (
                float(eta_s) if isinstance(eta_s, (int, float)) else None
            )
        elif kind == "run_end":
            self.finished = True
            wall_s = doc.get("wall_s")
            self.wall_s = (
                float(wall_s) if isinstance(wall_s, (int, float)) else None
            )
            dropped = doc.get("dropped")
            if isinstance(dropped, dict):
                self.parent_dropped = {
                    str(k): int(v) for k, v in dropped.items()
                    if isinstance(v, int)
                }

    # ------------------------------------------------------------- queries
    @property
    def pending(self) -> int:
        return max(self.tasks - self.cached - self.done, 0)

    def total_dropped(self) -> Dict[str, int]:
        """All known telemetry loss: parent queue + every worker."""
        totals: Dict[str, int] = dict(self.parent_dropped)
        for per_kind in self.worker_dropped.values():
            for kind, n in per_kind.items():
                totals[kind] = totals.get(kind, 0) + int(n)
        return {k: totals[k] for k in sorted(totals)}


class TelemetryHub:
    """Drains a channel on a thread; folds state; fans out to consumers.

    The hub is the only component allowed to *synthesize* events
    (``stall`` / ``progress`` / ``run_end``); everything else it merely
    relays.  A consumer that raises ``OSError`` (e.g. a stream target
    going unwritable mid-run) is detached and remembered — telemetry
    failure must never fail the sweep.
    """

    def __init__(
        self,
        channel: TelemetryChannel,
        consumers: Optional[List[Consumer]] = None,
        stall_factor: float = DEFAULT_STALL_FACTOR,
        stall_floor_s: float = DEFAULT_STALL_FLOOR_S,
        heartbeat_loss_factor: float = DEFAULT_HEARTBEAT_LOSS_FACTOR,
        progress_period_s: float = DEFAULT_PROGRESS_PERIOD_S,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.channel = channel
        self.consumers: List[Consumer] = list(consumers or [])
        self.state = SweepState()
        self.cost_model = CostModel()
        self.stall_factor = stall_factor
        self.stall_floor_s = stall_floor_s
        self.heartbeat_loss_s = max(
            heartbeat_loss_factor * channel.heartbeat_s, stall_floor_s
        )
        self.progress_period_s = progress_period_s
        self.consumer_errors: List[str] = []
        self._clock = clock
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._flagged_stalls: Set[str] = set()
        self._lost_pids: Set[int] = set()
        self._last_progress_wall_s = 0.0
        self._start_wall_s = clock()

    # ------------------------------------------------------------ lifecycle
    def start(self, run_id: str, cmd: str, jobs: int) -> None:
        self._start_wall_s = self._clock()
        self._handle(make_event("run_start", run_id=run_id, cmd=cmd,
                                jobs=jobs))
        self._thread = threading.Thread(
            target=self._loop, name="comb-telemetry-hub", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Stop draining, flush the queue, emit the final ``run_end``."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        while True:  # flush whatever the workers got in before teardown
            doc = self.channel.drain_nowait()
            if doc is None:
                break
            self._handle(doc)
        self._check_stalls()
        with self._lock:
            state = self.state
            state.parent_dropped = dict(sorted(self.channel.dropped.items()))
            self._handle(make_event(
                "run_end",
                wall_s=self._clock() - self._start_wall_s,
                done=state.done,
                cached=state.cached,
                stalls=state.stall_count,
                dropped=state.total_dropped(),
            ))
        self.channel.close()

    # ----------------------------------------------------------- internals
    def _loop(self) -> None:
        while not self._stop.is_set():
            doc = self.channel.drain(timeout_s=0.2)
            if doc is not None:
                self._handle(doc)
            now_wall_s = self._clock()
            self._check_stalls()
            if now_wall_s - self._last_progress_wall_s \
                    >= self.progress_period_s:
                self._last_progress_wall_s = now_wall_s
                self._emit_progress()

    def _handle(self, doc: Dict[str, Any]) -> None:
        with self._lock:
            self.state.apply(doc)
            if doc.get("kind") == "point_end":
                wall_s = doc.get("wall_s")
                if isinstance(wall_s, (int, float)):
                    self.cost_model.observe(
                        str(doc.get("method")), float(wall_s)
                    )
            self._fan_out(doc)

    def _fan_out(self, doc: Dict[str, Any]) -> None:
        for consumer in list(self.consumers):
            try:
                consumer(doc)
            except OSError as exc:
                self.consumers.remove(consumer)
                self.consumer_errors.append(
                    f"{type(consumer).__name__}: {exc}"
                )

    def _emit_progress(self) -> None:
        with self._lock:
            state = self.state
            eta_s = self.cost_model.eta_s(state.pending, state.jobs)
            self._handle(make_event(
                "progress",
                done=state.done,
                cached=state.cached,
                running=len(state.running),
                eta_s=eta_s,
            ))

    def _check_stalls(self) -> None:
        now_wall_s = self._clock()
        with self._lock:
            for point in list(self.state.running.values()):
                if point.key in self._flagged_stalls:
                    continue
                elapsed_s = now_wall_s - point.start_wall_s
                predicted_s = self.cost_model.predicted_s(point.method)
                slow = (
                    predicted_s is not None
                    and elapsed_s > max(self.stall_factor * predicted_s,
                                        self.stall_floor_s)
                )
                worker = self.state.workers.get(point.pid)
                silent_s = (
                    now_wall_s - worker.last_seen_wall_s
                    if worker is not None else elapsed_s
                )
                lost = (
                    silent_s > self.heartbeat_loss_s
                    and elapsed_s > self.stall_floor_s
                )
                if not slow and not lost:
                    continue
                self._flagged_stalls.add(point.key)
                fields: Dict[str, Any] = {
                    "key": point.key,
                    "method": point.method,
                    "elapsed_s": elapsed_s,
                    "predicted_s": predicted_s,
                    "factor": (
                        elapsed_s / predicted_s
                        if predicted_s else 0.0
                    ),
                }
                if lost and point.pid not in self._lost_pids:
                    self._lost_pids.add(point.pid)
                    fields["lost_pid"] = point.pid
                    fields["silent_s"] = silent_s
                self._handle(make_event("stall", **fields))


class StreamWriter:
    """NDJSON consumer writing one schema-stamped line per event.

    ``target`` is a filesystem path or a decimal fd number (``"2"``,
    ``"7"``) — the same convention the trace/metrics flags use.  Opening
    errors propagate as ``OSError`` so the CLI can render its one-line
    message; mid-run write errors also raise ``OSError``, which the hub
    turns into a detach.
    """

    def __init__(self, target: str) -> None:
        self.target = target
        if target.isdigit():
            self._fh: IO[str] = os.fdopen(int(target), "w")
        else:
            path = Path(target)
            if path.parent and not path.parent.exists():
                path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = path.open("w")

    def __call__(self, doc: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - teardown race
            pass


class ProgressRenderer:
    """Single-line TTY progress plus a final stall/drop report."""

    def __init__(self, out: Optional[IO[str]] = None) -> None:
        self._out = out if out is not None else sys.stderr
        self._state = SweepState()
        self._line_open = False

    def __call__(self, doc: Dict[str, Any]) -> None:
        self._state.apply(doc)
        kind = doc.get("kind")
        if kind in ("progress", "point_end", "point_cached", "batch",
                    "figure_start"):
            self._render_line()
        elif kind == "stall":
            self._end_line()
            key = str(doc.get("key"))[:12]
            elapsed_s = float(doc.get("elapsed_s", 0.0) or 0.0)
            lost_pid = doc.get("lost_pid")
            why = (
                f"worker {lost_pid} silent" if lost_pid is not None
                else f"{doc.get('factor', 0.0):.1f}x predicted"
            )
            self._out.write(
                f"comb: stall: point {key} running {elapsed_s:.1f}s "
                f"({why})\n"
            )
        elif kind == "run_end":
            self._end_line()
            self._render_final(doc)
        self._out.flush()

    def _render_line(self) -> None:
        state = self._state
        parts = [
            f"{state.done}/{max(state.tasks - state.cached, 0)} pts",
            f"{state.cached} cached",
            f"{len(state.running)} running",
        ]
        if state.figure:
            parts.insert(0, str(state.figure))
        if state.eta_s is not None:
            parts.append(f"eta {state.eta_s:.0f}s")
        if state.stall_count:
            parts.append(f"{state.stall_count} stalled")
        self._out.write("\r\x1b[2Kcomb: " + " | ".join(parts))
        self._line_open = True

    def _end_line(self) -> None:
        if self._line_open:
            self._out.write("\n")
            self._line_open = False

    def _render_final(self, doc: Dict[str, Any]) -> None:
        state = self._state
        wall_s = float(doc.get("wall_s", 0.0) or 0.0)
        self._out.write(
            f"comb: done: {state.done} simulated, {state.cached} cached "
            f"in {wall_s:.1f}s\n"
        )
        for stall in state.stalls:
            key = str(stall.get("key"))[:12]
            self._out.write(
                f"comb: stall report: {key} ({stall.get('method')}) "
                f"ran {float(stall.get('elapsed_s', 0.0) or 0.0):.1f}s\n"
            )
        dropped = state.total_dropped()
        if dropped:
            total = sum(dropped.values())
            detail = ", ".join(f"{k}={v}" for k, v in dropped.items())
            self._out.write(
                f"comb: telemetry dropped {total} events ({detail})\n"
            )


# ------------------------------------------------------------------- top
def load_stream_state(stream_path: Path) -> SweepState:
    """Re-derive a :class:`SweepState` from a stream file's lines."""
    state = SweepState()
    with stream_path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                state.invalid_lines += 1
                continue
            if not isinstance(doc, dict) or validate_stream_event(doc):
                state.invalid_lines += 1
                continue
            state.apply(doc)
    return state


def render_top(state: SweepState, now_wall_s: Optional[float] = None) -> str:
    """``comb top``'s screen: run header, workers, running points."""
    if now_wall_s is None:
        now_wall_s = time.time()
    lines: List[str] = []
    status = "finished" if state.finished else "running"
    header = f"comb top — run {state.run_id or '?'} [{status}]"
    if state.cmd:
        header += f" — {state.cmd}"
    lines.append(header)
    progress = (
        f"  points: {state.done} done, {state.cached} cached, "
        f"{len(state.running)} running, {state.pending} pending "
        f"(jobs={state.jobs})"
    )
    if state.eta_s is not None and not state.finished:
        progress += f", eta {state.eta_s:.0f}s"
    if state.wall_s is not None:
        progress += f", wall {state.wall_s:.1f}s"
    lines.append(progress)
    if state.workers:
        lines.append(
            f"  {'pid':>8s} {'state':8s} {'points':>6s} "
            f"{'events':>12s} {'sim-clock':>12s}  current"
        )
        for pid in sorted(state.workers):
            worker = state.workers[pid]
            label = "lost" if worker.lost else (
                "busy" if worker.current_key else "idle"
            )
            sim = (
                f"{worker.sim_now_s:.6f}s"
                if worker.sim_now_s is not None else "-"
            )
            current = (worker.current_key or "-")[:16]
            lines.append(
                f"  {pid:>8d} {label:8s} {worker.points_done:>6d} "
                f"{worker.events_processed:>12d} {sim:>12s}  {current}"
            )
    for point in sorted(state.running.values(), key=lambda p: p.key):
        elapsed_s = max(now_wall_s - point.start_wall_s, 0.0)
        mark = " STALLED" if point.stalled else ""
        lines.append(
            f"  running {point.key[:16]} {point.method}/{point.system} "
            f"pid={point.pid} {elapsed_s:.1f}s{mark}"
        )
    for stall in state.stalls:
        lines.append(
            f"  stall: {str(stall.get('key'))[:16]} "
            f"({stall.get('method')}) "
            f"{float(stall.get('elapsed_s', 0.0) or 0.0):.1f}s"
        )
    dropped = state.total_dropped()
    if dropped:
        lines.append(
            "  dropped: " + ", ".join(f"{k}={v}" for k, v in dropped.items())
        )
    if state.invalid_lines:
        lines.append(f"  ({state.invalid_lines} invalid stream lines)")
    return "\n".join(lines)


def run_top(
    stream_path: Path,
    once: bool = False,
    interval_s: float = 1.0,
    out: Optional[IO[str]] = None,
) -> int:
    """Attach to a sweep via its ``--progress-stream`` file (``comb top``).

    Re-reads the whole stream each refresh — stream files are small
    (bounded by point count, not sim events) and re-deriving beats
    tail-seek bookkeeping.  With ``once`` the screen renders a single
    time (tests, CI); otherwise it refreshes until the run finishes.
    """
    stream = out if out is not None else sys.stdout
    while True:
        state = load_stream_state(stream_path)
        screen = render_top(state)
        if once:
            stream.write(screen + "\n")
            return 0
        stream.write("\x1b[2J\x1b[H" + screen + "\n")
        stream.flush()
        if state.finished:
            return 0
        time.sleep(interval_s)


__all__ = [
    "Consumer",
    "CostModel",
    "DEFAULT_HEARTBEAT_LOSS_FACTOR",
    "DEFAULT_PROGRESS_PERIOD_S",
    "DEFAULT_STALL_FACTOR",
    "DEFAULT_STALL_FLOOR_S",
    "ProgressRenderer",
    "StreamWriter",
    "SweepState",
    "TelemetryHub",
    "load_stream_state",
    "render_top",
    "run_top",
]
