"""The observer: one tracer + one metrics registry per observed run.

:class:`Observer` owns an :class:`~repro.obs.tracer.ObsTracer` (event
timeline, ring-buffered) and a :class:`~repro.obs.metrics.MetricsRegistry`
(derived aggregates).  Worlds built while the observer is ambient (see
:mod:`repro.obs.context`) attach the tracer through the simulator's
``Tracer`` seam and install queue observers on the MPI matching
structures, so one object captures the full per-run picture:

* per-phase sim-time breakdowns — PWW post/work/wait durations
  (``pww_phase`` events from :mod:`repro.core.pww`);
* poll economics — hit/miss counts from the polling method's completion
  tests (``poll`` / ``poll_empty`` events);
* rendezvous stalls — sim-time between an RTS arriving and the matching
  GET being issued (Portals), plus GM eager-token watermarks;
* MPI request latency (post → complete) and match-queue depth watermarks.

Like the sanitizer, the observer is observation-only: every hook is a
passive read of state the simulator computes anyway, so observed runs
are bit-identical to bare runs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from .metrics import DEFAULT_SIM_TIME_BUCKETS_S, MetricsRegistry
from .tracer import ObsEvent, ObsTracer

#: Queue-mutation ops and their effect on the queue's depth.
_DEPTH_DELTA = {
    "q_post": 1, "q_match": -1, "q_remove": -1,
    "q_unex_add": 1, "q_unex_match": -1,
}

#: Network event kinds counted 1:1 into ``sim.net.<kind>`` counters.
_NET_KINDS = frozenset(
    ["wire_tx", "wire_rx", "wire_drop", "packet_tx", "nic_rx"]
)


def _chain(
    prev: Optional[Callable[[str, Any], None]],
    nxt: Callable[[str, Any], None],
) -> Callable[[str, Any], None]:
    """Compose queue observers so an earlier attachment (e.g. the
    sanitizer's) keeps seeing every mutation."""
    if prev is None:
        return nxt

    def chained(op: str, obj: Any) -> None:
        prev(op, obj)
        nxt(op, obj)

    return chained


class Observer:
    """Captures a structured timeline and derived metrics for one run.

    Parameters
    ----------
    ring_capacity:
        Per-kind event ring size (newest events survive).
    kinds:
        If not ``None``, restrict the timeline to these event kinds
        (metrics are derived only from recorded events).
    kernel:
        Also record the per-event kernel stream (very noisy).
    """

    def __init__(
        self,
        ring_capacity: int = 65536,
        kinds: Optional[Set[str]] = None,
        kernel: bool = False,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = ObsTracer(
            kinds=kinds, ring_capacity=ring_capacity, kernel=kernel
        )
        self.tracer.dispatch = self._on_event
        self.worlds: List[Any] = []
        self._req_posted_at_s: Dict[int, float] = {}
        self._rts_seen_at_s: Dict[int, float] = {}

    # ------------------------------------------------------------ attachment
    def install(self, world: Any) -> None:
        """Attach queue observers to a freshly built world.

        Called automatically by :func:`repro.mpi.world.build_world` when
        this observer is ambient.  Existing queue observers (the
        sanitizer installs its own) are chained, not replaced.
        """
        self.worlds.append(world)
        engine = world.engine
        for ep in world.endpoints:
            dev = ep.device
            for attr in ("posted", "k_posted"):
                q = getattr(dev, attr, None)
                if q is not None:
                    q.observer = _chain(
                        q.observer,
                        self._queue_observer(engine, f"rank{dev.rank}.{attr}"),
                    )
            for attr in ("unexpected", "k_unexpected"):
                q = getattr(dev, attr, None)
                if q is not None:
                    q.observer = _chain(
                        q.observer,
                        self._queue_observer(
                            engine, f"rank{dev.rank}.{attr}", unexpected=True
                        ),
                    )

    def _queue_observer(
        self, engine: Any, source: str, unexpected: bool = False
    ) -> Callable[[str, Any], None]:
        prefix = "q_unex_" if unexpected else "q_"
        tracer = self.tracer

        def observe(op: str, obj: Any) -> None:
            tracer.record(engine.now, source, prefix + op, None)

        return observe

    # ---------------------------------------------------------------- events
    def _on_event(self, ev: ObsEvent) -> None:
        """Derive metrics from one stored trace event."""
        kind = ev.kind
        metrics = self.metrics
        if kind == "pww_phase":
            _batch, _t0_s, post_s, work_s, wait_s = ev.detail
            metrics.counter("sim.pww.batches").inc()
            for phase, dur_s in (
                ("post", post_s), ("work", work_s), ("wait", wait_s)
            ):
                metrics.counter(f"sim.pww.{phase}_total_s").inc(dur_s)
                metrics.histogram(
                    f"sim.pww.{phase}_s", DEFAULT_SIM_TIME_BUCKETS_S
                ).observe(dur_s)
        elif kind == "poll":
            (n_done,) = ev.detail
            if n_done > 0:
                metrics.counter("sim.poll.hits").inc()
                metrics.counter("sim.poll.completions").inc(n_done)
            else:
                metrics.counter("sim.poll.misses").inc()
        elif kind == "poll_empty":
            (cycles,) = ev.detail
            metrics.counter("sim.poll.misses").inc(cycles)
        elif kind == "req_post":
            req_id = ev.detail[0]
            metrics.counter("sim.mpi.req_posted").inc()
            self._req_posted_at_s[req_id] = ev.time_s
        elif kind == "req_complete":
            req_id = ev.detail[0]
            metrics.counter("sim.mpi.req_completed").inc()
            posted_s = self._req_posted_at_s.pop(req_id, None)
            if posted_s is not None:
                metrics.histogram(
                    "sim.mpi.req_latency_s", DEFAULT_SIM_TIME_BUCKETS_S
                ).observe(ev.time_s - posted_s)
        elif kind == "rts_rx":
            metrics.counter("sim.rndv.rts").inc()
            self._rts_seen_at_s[ev.detail[0]] = ev.time_s
        elif kind == "get_issued":
            metrics.counter("sim.rndv.gets").inc()
            rts_s = self._rts_seen_at_s.pop(ev.detail[0], None)
            if rts_s is not None:
                metrics.histogram(
                    "sim.rndv.stall_s", DEFAULT_SIM_TIME_BUCKETS_S
                ).observe(ev.time_s - rts_s)
        elif kind == "gm_tokens":
            node, tokens, _max_tokens = ev.detail
            metrics.gauge(f"sim.gm.tokens.node{node}").set(tokens)
        elif kind in _NET_KINDS:
            metrics.counter(f"sim.net.{kind}").inc()
        elif kind in _DEPTH_DELTA:
            metrics.gauge(f"sim.queue.{ev.source}.depth").add(
                _DEPTH_DELTA[kind]
            )

    # --------------------------------------------------------------- results
    def events(self) -> List[ObsEvent]:
        """The retained timeline, in emission order."""
        return self.tracer.events()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot: metrics + timeline accounting."""
        return {
            "metrics": self.metrics.to_dict(),
            "trace": {
                "event_counts": self.tracer.counts(),
                "dropped": self.tracer.dropped(),
            },
        }

    def summary(self) -> str:
        """One-line human summary, e.g. for the CLI."""
        n_events = sum(self.tracer.counts().values())
        n_dropped = sum(self.tracer.dropped().values())
        drop_note = f" ({n_dropped} dropped)" if n_dropped else ""
        return (
            f"observer: {n_events} events across "
            f"{len(self.tracer.rings)} kinds{drop_note}, "
            f"{len(self.metrics)} metrics"
        )
