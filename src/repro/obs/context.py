"""Ambient observer resolution.

Mirrors :func:`repro.verify.context.use_sanitizer`: library code never
takes an observer argument — drivers make one ambient for the dynamic
extent of a run and every world built inside
(:func:`repro.mpi.world.build_world`) attaches it automatically.  With no
active observer the lookup is a single list check, so the default path
stays free of observation overhead.

An observer and a sanitizer may be ambient simultaneously; the world
builder fans the tracer seam out to both (see
:class:`repro.sim.trace.MultiTracer`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only
    from .observer import Observer

_active_stack: List["Observer"] = []


def current_observer() -> Optional["Observer"]:
    """The innermost ambient observer, or ``None`` (observation off)."""
    return _active_stack[-1] if _active_stack else None


@contextmanager
def use_observer(observer: Optional["Observer"]) -> Iterator[Optional["Observer"]]:
    """Make ``observer`` ambient for the dynamic extent of the block.

    ``None`` is accepted (and is a no-op) so callers can write
    ``with use_observer(maybe_observer):`` unconditionally.
    """
    if observer is None:
        yield None
        return
    _active_stack.append(observer)
    try:
        yield observer
    finally:
        _active_stack.pop()
