"""Causal span stitching: raw trace events → per-message span trees.

The observer's event stream is flat: packet hops, queue mutations,
request lifecycle marks, PWW phase records.  This module correlates
those events into *causal spans* — one tree per wire message, keyed on
the ``msg_id`` every packet already carries — so downstream analysis
(:mod:`repro.obs.attribution`) can ask *why* time passed instead of
merely *where*:

* ``rts_wire`` / ``cts_wire`` / ``data_wire`` — packets physically in
  flight (NIC ``packet_tx`` → receiving NIC ``nic_rx``);
* ``handshake_stall`` — an RTS sat at the receiver before the CTS/GET
  answered it (library progress stall on the receive side);
* ``progress_stall`` — a CTS sat at the sender before the data transfer
  was programmed (library progress stall on the send side);
* ``token_stall`` — an eager send queued behind exhausted GM credits;
* ``completion`` — data fully arrived but the request not yet marked
  complete (completion-discovery delay; for eager receives this is the
  host-CPU bounce-buffer copy).

Requests are tied to messages by the ``msg_bind`` events the MPI request
layer emits at completion, so spans also know their request endpoints
(``req_post`` time extends the root span back to the MPI post).

Stitching is pure post-processing over whatever events survived the ring
buffers: every span requires both its endpoints, so truncated streams
yield fewer spans, never malformed ones.  The well-formedness contract
(children inside their parent, no cycles, non-negative durations) is
property-tested in ``tests/test_obs_span_properties.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .tracer import ObsEvent

#: Span names (the ``name`` field of every :class:`Span`).
SPAN_MSG = "msg"
SPAN_RTS_WIRE = "rts_wire"
SPAN_HANDSHAKE_STALL = "handshake_stall"
SPAN_CTS_WIRE = "cts_wire"
SPAN_PROGRESS_STALL = "progress_stall"
SPAN_DATA_WIRE = "data_wire"
SPAN_TOKEN_STALL = "token_stall"
SPAN_COMPLETION = "completion"

#: Every child span name, in causal order.
CHILD_SPAN_NAMES = (
    SPAN_TOKEN_STALL,
    SPAN_RTS_WIRE,
    SPAN_HANDSHAKE_STALL,
    SPAN_CTS_WIRE,
    SPAN_PROGRESS_STALL,
    SPAN_DATA_WIRE,
    SPAN_COMPLETION,
)


@dataclass(frozen=True)
class Span:
    """One interval of a message's causal history.

    ``parent_id`` is ``None`` for the per-message root (``name="msg"``);
    every child's interval lies within its parent's.
    """

    span_id: int
    msg_id: int
    name: str
    t0_s: float
    t1_s: float
    parent_id: Optional[int] = None

    @property
    def duration_s(self) -> float:
        return self.t1_s - self.t0_s


@dataclass
class MessageSpans:
    """The stitched span tree of one wire message."""

    msg_id: int
    root: Span
    children: List[Span] = field(default_factory=list)
    #: ``True`` when the message never used a rendezvous handshake.
    eager: bool = True
    #: MPI request ids bound to this message (``msg_bind`` events).
    req_ids: Tuple[int, ...] = ()

    def child(self, name: str) -> Optional[Span]:
        """The child span called ``name``, or ``None``."""
        for span in self.children:
            if span.name == name:
                return span
        return None

    def spans(self) -> List[Span]:
        """Root first, then children in causal order."""
        return [self.root, *self.children]

    @property
    def stall_start_s(self) -> Optional[float]:
        """Earliest instant a progress pass could have advanced this
        message (start of its first stall span), or ``None`` if the
        message never stalled.  This is the anchor for the
        counterfactual reattribution in :mod:`repro.obs.attribution`."""
        starts = [
            s.t0_s for s in self.children
            if s.name in (SPAN_HANDSHAKE_STALL, SPAN_PROGRESS_STALL)
        ]
        return min(starts) if starts else None

    @property
    def stall_total_s(self) -> float:
        """Summed duration of this message's progress-stall spans — the
        delay the MPI library injected into the handshake, i.e. how much
        earlier the data transfer could have started had the library
        progressed promptly (an offloaded transport's stalls are ≈ 0)."""
        return sum(
            s.duration_s for s in self.children
            if s.name in (SPAN_HANDSHAKE_STALL, SPAN_PROGRESS_STALL)
        )


class SpanForest:
    """Every message's span tree from one stitched event stream."""

    def __init__(self, messages: Dict[int, MessageSpans]) -> None:
        self.messages = messages

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self) -> Iterator[MessageSpans]:
        for msg_id in sorted(self.messages):
            yield self.messages[msg_id]

    def spans(self) -> List[Span]:
        """Every span of every message, roots before their children."""
        out: List[Span] = []
        for msg in self:
            out.extend(msg.spans())
        return out

    def to_dicts(self) -> List[Dict[str, object]]:
        """JSON-ready flat span list (one dict per span)."""
        return [
            {
                "span_id": s.span_id,
                "msg_id": s.msg_id,
                "name": s.name,
                "t0_s": s.t0_s,
                "t1_s": s.t1_s,
                "parent_id": s.parent_id,
            }
            for s in self.spans()
        ]


class _MsgScratch:
    """Per-message accumulator while scanning the event stream."""

    __slots__ = (
        "rts_tx_s", "rts_rx_s", "cts_tx_s", "cts_rx_s",
        "data_tx_first_s", "data_rx_last_s", "token_wait_s",
        "req_ids", "first_s", "last_s",
    )

    def __init__(self) -> None:
        self.rts_tx_s: Optional[float] = None
        self.rts_rx_s: Optional[float] = None
        self.cts_tx_s: Optional[float] = None
        self.cts_rx_s: Optional[float] = None
        self.data_tx_first_s: Optional[float] = None
        self.data_rx_last_s: Optional[float] = None
        self.token_wait_s: Optional[float] = None
        self.req_ids: List[int] = []
        self.first_s: Optional[float] = None
        self.last_s: Optional[float] = None

    def touch(self, time_s: float) -> None:
        if self.first_s is None or time_s < self.first_s:
            self.first_s = time_s
        if self.last_s is None or time_s > self.last_s:
            self.last_s = time_s


def stitch(events: Sequence[ObsEvent]) -> SpanForest:
    """Correlate ``events`` into a :class:`SpanForest`.

    Only events carrying a ``msg_id`` participate (``packet_tx`` /
    ``nic_rx``, ``gm_token_wait``, ``msg_bind`` plus the bound requests'
    ``req_post`` / ``req_complete``).  ACK packets are flow control, not
    message payload, and are ignored.  Any event missing its causal
    counterpart simply produces no span.
    """
    scratch: Dict[int, _MsgScratch] = {}
    req_post_s: Dict[int, float] = {}
    req_complete_s: Dict[int, float] = {}

    def entry(msg_id: int) -> _MsgScratch:
        ms = scratch.get(msg_id)
        if ms is None:
            ms = scratch[msg_id] = _MsgScratch()
        return ms

    ordered = sorted(events, key=lambda ev: ev.seq)
    for ev in ordered:
        kind = ev.kind
        if kind in ("packet_tx", "nic_rx"):
            pkt_kind, msg_id = ev.detail[0], ev.detail[1]
            if pkt_kind == "ack":
                continue  # credit return: reuses a stale msg_id
            ms = entry(int(msg_id))
            ms.touch(ev.time_s)
            if kind == "packet_tx":
                if pkt_kind == "rts" and ms.rts_tx_s is None:
                    ms.rts_tx_s = ev.time_s
                elif pkt_kind == "cts" and ms.cts_tx_s is None:
                    ms.cts_tx_s = ev.time_s
                elif pkt_kind == "data" and ms.data_tx_first_s is None:
                    ms.data_tx_first_s = ev.time_s
            else:
                if pkt_kind == "rts" and ms.rts_rx_s is None:
                    ms.rts_rx_s = ev.time_s
                elif pkt_kind == "cts" and ms.cts_rx_s is None:
                    ms.cts_rx_s = ev.time_s
                elif pkt_kind == "data":
                    ms.data_rx_last_s = ev.time_s
        elif kind == "gm_token_wait":
            ms = entry(int(ev.detail[0]))
            ms.touch(ev.time_s)
            if ms.token_wait_s is None:
                ms.token_wait_s = ev.time_s
        elif kind == "msg_bind":
            req_id, msg_id = int(ev.detail[0]), int(ev.detail[1])
            ms = entry(msg_id)
            ms.touch(ev.time_s)
            if req_id not in ms.req_ids:
                ms.req_ids.append(req_id)
        elif kind == "req_post":
            req_post_s.setdefault(int(ev.detail[0]), ev.time_s)
        elif kind == "req_complete":
            req_complete_s.setdefault(int(ev.detail[0]), ev.time_s)

    messages: Dict[int, MessageSpans] = {}
    next_id = 0
    for msg_id in sorted(scratch):
        ms = scratch[msg_id]
        lo_s, hi_s = ms.first_s, ms.last_s
        assert lo_s is not None and hi_s is not None  # touch() ran
        completes = [
            req_complete_s[r] for r in ms.req_ids if r in req_complete_s
        ]
        posts = [req_post_s[r] for r in ms.req_ids if r in req_post_s]
        if posts:
            lo_s = min(lo_s, min(posts))
        if completes:
            hi_s = max(hi_s, max(completes))

        pairs: List[Tuple[str, Optional[float], Optional[float]]] = [
            (SPAN_TOKEN_STALL, ms.token_wait_s, ms.data_tx_first_s),
            (SPAN_RTS_WIRE, ms.rts_tx_s, ms.rts_rx_s),
            (SPAN_HANDSHAKE_STALL, ms.rts_rx_s, ms.cts_tx_s),
            (SPAN_CTS_WIRE, ms.cts_tx_s, ms.cts_rx_s),
            (SPAN_PROGRESS_STALL, ms.cts_rx_s, ms.data_tx_first_s),
            (SPAN_DATA_WIRE, ms.data_tx_first_s, ms.data_rx_last_s),
        ]
        if ms.data_rx_last_s is not None:
            late = [c for c in completes if c >= ms.data_rx_last_s]
            if late:
                pairs.append((SPAN_COMPLETION, ms.data_rx_last_s, max(late)))

        root_id = next_id
        next_id += 1
        children: List[Span] = []
        for name, t0_s, t1_s in pairs:
            if t0_s is None or t1_s is None or t1_s < t0_s:
                continue
            children.append(
                Span(next_id, msg_id, name, t0_s, t1_s, parent_id=root_id)
            )
            next_id += 1
        root = Span(root_id, msg_id, SPAN_MSG, lo_s, hi_s, parent_id=None)
        messages[msg_id] = MessageSpans(
            msg_id=msg_id,
            root=root,
            children=children,
            eager=ms.rts_tx_s is None and ms.rts_rx_s is None,
            req_ids=tuple(ms.req_ids),
        )
    return SpanForest(messages)
