"""COMB — A Portable Benchmark Suite for Assessing MPI Overlap, reproduced.

A faithful reimplementation of Lawry, Wilson, Maccabe & Brightwell's COMB
benchmark suite (IEEE Cluster 2002) on a deterministic discrete-event
cluster simulator: a 500 MHz-class node pair with Myrinet-style NICs, a
GM-like OS-bypass stack (library-polled progress, eager/rendezvous) and a
kernel-Portals-like stack (interrupt-driven, application offload), plus the
suite's two measurement methods (Polling and Post-Work-Wait) and every
results figure of the paper.

Quickstart::

    from repro import CombSuite, gm_system, portals_system

    suite = CombSuite(gm_system())
    pt = suite.polling(msg_bytes=100 * 1024, poll_interval_iters=10_000)
    print(pt.bandwidth_MBps, pt.availability)
    print(CombSuite(portals_system()).offload_report())
"""

from .config import (
    CpuConfig,
    GmParams,
    InterruptConfig,
    MachineConfig,
    NicConfig,
    PortalsParams,
    PRESETS,
    ProgressModel,
    SwitchConfig,
    SystemConfig,
    TcpParams,
    TransportKind,
    get_system,
    gm_system,
    portals_system,
    tcp_system,
)
from .core import (
    CombSuite,
    OffloadVerdict,
    PAPER_SIZES,
    PollingConfig,
    PollingPoint,
    PwwConfig,
    PwwPoint,
    Series,
    run_polling,
    run_pww,
)
from .mpi import ANY_SOURCE, ANY_TAG, World, build_world
from .patterns import PatternConfig, PatternPoint, run_pattern

__version__ = "1.0.0"

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CombSuite",
    "CpuConfig",
    "GmParams",
    "InterruptConfig",
    "MachineConfig",
    "NicConfig",
    "OffloadVerdict",
    "PAPER_SIZES",
    "PRESETS",
    "PatternConfig",
    "PatternPoint",
    "PollingConfig",
    "PollingPoint",
    "PortalsParams",
    "ProgressModel",
    "PwwConfig",
    "PwwPoint",
    "Series",
    "SwitchConfig",
    "SystemConfig",
    "TcpParams",
    "TransportKind",
    "World",
    "__version__",
    "build_world",
    "get_system",
    "gm_system",
    "portals_system",
    "run_pattern",
    "run_polling",
    "run_pww",
    "tcp_system",
]
