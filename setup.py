"""Thin setup.py shim: enables legacy editable installs on environments
without the `wheel` package (offline).  All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
