"""Tests: every public measurement is bit-deterministic.

The simulator has no hidden global state (the only global counter is the
wire message id, which does not influence timing), so identical inputs must
give identical outputs — the property every figure regeneration relies on.
"""

import pytest

from repro.baselines import run_netperf, run_pingpong
from repro.config import gm_system, portals_system
from repro.core import PollingConfig, PwwConfig, run_polling, run_pww

KB = 1024


@pytest.mark.parametrize("factory", [gm_system, portals_system],
                         ids=["gm", "portals"])
class TestDeterminism:
    def test_polling_repeatable(self, factory):
        cfg = PollingConfig(msg_bytes=50 * KB, poll_interval_iters=7_777,
                            measure_s=0.02, warmup_s=0.004)
        a = run_polling(factory(), cfg)
        b = run_polling(factory(), cfg)
        assert a.availability == b.availability
        assert a.bandwidth_Bps == b.bandwidth_Bps
        assert a.iters == b.iters and a.msgs == b.msgs

    def test_pww_repeatable(self, factory):
        cfg = PwwConfig(msg_bytes=100 * KB, work_interval_iters=333_333,
                        batches=5, warmup_batches=1)
        a = run_pww(factory(), cfg)
        b = run_pww(factory(), cfg)
        assert (a.post_s, a.work_s, a.wait_s) == (b.post_s, b.work_s, b.wait_s)

    def test_pingpong_repeatable(self, factory):
        a = run_pingpong(factory(), 30 * KB, repeats=4, warmup_msgs=1)
        b = run_pingpong(factory(), 30 * KB, repeats=4, warmup_msgs=1)
        assert a.latency_s == b.latency_s

    def test_netperf_repeatable(self, factory):
        a = run_netperf(factory(), msg_bytes=30 * KB, wait_mode="busywait")
        b = run_netperf(factory(), msg_bytes=30 * KB, wait_mode="busywait")
        assert a.availability == b.availability


def test_configs_do_not_leak_between_runs():
    """Running one system never perturbs a later run of another."""
    cfg = PollingConfig(msg_bytes=50 * KB, poll_interval_iters=5_000,
                        measure_s=0.02, warmup_s=0.004)
    solo = run_polling(gm_system(), cfg)
    run_polling(portals_system(), cfg)  # interleave a different system
    again = run_polling(gm_system(), cfg)
    assert solo.bandwidth_Bps == again.bandwidth_Bps
    assert solo.availability == again.availability
