"""Tests: the sampling monitor and sparkline rendering."""

import pytest

from repro.sim import Engine, Monitor, TimeSeries, sparkline


class TestMonitor:
    def test_samples_on_period(self):
        engine = Engine()
        counter = {"v": 0}

        def bump():
            for _ in range(10):
                yield engine.timeout(0.001)
                counter["v"] += 1

        monitor = Monitor(engine, period_s=0.002)
        series = monitor.probe("v", lambda: counter["v"])
        engine.spawn(bump())
        engine.run()
        assert len(series) >= 4
        assert series.values == sorted(series.values)  # monotone counter

    def test_monitor_does_not_keep_simulation_alive(self):
        engine = Engine()
        Monitor(engine, period_s=0.001).probe("x", lambda: 1.0)
        engine.timeout(0.005)
        engine.run()
        # The run terminated: the monitor stopped rescheduling itself soon
        # after the last real event.
        assert engine.now <= 0.007

    def test_stop(self):
        engine = Engine()
        monitor = Monitor(engine, period_s=0.001, run_forever=True)
        series = monitor.probe("x", lambda: engine.now)

        def stopper():
            yield engine.timeout(0.0035)
            monitor.stop()

        engine.spawn(stopper())
        engine.run()
        assert len(series) == 3  # samples at 1, 2, 3 ms

    def test_duplicate_probe_rejected(self):
        engine = Engine()
        monitor = Monitor(engine, period_s=0.01)
        monitor.probe("x", lambda: 0.0)
        with pytest.raises(ValueError):
            monitor.probe("x", lambda: 1.0)

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            Monitor(Engine(), period_s=0.0)


class TestTimeSeries:
    def test_rate(self):
        ts = TimeSeries("bytes")
        for i, v in enumerate([0, 100, 300, 300]):
            ts.append(i * 1.0, v)
        rate = ts.rate()
        assert rate.values == [100.0, 200.0, 0.0]
        assert rate.times == [1.0, 2.0, 3.0]

    def test_rate_of_short_series(self):
        ts = TimeSeries("x")
        ts.append(0.0, 5.0)
        assert len(ts.rate()) == 0


class TestSparkline:
    def test_renders_range_and_name(self):
        ts = TimeSeries("load")
        for i in range(20):
            ts.append(i * 0.1, i % 5)
        out = sparkline(ts, width=20)
        assert "load" in out
        assert "0" in out and "4" in out

    def test_empty_series(self):
        assert "no samples" in sparkline(TimeSeries("e"))

    def test_constant_series(self):
        ts = TimeSeries("c")
        ts.append(0.0, 7.0)
        ts.append(1.0, 7.0)
        out = sparkline(ts, width=10)
        assert "c" in out  # renders without dividing by zero
