"""Tests: the simulation sanitizer's invariant monitors.

Two obligations per monitor (the ISSUE's acceptance bar):

* a *clean-run* guarantee — across the golden scenario set (both
  transports, eager and rendezvous sizes, all three COMB drivers) every
  monitor reports zero violations;
* a *unit-level* detection check — fed a synthetic record stream
  containing its corruption class, the monitor flags it.  (End-to-end
  detection through real fault injection lives in
  ``test_verify_faults.py``.)
"""

from __future__ import annotations

import pytest

from repro.baselines import run_pingpong
from repro.config import gm_system, portals_system, tcp_system
from repro.core import PollingConfig, PwwConfig, run_polling, run_pww
from repro.mpi.world import build_world
from repro.sim.trace import TraceRecord
from repro.verify import (
    CausalityMonitor,
    ConservationMonitor,
    LifecycleMonitor,
    MatchingMonitor,
    Sanitizer,
    TokenMonitor,
    Violation,
    current_sanitizer,
    default_monitors,
    use_sanitizer,
)

KB = 1024

SYSTEMS = {"GM": gm_system, "Portals": portals_system, "TCP": tcp_system}


def run_scripted(system, msg_bytes=64 * KB, n_msgs=4, quiescent=True):
    """A fully-drained exchange: n_msgs each way, every request waited."""
    san = Sanitizer(quiescent=quiescent)
    with use_sanitizer(san):
        world = build_world(system)
    h0 = world.endpoint(0).bind(world.cluster[0].new_context("p0"))
    h1 = world.endpoint(1).bind(world.cluster[1].new_context("p1"))

    def p0():
        for i in range(n_msgs):
            yield from h0.send(1, msg_bytes, tag=i)
            yield from h0.recv(1, msg_bytes, tag=1000 + i)

    def p1():
        for i in range(n_msgs):
            yield from h1.recv(0, msg_bytes, tag=i)
            yield from h1.send(0, msg_bytes, tag=1000 + i)

    world.engine.spawn(p0(), name="p0")
    world.engine.spawn(p1(), name="p1")
    world.engine.run()  # drain completely (quiescent by construction)
    return san


# ----------------------------------------------------------------- clean runs
class TestCleanRuns:
    """The golden scenario set holds every invariant on every transport."""

    @pytest.mark.parametrize("name", sorted(SYSTEMS))
    @pytest.mark.parametrize("size", [1 * KB, 64 * KB])
    def test_scripted_quiescent_zero_violations(self, name, size):
        san = run_scripted(SYSTEMS[name](), msg_bytes=size)
        assert san.finalize() == [], san.summary()

    @pytest.mark.parametrize("name", sorted(SYSTEMS))
    @pytest.mark.parametrize("size", [1 * KB, 100 * KB])
    def test_pingpong_zero_violations(self, name, size):
        # Benchmark drivers stop mid-flight: live checks only.
        san = Sanitizer()
        with use_sanitizer(san):
            run_pingpong(SYSTEMS[name](), size, repeats=3, warmup_msgs=1)
        assert san.finalize() == [], san.summary()

    @pytest.mark.parametrize("name", ["GM", "Portals"])
    def test_polling_driver_zero_violations(self, name):
        san = Sanitizer()
        with use_sanitizer(san):
            run_polling(SYSTEMS[name](), PollingConfig(
                msg_bytes=100 * KB, poll_interval_iters=1_000,
                measure_s=0.01, warmup_s=0.002,
            ))
        assert san.finalize() == [], san.summary()

    @pytest.mark.parametrize("name", ["GM", "Portals"])
    def test_pww_driver_zero_violations(self, name):
        san = Sanitizer()
        with use_sanitizer(san):
            run_pww(SYSTEMS[name](), PwwConfig(
                work_interval_iters=100_000, batches=4, warmup_batches=1,
            ))
        assert san.finalize() == [], san.summary()

    def test_every_monitor_ran(self):
        """The clean verdict covers all five monitors, not an empty set."""
        san = run_scripted(gm_system())
        assert sorted(san.counts()) == [
            "causality", "conservation", "lifecycle", "matching", "tokens",
        ]


# ------------------------------------------------------------ unit detection
def _rec(kind, detail, time=1.0, source="test"):
    return TraceRecord(time, source, kind, detail)


class TestConservationMonitor:
    def test_duplicate_packet_flagged(self):
        m = ConservationMonitor()
        m.on_record(_rec("nic_rx", ("data", 7, 0), source="node0.nic"))
        m.on_record(_rec("nic_rx", ("data", 7, 0), source="node0.nic"))
        assert [v.kind for v in m.violations] == ["packet_duplicated"]

    def test_duplicate_excused_after_drop(self):
        """Go-back-N retransmits legitimately re-deliver after a loss."""
        m = ConservationMonitor()
        m.on_record(_rec("wire_drop", ("data", 6, 1)))
        m.on_record(_rec("nic_rx", ("data", 7, 0), source="node0.nic"))
        m.on_record(_rec("nic_rx", ("data", 7, 0), source="node0.nic"))
        assert m.violations == []

    def test_control_packets_not_tracked(self):
        m = ConservationMonitor()
        m.on_record(_rec("nic_rx", ("ack", 7, 0), source="node0.nic"))
        m.on_record(_rec("nic_rx", ("ack", 7, 0), source="node0.nic"))
        assert m.violations == []

    def test_pending_request_flagged_only_when_quiescent(self):
        world = build_world(gm_system())
        m = ConservationMonitor()
        m.on_record(_rec("req_post", (3, "recv", 1, 0, 1024)))
        m.finalize(world, quiescent=False)
        assert m.violations == []
        m.finalize(world, quiescent=True)
        assert [v.kind for v in m.violations] == ["request_never_completed"]

    def test_completed_request_not_flagged(self):
        world = build_world(gm_system())
        m = ConservationMonitor()
        m.on_record(_rec("req_post", (3, "recv", 1, 0, 1024)))
        m.on_record(_rec("req_complete", (3, "recv")))
        m.finalize(world, quiescent=True)
        assert m.violations == []

    def test_lost_packet_flagged_at_quiescence(self):
        world = build_world(gm_system())
        m = ConservationMonitor()
        m.on_record(_rec("packet_tx", ("data", 9, 0), source="node0.nic"))
        m.on_record(_rec("packet_tx", ("data", 9, 1), source="node0.nic"))
        m.on_record(_rec("nic_rx", ("data", 9, 0), source="node1.nic"))
        m.finalize(world, quiescent=True)
        assert [v.kind for v in m.violations] == ["packet_lost"]
        assert "9" in m.violations[0].detail


class TestCausalityMonitor:
    def test_schedule_past_flagged(self):
        m = CausalityMonitor()
        m.on_record(_rec("schedule_past", (-1e-6,), source="engine"))
        assert [v.kind for v in m.violations] == ["scheduled_in_past"]

    def test_per_source_time_regression(self):
        m = CausalityMonitor()
        m.on_record(_rec("packet_tx", (), time=2.0, source="a"))
        m.on_record(_rec("packet_tx", (), time=1.0, source="a"))
        assert [v.kind for v in m.violations] == ["time_regression"]

    def test_distinct_sources_independent(self):
        m = CausalityMonitor()
        m.on_record(_rec("packet_tx", (), time=2.0, source="a"))
        m.on_record(_rec("packet_tx", (), time=1.0, source="b"))
        assert m.violations == []

    def test_kernel_regression_hook(self):
        m = CausalityMonitor()
        m.on_kernel_regression(1.0, 2.0)
        assert [v.kind for v in m.violations] == ["clock_backwards"]


class TestTokenMonitor:
    def test_negative_tokens_flagged(self):
        m = TokenMonitor()
        m.on_record(_rec("gm_tokens", (1, -1, 16), source="rank0.gm"))
        assert [v.kind for v in m.violations] == ["negative_tokens"]

    def test_overflow_flagged(self):
        m = TokenMonitor()
        m.on_record(_rec("gm_tokens", (1, 17, 16), source="rank0.gm"))
        assert [v.kind for v in m.violations] == ["token_overflow"]

    def test_in_range_silent(self):
        m = TokenMonitor()
        for n in (0, 7, 16):
            m.on_record(_rec("gm_tokens", (1, n, 16), source="rank0.gm"))
        assert m.violations == []


class TestMatchingMonitor:
    class _Req:
        def __init__(self, req_id, done=False):
            self.req_id = req_id
            self.done = done

    class _Msg:
        def __init__(self, msg_id):
            self.msg_id = msg_id

    def test_double_post_flagged(self):
        m = MatchingMonitor()
        r = self._Req(1)
        m.on_record(_rec("q_post", r, source="rank0.posted"))
        m.on_record(_rec("q_post", r, source="rank0.posted"))
        assert [v.kind for v in m.violations] == ["double_post"]

    def test_match_without_post_flagged(self):
        m = MatchingMonitor()
        m.on_record(_rec("q_match", self._Req(1), source="rank0.posted"))
        assert [v.kind for v in m.violations] == ["match_without_post"]

    def test_matching_completed_request_flagged(self):
        m = MatchingMonitor()
        r = self._Req(1, done=True)
        m.on_record(_rec("q_post", r, source="rank0.posted"))
        m.on_record(_rec("q_match", r, source="rank0.posted"))
        assert [v.kind for v in m.violations] == ["matched_completed_request"]

    def test_duplicate_unexpected_flagged(self):
        m = MatchingMonitor()
        msg = self._Msg(5)
        m.on_record(_rec("q_unex_add", msg, source="rank0.unexpected"))
        m.on_record(_rec("q_unex_add", msg, source="rank0.unexpected"))
        assert [v.kind for v in m.violations] == ["duplicate_unexpected"]

    def test_get_without_rts_flagged(self):
        m = MatchingMonitor()
        m.on_record(_rec("get_issued", (9,), source="rank0.portals"))
        assert [v.kind for v in m.violations] == ["get_without_rts"]

    def test_get_after_rts_silent(self):
        m = MatchingMonitor()
        m.on_record(_rec("rts_rx", (9,), source="rank0.portals"))
        m.on_record(_rec("get_issued", (9,), source="rank0.portals"))
        assert m.violations == []

    def test_unanswered_rts_flagged_at_quiescence(self):
        world = build_world(portals_system())
        dev = world.endpoints[0].device
        dev._pending_get[42] = (object(), 1)
        m = MatchingMonitor()
        m.finalize(world, quiescent=True)
        assert "unanswered_rts" in [v.kind for v in m.violations]


class TestLifecycleMonitor:
    class _Req:
        def __init__(self, req_id):
            self.req_id = req_id
            self.done = False

    def test_complete_without_post_flagged(self):
        m = LifecycleMonitor()
        m.on_record(_rec("req_complete", (1, "recv")))
        assert [v.kind for v in m.violations] == ["complete_without_post"]

    def test_double_completion_flagged(self):
        m = LifecycleMonitor()
        m.on_record(_rec("req_post", (1, "send", 1, 0, 64)))
        m.on_record(_rec("req_complete", (1, "send")))
        m.on_record(_rec("req_complete", (1, "send")))
        assert [v.kind for v in m.violations] == ["double_completion"]

    def test_completed_after_cancel_flagged(self):
        m = LifecycleMonitor()
        m.on_record(_rec("req_post", (1, "recv", 1, 0, 64)))
        m.on_record(_rec("q_remove", self._Req(1), source="rank0.posted"))
        m.on_record(_rec("req_complete", (1, "recv")))
        assert [v.kind for v in m.violations] == ["completed_after_cancel"]

    def test_completed_while_posted_flagged(self):
        m = LifecycleMonitor()
        m.on_record(_rec("req_post", (1, "recv", 1, 0, 64)))
        m.on_record(_rec("q_post", self._Req(1), source="rank0.posted"))
        m.on_record(_rec("req_complete", (1, "recv")))
        assert [v.kind for v in m.violations] == ["completed_while_posted"]

    def test_legal_lifecycle_silent(self):
        m = LifecycleMonitor()
        m.on_record(_rec("req_post", (1, "recv", 1, 0, 64)))
        m.on_record(_rec("q_post", self._Req(1), source="rank0.posted"))
        m.on_record(_rec("q_match", self._Req(1), source="rank0.posted"))
        m.on_record(_rec("req_complete", (1, "recv")))
        assert m.violations == []


# ------------------------------------------------------------- sanitizer core
class TestSanitizer:
    def test_ambient_context_nesting(self):
        assert current_sanitizer() is None
        outer, inner = Sanitizer(), Sanitizer()
        with use_sanitizer(outer):
            assert current_sanitizer() is outer
            with use_sanitizer(inner):
                assert current_sanitizer() is inner
            assert current_sanitizer() is outer
        assert current_sanitizer() is None

    def test_use_sanitizer_accepts_none(self):
        with use_sanitizer(None):
            assert current_sanitizer() is None

    def test_tracer_stores_nothing(self):
        san = run_scripted(gm_system(), n_msgs=1)
        assert san.tracer.records == []

    def test_finalize_idempotent(self):
        san = run_scripted(gm_system(), n_msgs=1)
        assert san.finalize() == san.finalize()

    def test_detached_world_has_no_tracer(self):
        world = build_world(gm_system())
        assert world.tracer is None
        assert world.engine.trace is None
        assert world.endpoints[0].device.posted.observer is None

    def test_explicit_tracer_wins_over_ambient(self):
        from repro.sim.trace import Tracer

        mine = Tracer()
        with use_sanitizer(Sanitizer()) as san:
            world = build_world(gm_system(), tracer=mine)
        assert world.tracer is mine
        assert san.worlds == []

    def test_violations_are_picklable(self):
        import pickle

        v = Violation("conservation", "packet_lost", 0.5, "msg 1 packet 0")
        assert pickle.loads(pickle.dumps(v)) == v

    def test_default_monitors_fresh_instances(self):
        a, b = default_monitors(), default_monitors()
        assert {type(m) for m in a} == {type(m) for m in b}
        assert all(x is not y for x, y in zip(a, b))

    def test_summary_mentions_counts(self):
        san = Sanitizer()
        assert "0 violations" in san.summary()
        san.monitors[0].flag(1.0, "synthetic", "injected by test")
        assert "1 violation" in san.summary()
