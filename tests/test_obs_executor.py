"""Tests: executor wall-clock profiling + cache eviction accounting.

Satellite of the observability PR: the new ``metrics=`` seam on
:class:`~repro.core.executor.SweepExecutor` and the eviction counters on
:class:`~repro.core.executor.PointCache` are asserted against *forced*
hits, misses, and corrupt-record evictions, and the profiled path is
proven bit-identical to the unprofiled one.
"""

import json

import pytest

from repro.config import gm_system
from repro.core import (
    PointCache,
    PointTask,
    PollingConfig,
    SweepExecutor,
    task_key,
)
from repro.obs import MetricsRegistry

KB = 1024

#: Fast-but-real polling points (distinct intervals → distinct keys).
TASKS = [
    PointTask("polling", gm_system(), PollingConfig(
        msg_bytes=10 * KB, poll_interval_iters=interval,
        measure_s=0.002, warmup_s=0.0005, min_cycles=2,
    ))
    for interval in (1_000, 10_000)
]


def _corrupt(cache: PointCache, task: PointTask) -> None:
    """Overwrite a task's on-disk record with garbage."""
    cache._path(task_key(task)).write_text("{ not json")


# ------------------------------------------------------------ hit/miss stats
class TestLookupMetrics:
    def test_cold_run_counts_misses_only(self):
        reg = MetricsRegistry()
        ex = SweepExecutor(metrics=reg)
        ex.run(TASKS)
        assert reg.counter("executor.cache.misses").value == len(TASKS)
        assert "executor.cache.hits" not in reg
        assert reg.histogram("executor.lookup_miss_s").count == len(TASKS)

    def test_memo_hits_counted(self):
        reg = MetricsRegistry()
        ex = SweepExecutor(metrics=reg)
        ex.run(TASKS)
        ex.run(TASKS)  # second pass: all memo hits
        assert reg.counter("executor.cache.hits").value == len(TASKS)
        assert reg.counter("executor.cache.misses").value == len(TASKS)
        assert reg.histogram("executor.lookup_hit_s").count == len(TASKS)

    def test_disk_hits_counted(self, tmp_path):
        cache = PointCache(tmp_path / "cache")
        SweepExecutor(cache=cache).run(TASKS)  # populate the disk cache
        reg = MetricsRegistry()
        ex = SweepExecutor(cache=cache, metrics=reg, memoize=False)
        ex.run(TASKS)
        assert reg.counter("executor.cache.hits").value == len(TASKS)
        assert "executor.cache.misses" not in reg
        assert ex.stats.hits == len(TASKS)

    def test_lookup_histogram_totals_partition_lookups(self, tmp_path):
        cache = PointCache(tmp_path / "cache")
        SweepExecutor(cache=cache).run(TASKS[:1])  # one record on disk
        reg = MetricsRegistry()
        SweepExecutor(cache=cache, metrics=reg, memoize=False).run(TASKS)
        hits = reg.histogram("executor.lookup_hit_s").count
        misses = reg.histogram("executor.lookup_miss_s").count
        assert (hits, misses) == (1, 1)
        assert (reg.counter("executor.cache.hits").value,
                reg.counter("executor.cache.misses").value) == (1, 1)


# ----------------------------------------------------------------- evictions
class TestEvictionAccounting:
    def test_forced_eviction_counted_everywhere(self, tmp_path):
        cache = PointCache(tmp_path / "cache")
        SweepExecutor(cache=cache).run(TASKS)
        _corrupt(cache, TASKS[0])
        reg = MetricsRegistry()
        ex = SweepExecutor(cache=cache, metrics=reg, memoize=False)
        ex.run(TASKS)
        # The corrupt record was a miss (recomputed), the good one a hit.
        assert ex.stats.hits == 1
        assert ex.stats.misses == 1
        assert ex.stats.evictions == 1
        assert cache.evictions == 1
        assert reg.counter("executor.cache.evictions").value == 1
        assert ex.stats.to_dict()["evictions"] == 1
        # The eviction recomputed and rewrote the record: clean next time.
        ex2 = SweepExecutor(cache=cache, memoize=False)
        ex2.run(TASKS)
        assert ex2.stats.hits == 2
        assert ex2.stats.evictions == 0

    def test_multiple_evictions_accumulate(self, tmp_path):
        cache = PointCache(tmp_path / "cache")
        SweepExecutor(cache=cache).run(TASKS)
        for task in TASKS:
            _corrupt(cache, task)
        reg = MetricsRegistry()
        ex = SweepExecutor(cache=cache, metrics=reg, memoize=False)
        ex.run(TASKS)
        assert ex.stats.evictions == len(TASKS)
        assert reg.counter("executor.cache.evictions").value == len(TASKS)

    def test_eviction_base_is_per_executor(self, tmp_path):
        """A pre-used cache's lifetime evictions don't leak into a new
        executor's stats."""
        cache = PointCache(tmp_path / "cache")
        SweepExecutor(cache=cache).run(TASKS)
        _corrupt(cache, TASKS[0])
        ex1 = SweepExecutor(cache=cache, memoize=False)
        ex1.run(TASKS)
        assert ex1.stats.evictions == 1
        assert cache.evictions == 1
        # Fresh executor on the same (now healthy) cache: zero evictions.
        ex2 = SweepExecutor(cache=cache, memoize=False)
        ex2.run(TASKS)
        assert ex2.stats.evictions == 0
        assert cache.evictions == 1  # cache lifetime count unchanged

    def test_wrong_shape_record_evicted_and_counted(self, tmp_path):
        cache = PointCache(tmp_path / "cache")
        SweepExecutor(cache=cache).run(TASKS[:1])
        path = cache._path(task_key(TASKS[0]))
        path.write_text(json.dumps({"kind": "polling", "point": {"bogus": 1}}))
        assert cache.get(task_key(TASKS[0]), "polling") is None
        assert cache.evictions == 1
        assert not path.exists()


# ------------------------------------------------------------- sim profiling
class TestSimulationProfiling:
    def test_batch_and_task_wall_metrics(self):
        reg = MetricsRegistry()
        SweepExecutor(metrics=reg).run(TASKS)
        assert reg.counter("executor.batches").value == 1
        assert reg.counter("executor.points_simulated").value == len(TASKS)
        assert reg.counter("executor.simulate_wall_s").value > 0
        hist = reg.histogram("executor.task_wall_s")
        assert hist.count == len(TASKS)
        assert hist.total > 0

    def test_fanout_utilization_serial(self):
        reg = MetricsRegistry()
        SweepExecutor(metrics=reg).run(TASKS)
        util = reg.gauge("executor.fanout_utilization").value
        # Serial: busy time ~= batch wall time (one slot, no dispatch gap).
        assert 0.0 < util <= 1.0

    def test_fanout_utilization_pooled(self):
        reg = MetricsRegistry()
        with SweepExecutor(jobs=2, metrics=reg) as ex:
            ex.run(TASKS)
        util = reg.gauge("executor.fanout_utilization").value
        # Pool spin-up makes the batch wall long relative to busy time;
        # the gauge just has to be a sane fraction of slot capacity.
        assert 0.0 < util <= 1.0
        assert reg.counter("executor.points_simulated").value == len(TASKS)

    def test_cached_second_run_simulates_nothing(self):
        reg = MetricsRegistry()
        ex = SweepExecutor(metrics=reg)
        ex.run(TASKS)
        ex.run(TASKS)
        # One batch only: the second run was all hits.
        assert reg.counter("executor.batches").value == 1
        assert reg.counter("executor.points_simulated").value == len(TASKS)


# -------------------------------------------------------------- bit-identity
class TestProfiledBitIdentity:
    def test_profiled_run_bit_identical_to_plain(self):
        plain = SweepExecutor().run(TASKS)
        profiled = SweepExecutor(metrics=MetricsRegistry()).run(TASKS)
        assert plain == profiled

    def test_profiled_checked_pooled_bit_identical(self):
        plain = SweepExecutor().run(TASKS)
        with SweepExecutor(jobs=2, check=True,
                           metrics=MetricsRegistry()) as ex:
            fancy = ex.run(TASKS)
        assert plain == fancy
        assert ex.violations == []

    def test_unprofiled_executor_has_no_metrics(self):
        ex = SweepExecutor()
        ex.run(TASKS)
        assert ex.metrics is None
        assert ex.stats.misses == len(TASKS)


# ------------------------------------------------------------------ snapshot
class TestSnapshotIntegration:
    def test_registry_snapshot_serializes(self):
        reg = MetricsRegistry()
        SweepExecutor(metrics=reg).run(TASKS)
        doc = json.loads(json.dumps(reg.to_dict()))
        assert doc["counters"]["executor.points_simulated"] == len(TASKS)
        assert "executor.task_wall_s" in doc["histograms"]
        assert "executor.fanout_utilization" in doc["gauges"]
