"""Tests: burst-batched wire transfers (the event-lean fast path).

Two-node clusters with no tracer arm the NICs' fast transmit pump
(:meth:`repro.hardware.nic.NIC.enable_fast`): contiguous runs of DATA
fragments ride a single lazy :class:`~repro.sim.resources.BurstDomain`
burst instead of one heap event per fragment per hop.  The fast path is
an *optimization with a bit-identity contract*: every measurement must
equal the legacy per-packet path exactly, for every fragmentation shape.

Structure checks pin the batching decision itself (what bursts, what
falls back); equivalence checks compare bare (fast) runs against traced
(legacy) runs bit for bit; the event-count checks assert the whole point
of the layer — an order of magnitude fewer dispatched heap events on
multi-fragment traffic.
"""

import dataclasses

import pytest

from repro.config import FaultConfig, gm_system, portals_system
from repro.core import PollingConfig, PwwConfig, run_polling, run_pww
from repro.core.accounting import drain_events
from repro.hardware.nic import SendJob
from repro.mpi import build_world
from repro.obs import Observer
from repro.obs.context import use_observer
from repro.transport.packets import (
    PacketKind,
    control_packet,
    next_msg_id,
    packetize,
)

KB = 1024
MTU = gm_system().machine.nic.mtu_bytes


def _traced(fn, system, cfg):
    """Run a point with the observer attached: the NICs keep the legacy
    per-packet path (enable_fast refuses when a tracer is present)."""
    with use_observer(Observer()):
        return fn(system, cfg)


# ---------------------------------------------------------------- structure
class TestBatchingDecision:
    def _nic(self, system=None):
        world = build_world(system or gm_system())
        nic = world.cluster[0].nic
        assert nic._fast, "two-node untraced cluster must arm the fast pump"
        return world, nic

    def _submit(self, world, nic, job):
        """Submit and process the pump's zero-delay start hop (submissions
        are asynchronous by one event, mirroring the legacy queue wake).
        Drains every zero-time event — process start-ups sort ahead of
        the hop — without advancing simulated time."""
        nic.submit(job)
        eng = world.engine
        while eng._queue and eng._queue[0][0] == eng.now:
            eng.step()

    def test_multi_fragment_data_job_bursts(self):
        world, nic = self._nic()
        pkts = packetize(PacketKind.DATA, 0, 1, next_msg_id(), 2 * MTU, MTU)
        assert len(pkts) == 2
        self._submit(world, nic, SendJob(pkts))
        # A burst registers one tx and one rx lazy stream on the domain.
        assert len(nic._domain.streams) == 2

    def test_single_fragment_job_never_bursts(self):
        world, nic = self._nic()
        pkts = packetize(PacketKind.DATA, 0, 1, next_msg_id(), KB, MTU)
        assert len(pkts) == 1
        self._submit(world, nic, SendJob(pkts))
        assert nic._domain.streams == []

    @pytest.mark.parametrize("kind", [PacketKind.RTS, PacketKind.CTS,
                                      PacketKind.ACK])
    def test_control_packets_never_burst(self, kind):
        world, nic = self._nic()
        mid = next_msg_id()
        pkts = [control_packet(kind, 0, 1, mid),
                control_packet(kind, 0, 1, mid)]
        self._submit(world, nic, SendJob(pkts))
        assert nic._domain.streams == []

    def test_mixed_kind_job_never_bursts(self):
        world, nic = self._nic()
        mid = next_msg_id()
        pkts = packetize(PacketKind.DATA, 0, 1, mid, 2 * MTU, MTU)
        pkts.append(control_packet(PacketKind.ACK, 0, 1, mid))
        self._submit(world, nic, SendJob(pkts))
        assert nic._domain.streams == []

    def test_lossy_route_disables_bursts(self):
        base = portals_system()
        system = dataclasses.replace(
            base, machine=dataclasses.replace(
                base.machine, fault=FaultConfig(data_loss_rate=0.05)
            )
        )
        world = build_world(system)
        nic = world.cluster[0].nic
        pkts = packetize(PacketKind.DATA, 0, 1, next_msg_id(), 2 * MTU, MTU)
        nic.submit(SendJob(pkts))
        eng = world.engine
        while eng._queue and eng._queue[0][0] == eng.now:
            eng.step()
        # The pump may be armed, but a lossy link falls back per-packet
        # (retransmission bookkeeping needs every fragment event).
        if nic._domain is not None:
            assert nic._domain.streams == []

    def test_traced_cluster_keeps_legacy_path(self):
        with use_observer(Observer()):
            world = build_world(gm_system())
        assert not world.cluster[0].nic._fast


# -------------------------------------------------------------- equivalence
#: Fragmentation edge shapes: below one MTU, exactly one MTU, an exact
#: multiple, one byte past a boundary, and a deep multi-fragment message.
EDGE_SIZES = [KB, MTU, 2 * MTU, 2 * MTU + 1, 25 * MTU]


@pytest.mark.parametrize("factory", [gm_system, portals_system],
                         ids=["gm", "portals"])
@pytest.mark.parametrize("msg_bytes", EDGE_SIZES)
def test_polling_bare_equals_traced(factory, msg_bytes):
    cfg = PollingConfig(msg_bytes=msg_bytes, poll_interval_iters=2_000,
                        measure_s=0.008, warmup_s=0.002, min_cycles=2)
    bare = run_polling(factory(), cfg)
    traced = _traced(run_polling, factory(), cfg)
    assert bare == traced


@pytest.mark.parametrize("factory", [gm_system, portals_system],
                         ids=["gm", "portals"])
@pytest.mark.parametrize("msg_bytes", EDGE_SIZES)
def test_pww_bare_equals_traced(factory, msg_bytes):
    cfg = PwwConfig(msg_bytes=msg_bytes, work_interval_iters=50_000,
                    batches=4, warmup_batches=1)
    bare = run_pww(factory(), cfg)
    traced = _traced(run_pww, factory(), cfg)
    assert bare == traced


@pytest.mark.parametrize("factory", [gm_system, portals_system],
                         ids=["gm", "portals"])
def test_lossy_run_bare_equals_traced(factory):
    """With loss on the wire both modes take the per-packet path — and
    must still agree bit for bit (same RNG streams, same retransmits)."""
    base = factory()
    system = dataclasses.replace(
        base, machine=dataclasses.replace(
            base.machine, fault=FaultConfig(data_loss_rate=0.02)
        )
    )
    cfg = PwwConfig(msg_bytes=3 * MTU, work_interval_iters=50_000,
                    batches=3, warmup_batches=1)
    bare = run_pww(system, cfg)
    traced = _traced(run_pww, system, cfg)
    assert bare == traced


# -------------------------------------------------------------- event count
class TestEventCounts:
    def _count(self, fn, system, cfg, traced):
        drain_events()  # isolate from any earlier runs in the process
        if traced:
            pt = _traced(fn, system, cfg)
        else:
            pt = fn(system, cfg)
        return pt, drain_events()

    def test_large_message_point_drops_10x_gm(self):
        """The acceptance bar: on a large-message OS-bypass sweep point
        the fast paths dispatch >= 10x fewer heap events than the legacy
        path, while producing the identical measurement."""
        cfg = PollingConfig(msg_bytes=500 * KB, poll_interval_iters=100_000,
                            measure_s=0.02, warmup_s=0.004)
        bare, n_bare = self._count(run_polling, gm_system(), cfg,
                                   traced=False)
        traced, n_traced = self._count(run_polling, gm_system(), cfg,
                                       traced=True)
        assert bare == traced
        assert n_bare > 0 and n_traced > 0
        assert n_traced >= 10 * n_bare, (n_traced, n_bare)

    def test_large_message_point_improves_portals(self):
        """Portals' kernel transport tracks every fragment for go-back-N
        reliability, so DATA jobs cannot burst — but the quiescence
        fast-forward still has to cut the event count strictly."""
        cfg = PollingConfig(msg_bytes=500 * KB, poll_interval_iters=100_000,
                            measure_s=0.02, warmup_s=0.004)
        bare, n_bare = self._count(run_polling, portals_system(), cfg,
                                   traced=False)
        traced, n_traced = self._count(run_polling, portals_system(), cfg,
                                       traced=True)
        assert bare == traced
        assert 0 < n_bare < n_traced, (n_traced, n_bare)

    def test_runners_deposit_counts(self):
        cfg = PwwConfig(msg_bytes=64 * KB, work_interval_iters=50_000,
                        batches=3, warmup_batches=1)
        drain_events()
        run_pww(gm_system(), cfg)
        assert drain_events() > 0
        # Drained: a second drain reports nothing.
        assert drain_events() == 0
