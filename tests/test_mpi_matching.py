"""Unit + property tests: envelope matching, queues, admission ordering."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi.matching import (
    ANY_SOURCE,
    ANY_TAG,
    Admission,
    PostedQueue,
    UnexpectedQueue,
    envelopes_match,
)
from repro.transport.packets import Envelope


def env(src=0, tag=0, nbytes=100, seq=0):
    return Envelope(src_rank=src, dst_rank=1, tag=tag, nbytes=nbytes, seq=seq)


class Rec:
    """Minimal arrival record (matching only reads .envelope)."""

    def __init__(self, envelope):
        self.envelope = envelope

    def __repr__(self):
        return f"Rec(seq={self.envelope.seq})"


class TestEnvelopesMatch:
    def test_exact(self):
        assert envelopes_match(3, 7, env(src=3, tag=7))

    def test_src_mismatch(self):
        assert not envelopes_match(3, 7, env(src=4, tag=7))

    def test_tag_mismatch(self):
        assert not envelopes_match(3, 7, env(src=3, tag=8))

    def test_any_source(self):
        assert envelopes_match(ANY_SOURCE, 7, env(src=99, tag=7))

    def test_any_tag(self):
        assert envelopes_match(3, ANY_TAG, env(src=3, tag=42))

    def test_double_wildcard(self):
        assert envelopes_match(ANY_SOURCE, ANY_TAG, env(src=5, tag=5))


class TestPostedQueue:
    def test_match_pops_first_fit(self):
        q = PostedQueue()
        q.post(0, 1, "a")
        q.post(0, 1, "b")
        assert q.match(env(src=0, tag=1)) == "a"
        assert q.match(env(src=0, tag=1)) == "b"
        assert q.match(env(src=0, tag=1)) is None

    def test_skips_non_matching(self):
        q = PostedQueue()
        q.post(0, 1, "a")
        q.post(0, 2, "b")
        assert q.match(env(src=0, tag=2)) == "b"
        assert len(q) == 1

    def test_wildcard_post_catches_anything(self):
        q = PostedQueue()
        q.post(ANY_SOURCE, ANY_TAG, "w")
        assert q.match(env(src=9, tag=9)) == "w"

    def test_post_order_priority_over_specificity(self):
        # MPI semantics: the *first posted* matching receive wins, even if a
        # later one is more specific.
        q = PostedQueue()
        q.post(ANY_SOURCE, ANY_TAG, "wild")
        q.post(0, 1, "exact")
        assert q.match(env(src=0, tag=1)) == "wild"

    def test_snapshot_is_copy(self):
        q = PostedQueue()
        q.post(0, 1, "a")
        snap = q.snapshot()
        snap.clear()
        assert len(q) == 1


class TestUnexpectedQueue:
    def test_oldest_match_wins(self):
        q = UnexpectedQueue()
        r1, r2 = Rec(env(tag=5, seq=0)), Rec(env(tag=5, seq=1))
        q.add(r1)
        q.add(r2)
        assert q.match(0, 5) is r1
        assert q.match(0, 5) is r2

    def test_no_match_leaves_queue(self):
        q = UnexpectedQueue()
        q.add(Rec(env(tag=5)))
        assert q.match(0, 6) is None
        assert len(q) == 1

    def test_wildcard_receive(self):
        q = UnexpectedQueue()
        q.add(Rec(env(src=3, tag=9)))
        assert q.match(ANY_SOURCE, ANY_TAG) is not None


class TestAdmission:
    def test_in_order_passthrough(self):
        out = []
        adm = Admission(out.append)
        for seq in range(4):
            adm.offer(Rec(env(seq=seq)))
        assert [r.envelope.seq for r in out] == [0, 1, 2, 3]
        assert adm.stashed == 0

    def test_reorders_out_of_order(self):
        out = []
        adm = Admission(out.append)
        adm.offer(Rec(env(seq=1)))
        assert out == [] and adm.stashed == 1
        adm.offer(Rec(env(seq=0)))
        assert [r.envelope.seq for r in out] == [0, 1]
        assert adm.stashed == 0

    def test_per_source_independence(self):
        out = []
        adm = Admission(out.append)
        adm.offer(Rec(env(src=0, seq=0)))
        adm.offer(Rec(env(src=1, seq=0)))
        adm.offer(Rec(env(src=1, seq=1)))
        assert len(out) == 3

    def test_duplicate_seq_rejected(self):
        adm = Admission(lambda r: None)
        adm.offer(Rec(env(seq=0)))
        with pytest.raises(RuntimeError):
            adm.offer(Rec(env(seq=0)))

    @settings(max_examples=80, deadline=None)
    @given(st.permutations(list(range(8))))
    def test_any_permutation_admitted_in_order(self, perm):
        out = []
        adm = Admission(out.append)
        for seq in perm:
            adm.offer(Rec(env(seq=seq)))
        assert [r.envelope.seq for r in out] == list(range(8))
        assert adm.stashed == 0

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 5)),
            min_size=1, max_size=30,
        )
    )
    def test_multi_source_interleaving(self, plan):
        """Arbitrary interleaving of per-source in-order streams stays
        in-order per source after admission."""
        # Build per-source sequences, then interleave according to plan.
        from collections import defaultdict

        counters = defaultdict(int)
        offered = []
        for src, _ in plan:
            offered.append(Rec(env(src=src, seq=counters[src])))
            counters[src] += 1
        out = []
        adm = Admission(out.append)
        for rec in offered:
            adm.offer(rec)
        per_src = defaultdict(list)
        for rec in out:
            per_src[rec.envelope.src_rank].append(rec.envelope.seq)
        for src, seqs in per_src.items():
            assert seqs == list(range(len(seqs)))
